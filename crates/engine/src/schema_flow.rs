//! Whole-plan schema inference and type-flow analysis.
//!
//! [`SchemaFlow::infer`] performs an abstract interpretation of a
//! [`LogicalPlan`] over the schema domain: every operator gets a transfer
//! function from its input schemas to its output schema, every edge gets
//! the schema of the stream crossing it, and every way the plan can
//! violate its own typing is recorded as a [`SchemaIssue`] instead of an
//! error. Unlike [`LogicalPlan::schemas`], which fails hard on the first
//! unresolvable operator, inference is *tolerant*: it substitutes
//! best-effort fallbacks and keeps walking, so a single typo'd field index
//! yields one precise issue rather than an opaque analysis abort.
//!
//! Three consumers share this module as their single source of truth:
//!
//! * `pdsp-analyze`'s type-flow pass maps issues onto stable `PB06x`
//!   diagnostic codes (and the deploy gate refuses plans whose issues are
//!   error-class);
//! * [`crate::physical::PhysicalPlan::expand`] persists the per-edge
//!   schemas so the distributed wire layer can validate frames against
//!   them (`RunConfig::check_schemas`);
//! * the future columnar data plane will consult the same edge schemas to
//!   pick typed column layouts.
//!
//! UDOs are closed boxes; their factories bridge inference via
//! [`UdoFactory::output_schema`](crate::udo::UdoFactory::output_schema)
//! under a declared [`SchemaPolicy`]. The `Opaque` policy keeps inference
//! running on the claimed schema but marks everything downstream *tainted*
//! — consumers downgrade findings on tainted spans to hints, since their
//! premise is unverified.

use crate::expr::{CmpOp, Predicate, ScalarExpr};
use crate::operator::OpKind;
use crate::plan::{LogicalPlan, NodeId, Partitioning};
use crate::udo::SchemaPolicy;
use crate::value::{Field, FieldType, Schema};
use crate::window::WindowPolicy;
use std::fmt;

/// What a schema issue anchors to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueAt {
    /// An operator node.
    Node(NodeId),
    /// An edge, by index into [`LogicalPlan::edges`].
    Edge(usize),
}

/// The kind of typing violation found by inference. Each kind maps 1:1 to
/// a stable `PB06x` diagnostic code in `pdsp-analyze`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueKind {
    /// A field index outside the input schema (PB061, error).
    UnknownField,
    /// An operator input of a type it cannot process — string-split over a
    /// non-string field, arithmetic over a string operand, equi-join keys
    /// of incomparable types (PB062, error).
    TypeMismatch,
    /// A numeric aggregate over a string field: `as_f64` yields `None`
    /// and the aggregate silently counts presence instead (PB063, error).
    NonNumericAggregate,
    /// Keying or hash-partitioning on a `Double` field: NaN never compares
    /// equal (so NaN groups leak), and bit-pattern hashing splits `0.0`
    /// from `-0.0` (PB064, warning).
    DoubleKey,
    /// A time-based window consumes a stream with no `Timestamp`-typed
    /// field: event time rides only on out-of-band tuple metadata, so the
    /// schema offers no provenance for it (PB065, hint).
    EventTimeUntyped,
    /// The merge stage downstream of a `HashSplit` edge emits a different
    /// arity than the split stage: partial-aggregate shape leaks past the
    /// merge (PB066, warning).
    SplitArityDrift,
    /// Union inputs with structurally different schemas (PB067, error).
    UnionSchemaMismatch,
    /// Inference crossed a UDO declared `SchemaPolicy::Opaque`; everything
    /// downstream is tainted (PB068, hint).
    OpaqueUdo,
    /// A comparison between incomparable type classes (string vs numeric):
    /// the predicate is constant — `==` never matches, `!=` always does
    /// (PB069, warning).
    ConstantPredicate,
}

impl IssueKind {
    /// True when this kind invalidates results (the error class a deploy
    /// gate must refuse); warnings and hints return false.
    pub fn is_error(self) -> bool {
        matches!(
            self,
            IssueKind::UnknownField
                | IssueKind::TypeMismatch
                | IssueKind::NonNumericAggregate
                | IssueKind::UnionSchemaMismatch
        )
    }
}

impl fmt::Display for IssueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IssueKind::UnknownField => "unknown-field",
            IssueKind::TypeMismatch => "type-mismatch",
            IssueKind::NonNumericAggregate => "non-numeric-aggregate",
            IssueKind::DoubleKey => "double-key",
            IssueKind::EventTimeUntyped => "event-time-untyped",
            IssueKind::SplitArityDrift => "split-arity-drift",
            IssueKind::UnionSchemaMismatch => "union-schema-mismatch",
            IssueKind::OpaqueUdo => "opaque-udo",
            IssueKind::ConstantPredicate => "constant-predicate",
        };
        f.write_str(s)
    }
}

/// One typing violation, anchored to a node or edge.
#[derive(Debug, Clone)]
pub struct SchemaIssue {
    /// What went wrong.
    pub kind: IssueKind,
    /// Where.
    pub at: IssueAt,
    /// Human-readable description naming fields and types.
    pub message: String,
    /// The issue sits downstream of an `Opaque` UDO: its premise is an
    /// unverified schema claim, so consumers report it as a hint.
    pub downgraded: bool,
}

/// The result of schema inference over one plan.
#[derive(Debug, Clone)]
pub struct SchemaFlow {
    /// Inferred output schema per node (best-effort; complete even for
    /// broken plans).
    pub node_output: Vec<Schema>,
    /// Inferred schema per edge (index-aligned with
    /// [`LogicalPlan::edges`]): the output schema of the edge's upstream
    /// node.
    pub edge: Vec<Schema>,
    /// Per-node taint: true when the node's schema (transitively) rests on
    /// an `Opaque` UDO's unverified claim.
    pub tainted: Vec<bool>,
    /// Every typing violation found, in plan-walk order.
    pub issues: Vec<SchemaIssue>,
}

/// String vs numeric type class; cross-class comparisons are constant and
/// cross-class arithmetic fails at runtime.
fn is_stringy(ty: FieldType) -> bool {
    ty == FieldType::Str
}

/// Static result type of a scalar expression over `input`, plus any typing
/// issues it raises (out-of-bounds field refs, string arithmetic).
fn expr_type(
    expr: &ScalarExpr,
    input: &Schema,
    node: NodeId,
    issues: &mut Vec<SchemaIssue>,
    downgraded: bool,
) -> FieldType {
    match expr {
        ScalarExpr::Field(i) => match input.fields.get(*i) {
            Some(f) => f.ty,
            None => {
                issues.push(SchemaIssue {
                    kind: IssueKind::UnknownField,
                    at: IssueAt::Node(node),
                    message: format!(
                        "expression reads field {i} but the input schema has only {} field(s)",
                        input.width()
                    ),
                    downgraded,
                });
                FieldType::Double
            }
        },
        ScalarExpr::Literal(v) => v.field_type(),
        ScalarExpr::Add(a, b)
        | ScalarExpr::Sub(a, b)
        | ScalarExpr::Mul(a, b)
        | ScalarExpr::Div(a, b) => {
            for side in [a, b] {
                let ty = expr_type(side, input, node, issues, downgraded);
                if is_stringy(ty) {
                    issues.push(SchemaIssue {
                        kind: IssueKind::TypeMismatch,
                        at: IssueAt::Node(node),
                        message: "arithmetic over a string operand always fails at runtime".into(),
                        downgraded,
                    });
                }
            }
            FieldType::Double
        }
    }
}

/// Check a filter predicate against `input`: out-of-bounds field refs and
/// constant cross-class comparisons.
fn check_predicate(
    pred: &Predicate,
    input: &Schema,
    node: NodeId,
    issues: &mut Vec<SchemaIssue>,
    downgraded: bool,
) {
    match pred {
        Predicate::True => {}
        Predicate::Compare { field, op, literal } => match input.fields.get(*field) {
            None => issues.push(SchemaIssue {
                kind: IssueKind::UnknownField,
                at: IssueAt::Node(node),
                message: format!(
                    "predicate reads field {field} but the input schema has only {} field(s)",
                    input.width()
                ),
                downgraded,
            }),
            Some(f) if is_stringy(f.ty) != is_stringy(literal.field_type()) => {
                let outcome = if *op == CmpOp::Ne {
                    "always true"
                } else {
                    "never true"
                };
                issues.push(SchemaIssue {
                    kind: IssueKind::ConstantPredicate,
                    at: IssueAt::Node(node),
                    message: format!(
                        "comparing {} field '{}' {op} {} literal is {outcome}: cross-class \
                         comparisons never match",
                        f.ty,
                        f.name,
                        literal.field_type()
                    ),
                    downgraded,
                });
            }
            Some(_) => {}
        },
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            check_predicate(a, input, node, issues, downgraded);
            check_predicate(b, input, node, issues, downgraded);
        }
        Predicate::Not(p) => check_predicate(p, input, node, issues, downgraded),
    }
}

/// Check a key-like field reference (aggregate key, join key, UDO keyed
/// state, hash-partition field): bounds, then the `Double` hazard. Returns
/// the field's type when resolvable.
fn check_key_field(
    idx: usize,
    input: &Schema,
    at: IssueAt,
    role: &str,
    issues: &mut Vec<SchemaIssue>,
    downgraded: bool,
) -> Option<FieldType> {
    match input.fields.get(idx) {
        None => {
            issues.push(SchemaIssue {
                kind: IssueKind::UnknownField,
                at,
                message: format!(
                    "{role} references field {idx} but the schema has only {} field(s)",
                    input.width()
                ),
                downgraded,
            });
            None
        }
        Some(f) => {
            if f.ty == FieldType::Double {
                issues.push(SchemaIssue {
                    kind: IssueKind::DoubleKey,
                    at,
                    message: format!(
                        "{role} groups on double field '{}': NaN keys never compare equal and \
                         0.0/-0.0 hash apart, so grouping is unreliable",
                        f.name
                    ),
                    downgraded,
                });
            }
            Some(f.ty)
        }
    }
}

impl SchemaFlow {
    /// Infer schemas for every node and edge of `plan`, collecting typing
    /// issues along the way. Fails only on structurally broken plans
    /// (cycles); semantic breakage becomes [`SchemaIssue`]s.
    pub fn infer(plan: &LogicalPlan) -> crate::error::Result<SchemaFlow> {
        let topo = plan.topo_order()?;
        let n = plan.nodes.len();
        let mut node_output: Vec<Schema> = vec![Schema::default(); n];
        let mut tainted = vec![false; n];
        let mut issues: Vec<SchemaIssue> = Vec::new();

        for &id in &topo {
            let node = &plan.nodes[id];
            // Input schemas in port order (ports are dense per validate()).
            let mut ins: Vec<(usize, Schema)> = plan
                .in_edges(id)
                .iter()
                .map(|e| (e.port, node_output[e.from].clone()))
                .collect();
            ins.sort_by_key(|(p, _)| *p);
            let in_tainted = plan.in_edges(id).iter().any(|e| tainted[e.from]);
            tainted[id] = in_tainted;
            let dg = in_tainted;
            let first = ins.first().map(|(_, s)| s.clone()).unwrap_or_default();

            node_output[id] = match &node.kind {
                OpKind::Source { schema } => schema.clone(),
                OpKind::Filter { predicate, .. } => {
                    check_predicate(predicate, &first, id, &mut issues, dg);
                    first
                }
                OpKind::Map { exprs } => {
                    let fields = exprs
                        .iter()
                        .enumerate()
                        .map(|(i, e)| {
                            let ty = expr_type(e, &first, id, &mut issues, dg);
                            let name = match e {
                                ScalarExpr::Field(idx) => first
                                    .fields
                                    .get(*idx)
                                    .map(|f| f.name.clone())
                                    .unwrap_or_else(|| format!("m{i}")),
                                _ => format!("m{i}"),
                            };
                            Field::new(name, ty)
                        })
                        .collect();
                    Schema::new(fields)
                }
                OpKind::FlatMapSplit { field } => {
                    match first.fields.get(*field) {
                        None => issues.push(SchemaIssue {
                            kind: IssueKind::UnknownField,
                            at: IssueAt::Node(id),
                            message: format!(
                                "split reads field {field} but the input schema has only {} \
                                 field(s)",
                                first.width()
                            ),
                            downgraded: dg,
                        }),
                        Some(f) if f.ty != FieldType::Str => issues.push(SchemaIssue {
                            kind: IssueKind::TypeMismatch,
                            at: IssueAt::Node(id),
                            message: format!(
                                "split over {} field '{}': non-string inputs produce no output \
                                 tuples at all",
                                f.ty, f.name
                            ),
                            downgraded: dg,
                        }),
                        Some(_) => {}
                    }
                    Schema::new(vec![Field::new("token", FieldType::Str)])
                }
                OpKind::WindowAggregate {
                    window,
                    func,
                    agg_field,
                    key_field,
                } => {
                    self::check_aggregate(
                        &first,
                        id,
                        *agg_field,
                        *func,
                        window.policy == WindowPolicy::Time,
                        &mut issues,
                        dg,
                    );
                    aggregate_output(&first, *key_field, id, &mut issues, dg)
                }
                OpKind::SessionWindow {
                    func,
                    agg_field,
                    key_field,
                    ..
                } => {
                    // Sessions are inherently event-time windows.
                    self::check_aggregate(&first, id, *agg_field, *func, true, &mut issues, dg);
                    aggregate_output(&first, *key_field, id, &mut issues, dg)
                }
                OpKind::Join {
                    left_key,
                    right_key,
                    ..
                } => {
                    let left = ins.iter().find(|(p, _)| *p == 0).map(|(_, s)| s.clone());
                    let right = ins.iter().find(|(p, _)| *p == 1).map(|(_, s)| s.clone());
                    let lt = left.as_ref().and_then(|s| {
                        check_key_field(
                            *left_key,
                            s,
                            IssueAt::Node(id),
                            "left join key",
                            &mut issues,
                            dg,
                        )
                    });
                    let rt = right.as_ref().and_then(|s| {
                        check_key_field(
                            *right_key,
                            s,
                            IssueAt::Node(id),
                            "right join key",
                            &mut issues,
                            dg,
                        )
                    });
                    if let (Some(lt), Some(rt)) = (lt, rt) {
                        if is_stringy(lt) != is_stringy(rt) {
                            issues.push(SchemaIssue {
                                kind: IssueKind::TypeMismatch,
                                at: IssueAt::Node(id),
                                message: format!(
                                    "equi-join compares {lt} against {rt}: cross-class keys \
                                     never match, the join emits nothing"
                                ),
                                downgraded: dg,
                            });
                        }
                    }
                    let mut fields = left.map(|s| s.fields).unwrap_or_default();
                    fields.extend(right.map(|s| s.fields).unwrap_or_default());
                    Schema::new(fields)
                }
                OpKind::Union => {
                    for (p, s) in ins.iter().skip(1) {
                        let mismatch = s.width() != first.width()
                            || s.fields
                                .iter()
                                .zip(&first.fields)
                                .any(|(a, b)| a.ty != b.ty);
                        if mismatch {
                            issues.push(SchemaIssue {
                                kind: IssueKind::UnionSchemaMismatch,
                                at: IssueAt::Node(id),
                                message: format!(
                                    "union input on port {p} has schema {} but port {} has {}: \
                                     branches must agree field-for-field",
                                    render(s),
                                    ins[0].0,
                                    render(&first)
                                ),
                                downgraded: dg,
                            });
                        }
                    }
                    first
                }
                OpKind::Udo { factory } => {
                    let props = factory.properties();
                    if let Some(k) = props.keyed_state_field {
                        check_key_field(
                            k,
                            &first,
                            IssueAt::Node(id),
                            "UDO keyed state",
                            &mut issues,
                            dg,
                        );
                    }
                    match props.schema_policy {
                        SchemaPolicy::Same => first,
                        SchemaPolicy::Declared => factory.output_schema(&first),
                        SchemaPolicy::Opaque => {
                            issues.push(SchemaIssue {
                                kind: IssueKind::OpaqueUdo,
                                at: IssueAt::Node(id),
                                message: format!(
                                    "UDO '{}' declares its output schema opaque: inference \
                                     continues on the claimed schema, downstream findings are \
                                     downgraded to hints",
                                    factory.name()
                                ),
                                downgraded: false,
                            });
                            tainted[id] = true;
                            factory.output_schema(&first)
                        }
                    }
                }
                OpKind::Sink => first,
            };
        }

        // Edge schemas + partitioning-field checks.
        let mut edge = Vec::with_capacity(plan.edges.len());
        for (ei, e) in plan.edges.iter().enumerate() {
            let schema = node_output[e.from].clone();
            match &e.partitioning {
                Partitioning::Hash(fields) | Partitioning::HashSplit(fields, _) => {
                    for &f in fields {
                        check_key_field(
                            f,
                            &schema,
                            IssueAt::Edge(ei),
                            "hash partitioning",
                            &mut issues,
                            tainted[e.from],
                        );
                    }
                }
                _ => {}
            }
            edge.push(schema);
        }

        // Arity drift across HashSplit/merge pairs: the merge stage must
        // restore the split stage's output shape.
        for e in &plan.edges {
            if !matches!(e.partitioning, Partitioning::HashSplit(..)) {
                continue;
            }
            let split_stage = e.to;
            for out in plan.out_edges(split_stage) {
                let m = out.to;
                let merges = matches!(&plan.nodes[m].kind, OpKind::Udo { factory }
                    if factory.properties().merges_hot_key_splits);
                if merges && node_output[m].width() != node_output[split_stage].width() {
                    issues.push(SchemaIssue {
                        kind: IssueKind::SplitArityDrift,
                        at: IssueAt::Node(m),
                        message: format!(
                            "merge stage '{}' emits {} field(s) but the split stage '{}' emits \
                             {}: partial-aggregate shape leaks downstream of the merge",
                            plan.nodes[m].name,
                            node_output[m].width(),
                            plan.nodes[split_stage].name,
                            node_output[split_stage].width()
                        ),
                        downgraded: tainted[split_stage],
                    });
                }
            }
        }

        Ok(SchemaFlow {
            node_output,
            edge,
            tainted,
            issues,
        })
    }

    /// True when no full-severity error-class issue was found (downgraded
    /// issues don't count: their premise is an unverified opaque claim).
    pub fn is_clean(&self) -> bool {
        !self
            .issues
            .iter()
            .any(|i| i.kind.is_error() && !i.downgraded)
    }

    /// True when every node and every edge carries a non-empty schema —
    /// the completeness invariant the workload generator asserts.
    pub fn is_complete(&self) -> bool {
        self.node_output.iter().all(|s| s.width() > 0) && self.edge.iter().all(|s| s.width() > 0)
    }
}

/// Aggregate-input checks shared by window and session aggregation: the
/// aggregated field must exist and (except under `Count`) be numeric, and
/// time-based windows want a `Timestamp` field for event-time provenance.
fn check_aggregate(
    input: &Schema,
    node: NodeId,
    agg_field: usize,
    func: crate::agg::AggFunc,
    time_based: bool,
    issues: &mut Vec<SchemaIssue>,
    downgraded: bool,
) {
    match input.fields.get(agg_field) {
        None => issues.push(SchemaIssue {
            kind: IssueKind::UnknownField,
            at: IssueAt::Node(node),
            message: format!(
                "aggregate reads field {agg_field} but the input schema has only {} field(s)",
                input.width()
            ),
            downgraded,
        }),
        Some(f) if is_stringy(f.ty) && func != crate::agg::AggFunc::Count => {
            issues.push(SchemaIssue {
                kind: IssueKind::NonNumericAggregate,
                at: IssueAt::Node(node),
                message: format!(
                    "{func} over string field '{}': strings aggregate as presence (1.0), \
                     producing numbers that look valid but mean nothing",
                    f.name
                ),
                downgraded,
            });
        }
        Some(_) => {}
    }
    if time_based && !input.fields.iter().any(|f| f.ty == FieldType::Timestamp) {
        issues.push(SchemaIssue {
            kind: IssueKind::EventTimeUntyped,
            at: IssueAt::Node(node),
            message: "time-based window over a stream with no timestamp field: event time rides \
                      only on out-of-band tuple metadata"
                .into(),
            downgraded,
        });
    }
}

/// Output schema of a (keyed) window/session aggregate, with key checks.
fn aggregate_output(
    input: &Schema,
    key_field: Option<usize>,
    node: NodeId,
    issues: &mut Vec<SchemaIssue>,
    downgraded: bool,
) -> Schema {
    let mut fields = Vec::with_capacity(3);
    if let Some(k) = key_field {
        let ty = check_key_field(
            k,
            input,
            IssueAt::Node(node),
            "aggregate key",
            issues,
            downgraded,
        )
        .unwrap_or(FieldType::Int);
        fields.push(Field::new("key", ty));
    }
    fields.push(Field::new("window_end", FieldType::Timestamp));
    fields.push(Field::new("agg", FieldType::Double));
    Schema::new(fields)
}

/// Compact `[name:type, ...]` rendering for issue messages.
fn render(s: &Schema) -> String {
    let inner: Vec<String> = s
        .fields
        .iter()
        .map(|f| format!("{}:{}", f.name, f.ty))
        .collect();
    format!("[{}]", inner.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::udo::{CostProfile, FnUdo, Udo, UdoFactory, UdoProperties};
    use crate::value::{Tuple, Value};
    use crate::window::WindowSpec;
    use crate::PlanBuilder;

    fn named(fields: &[(&str, FieldType)]) -> Schema {
        Schema::new(
            fields
                .iter()
                .map(|&(n, ty)| Field::new(n, ty))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn clean_plan_infers_complete_edges() {
        let plan = PlanBuilder::new()
            .source(
                "s",
                named(&[("id", FieldType::Int), ("v", FieldType::Double)]),
                1,
            )
            .window_agg_keyed("agg", WindowSpec::tumbling_count(4), AggFunc::Sum, 1, 0)
            .sink("k")
            .build()
            .unwrap();
        let flow = SchemaFlow::infer(&plan).unwrap();
        assert!(flow.is_clean(), "{:?}", flow.issues);
        assert!(flow.is_complete());
        assert_eq!(flow.edge.len(), plan.edges.len());
        // Edge into the sink carries [key, window_end, agg].
        assert_eq!(flow.edge[1].width(), 3);
        assert_eq!(flow.edge[1].fields[1].ty, FieldType::Timestamp);
    }

    #[test]
    fn out_of_bounds_predicate_is_unknown_field() {
        let plan = PlanBuilder::new()
            .source("s", named(&[("id", FieldType::Int)]), 1)
            .filter("f", Predicate::cmp(7, CmpOp::Gt, Value::Int(0)), 0.5)
            .sink("k")
            .build_unchecked();
        let flow = SchemaFlow::infer(&plan).unwrap();
        assert!(flow
            .issues
            .iter()
            .any(|i| i.kind == IssueKind::UnknownField));
        assert!(!flow.is_clean());
    }

    #[test]
    fn string_aggregate_flagged_unless_count() {
        let mk = |func| {
            PlanBuilder::new()
                .source("s", named(&[("word", FieldType::Str)]), 1)
                .window_agg_keyed("agg", WindowSpec::tumbling_count(4), func, 0, 0)
                .sink("k")
                .build_unchecked()
        };
        let avg = SchemaFlow::infer(&mk(AggFunc::Avg)).unwrap();
        assert!(avg
            .issues
            .iter()
            .any(|i| i.kind == IssueKind::NonNumericAggregate));
        let count = SchemaFlow::infer(&mk(AggFunc::Count)).unwrap();
        assert!(!count
            .issues
            .iter()
            .any(|i| i.kind == IssueKind::NonNumericAggregate));
    }

    #[test]
    fn double_key_hazard_on_agg_and_edge() {
        let plan = PlanBuilder::new()
            .source(
                "s",
                named(&[("price", FieldType::Double), ("v", FieldType::Double)]),
                1,
            )
            .window_agg_keyed("agg", WindowSpec::tumbling_count(4), AggFunc::Sum, 1, 0)
            .set_parallelism(1, 4)
            .sink("k")
            .build()
            .unwrap();
        let flow = SchemaFlow::infer(&plan).unwrap();
        let doubles: Vec<_> = flow
            .issues
            .iter()
            .filter(|i| i.kind == IssueKind::DoubleKey)
            .collect();
        // Once at the aggregate's key, once at the hash edge.
        assert!(doubles.len() >= 2, "{doubles:?}");
        assert!(flow.is_clean(), "double keys are warnings, not errors");
    }

    #[test]
    fn union_schema_mismatch() {
        let mut b = PlanBuilder::new();
        let a = b.add_node(
            "a",
            OpKind::Source {
                schema: named(&[("x", FieldType::Int)]),
            },
            1,
        );
        let c = b.add_node(
            "b",
            OpKind::Source {
                schema: named(&[("x", FieldType::Str)]),
            },
            1,
        );
        let u = b.add_node("u", OpKind::Union, 1);
        let k = b.add_node("k", OpKind::Sink, 1);
        b.add_edge(a, u, 0, Partitioning::Rebalance);
        b.add_edge(c, u, 1, Partitioning::Rebalance);
        b.add_edge(u, k, 0, Partitioning::Rebalance);
        let flow = SchemaFlow::infer(&b.build_unchecked()).unwrap();
        assert!(flow
            .issues
            .iter()
            .any(|i| i.kind == IssueKind::UnionSchemaMismatch));
        assert!(!flow.is_clean());
    }

    struct OpaqueUdo;
    impl Udo for OpaqueUdo {
        fn on_tuple(&mut self, _p: usize, t: Tuple, out: &mut Vec<Tuple>) {
            out.push(t);
        }
    }
    struct OpaqueFactory;
    impl UdoFactory for OpaqueFactory {
        fn name(&self) -> &str {
            "opaque"
        }
        fn create(&self) -> Box<dyn Udo> {
            Box::new(OpaqueUdo)
        }
        fn cost_profile(&self) -> CostProfile {
            CostProfile::stateless(100.0, 1.0)
        }
        fn output_schema(&self, _input: &Schema) -> Schema {
            Schema::of(&[FieldType::Int, FieldType::Str])
        }
        fn properties(&self) -> UdoProperties {
            UdoProperties {
                schema_policy: SchemaPolicy::Opaque,
                ..UdoProperties::default()
            }
        }
    }

    #[test]
    fn opaque_udo_taints_and_downgrades_downstream() {
        let plan = PlanBuilder::new()
            .source("s", named(&[("id", FieldType::Int)]), 1)
            .udo("op", std::sync::Arc::new(OpaqueFactory))
            // Field 5 is out of bounds of the claimed [Int, Str] schema,
            // but the claim is unverified: downgraded finding.
            .filter("f", Predicate::cmp(5, CmpOp::Gt, Value::Int(0)), 0.5)
            .sink("k")
            .build_unchecked();
        let flow = SchemaFlow::infer(&plan).unwrap();
        assert!(flow.issues.iter().any(|i| i.kind == IssueKind::OpaqueUdo));
        let unknown = flow
            .issues
            .iter()
            .find(|i| i.kind == IssueKind::UnknownField)
            .expect("finding still produced");
        assert!(unknown.downgraded, "downstream finding is downgraded");
        assert!(flow.is_clean(), "downgraded errors don't fail the plan");
        assert!(flow.tainted[2] && flow.tainted[3]);
    }

    #[test]
    fn same_policy_overrides_declared_schema() {
        let udo = FnUdo::new(
            "pass",
            CostProfile::stateless(10.0, 1.0),
            // Deliberately wrong declaration; Same policy must ignore it.
            |_s: &Schema| Schema::of(&[FieldType::Bool]),
            |t: Tuple, out: &mut Vec<Tuple>| out.push(t),
        );
        struct SameWrap(std::sync::Arc<dyn UdoFactory>);
        impl UdoFactory for SameWrap {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn create(&self) -> Box<dyn Udo> {
                self.0.create()
            }
            fn cost_profile(&self) -> CostProfile {
                self.0.cost_profile()
            }
            fn output_schema(&self, input: &Schema) -> Schema {
                self.0.output_schema(input)
            }
            fn properties(&self) -> UdoProperties {
                UdoProperties {
                    schema_policy: SchemaPolicy::Same,
                    ..UdoProperties::default()
                }
            }
        }
        let plan = PlanBuilder::new()
            .source("s", named(&[("id", FieldType::Int)]), 1)
            .udo("u", std::sync::Arc::new(SameWrap(udo)))
            .sink("k")
            .build()
            .unwrap();
        let flow = SchemaFlow::infer(&plan).unwrap();
        assert_eq!(flow.node_output[1], named(&[("id", FieldType::Int)]));
    }

    #[test]
    fn constant_predicate_cross_class() {
        let plan = PlanBuilder::new()
            .source("s", named(&[("id", FieldType::Int)]), 1)
            .filter("f", Predicate::cmp(0, CmpOp::Lt, Value::str("zzz")), 0.5)
            .sink("k")
            .build()
            .unwrap();
        let flow = SchemaFlow::infer(&plan).unwrap();
        assert!(flow
            .issues
            .iter()
            .any(|i| i.kind == IssueKind::ConstantPredicate));
        assert!(flow.is_clean(), "constant predicates are warnings");
    }

    #[test]
    fn split_over_non_string_is_type_mismatch() {
        let plan = PlanBuilder::new()
            .source("s", named(&[("id", FieldType::Int)]), 1)
            .flat_map_split("split", 0)
            .sink("k")
            .build_unchecked();
        let flow = SchemaFlow::infer(&plan).unwrap();
        assert!(flow
            .issues
            .iter()
            .any(|i| i.kind == IssueKind::TypeMismatch));
    }
}
