//! Hot-key-splitting support: the downstream merge stage.
//!
//! [`crate::plan::Partitioning::HashSplit`] spreads a skewed key's traffic
//! over several pre-aggregator instances; each produces *partial* window
//! results for that key. [`WindowMergeUdo`] is the second half of the
//! pattern: hash-partitioned on the key, it recombines the partials per
//! (key, window end) and emits one merged result once the watermark passes
//! the window end — so the `split -> pre-aggregate -> merge` pipeline
//! computes the same per-key windows as an unsplit keyed aggregation.
//!
//! ```text
//! upstream --HashSplit([k], s)--> WindowAggregate(keyed) --Hash([0])--> merge
//! ```
//!
//! Only functions whose finished values are re-mergeable participate:
//! `Sum`/`Count` add, `Min`/`Max` take the extremum. `Avg`/`Mean` finished
//! values cannot be merged without the partial counts, and count-policy
//! windows have per-instance window ends (cumulative per-key tuple counts),
//! so both are rejected at construction.

use crate::agg::AggFunc;
use crate::operator::OpKind;
use crate::udo::{CostProfile, Udo, UdoFactory, UdoProperties};
use crate::value::{FieldType, KeyValue, Schema, Tuple, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Merge function for finished partial window values.
fn merge_value(func: AggFunc, a: f64, b: f64) -> f64 {
    match func {
        AggFunc::Sum | AggFunc::Count => a + b,
        AggFunc::Min => a.min(b),
        AggFunc::Max => a.max(b),
        AggFunc::Avg | AggFunc::Mean => unreachable!("rejected at construction"),
    }
}

/// Whether finished values of `func` can be merged associatively.
pub fn is_mergeable(func: AggFunc) -> bool {
    !matches!(func, AggFunc::Avg | AggFunc::Mean)
}

#[derive(Debug, Clone)]
struct Partial {
    value: f64,
    max_emit_ns: u64,
    max_event_time: i64,
}

/// Factory for the hot-key-split merge stage (see module docs).
pub struct WindowMergeFactory {
    func: AggFunc,
    keyed: bool,
}

/// One merge instance: buffers partials per (window end, key) and releases
/// them when the watermark passes the window end.
///
/// Flush-before-marker framing plus the min-across-channels watermark
/// tracker guarantee every partial for a window ending at `W` arrives before
/// this instance's combined watermark reaches `W`, so a watermark-released
/// merge is complete. A partial arriving *behind* the watermark (an upstream
/// late update under `allowed_lateness`) is forwarded immediately as a late
/// update rather than buffered — never dropped silently.
pub struct WindowMergeUdo {
    func: AggFunc,
    keyed: bool,
    /// window_end -> key -> merged partial; the BTreeMap lets watermark
    /// release drain a window-end prefix, and keys are sorted at emission
    /// so one instance's output order is reproducible.
    pending: BTreeMap<i64, HashMap<KeyValue, Partial>>,
    watermark: i64,
}

/// Drain one window end's partials in a deterministic (key-sorted) order.
fn drain_sorted(keys: HashMap<KeyValue, Partial>) -> Vec<(KeyValue, Partial)> {
    let mut v: Vec<(KeyValue, Partial)> = keys.into_iter().collect();
    v.sort_by(|(a, _), (b, _)| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
    v
}

impl WindowMergeUdo {
    fn emit(&self, window_end: i64, key: &KeyValue, p: &Partial, out: &mut Vec<Tuple>) {
        let mut values = Vec::with_capacity(3);
        if self.keyed {
            values.push(key.0.clone());
        }
        values.push(Value::Timestamp(window_end));
        values.push(Value::Double(p.value));
        out.push(Tuple {
            values,
            event_time: p.max_event_time,
            emit_ns: p.max_emit_ns,
        });
    }
}

impl Udo for WindowMergeUdo {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, out: &mut Vec<Tuple>) {
        // Input layout mirrors WindowAggregate output: [key,] window_end, agg.
        let (key, end_idx) = if self.keyed {
            let Some(k) = tuple.values.first().cloned() else {
                return;
            };
            (k, 1)
        } else {
            (Value::Int(0), 0)
        };
        let Some(window_end) = tuple.values.get(end_idx).and_then(|v| match v {
            Value::Timestamp(t) => Some(*t),
            other => other.as_f64().map(|f| f as i64),
        }) else {
            return;
        };
        let Some(value) = tuple.values.get(end_idx + 1).and_then(|v| v.as_f64()) else {
            return;
        };
        let partial = Partial {
            value,
            max_emit_ns: tuple.emit_ns,
            max_event_time: tuple.event_time,
        };
        if window_end <= self.watermark {
            // Late partial (upstream allowed-lateness re-fire): pass it
            // through as a late update for the consumer to reconcile.
            self.emit(window_end, &KeyValue(key), &partial, out);
            return;
        }
        let func = self.func;
        self.pending
            .entry(window_end)
            .or_default()
            .entry(KeyValue(key))
            .and_modify(|p| {
                p.value = merge_value(func, p.value, partial.value);
                p.max_emit_ns = p.max_emit_ns.max(partial.max_emit_ns);
                p.max_event_time = p.max_event_time.max(partial.max_event_time);
            })
            .or_insert(partial);
    }

    fn on_watermark(&mut self, watermark: i64, out: &mut Vec<Tuple>) {
        self.watermark = self.watermark.max(watermark);
        // Windows ending at or below the watermark are complete: all their
        // partials were framed before the markers that advanced it here.
        let still_open = self.pending.split_off(&self.watermark.saturating_add(1));
        let ready = std::mem::replace(&mut self.pending, still_open);
        for (end, keys) in ready {
            for (key, p) in drain_sorted(keys) {
                self.emit(end, &key, &p, out);
            }
        }
    }

    fn on_flush(&mut self, out: &mut Vec<Tuple>) {
        let all = std::mem::take(&mut self.pending);
        for (end, keys) in all {
            for (key, p) in drain_sorted(keys) {
                self.emit(end, &key, &p, out);
            }
        }
    }
}

impl UdoFactory for WindowMergeFactory {
    fn name(&self) -> &str {
        "window-merge"
    }

    fn create(&self) -> Box<dyn Udo> {
        Box::new(WindowMergeUdo {
            func: self.func,
            keyed: self.keyed,
            pending: BTreeMap::new(),
            watermark: i64::MIN,
        })
    }

    fn cost_profile(&self) -> CostProfile {
        // Merging is one map update per partial: far cheaper than the
        // windowed pre-aggregation it complements.
        CostProfile::stateful(900.0, 1.0, 0.8)
    }

    fn output_schema(&self, input: &Schema) -> Schema {
        input.clone()
    }

    fn properties(&self) -> UdoProperties {
        UdoProperties {
            stateful: true,
            keyed_state_field: if self.keyed { Some(0) } else { None },
            merges_hot_key_splits: true,
            ..UdoProperties::default()
        }
    }
}

/// Build the merge operator for a hot-key-split pre-aggregation producing
/// `[key,] window_end, agg` tuples with the given (time-policy, mergeable)
/// function.
///
/// # Panics
/// Panics when `func` is not mergeable from finished values (`Avg`/`Mean`):
/// constructing an incorrect merge is a plan-authoring bug, caught eagerly.
pub fn window_merge_udo(func: AggFunc, keyed: bool) -> OpKind {
    assert!(
        is_mergeable(func),
        "{func} partials cannot be merged from finished values; \
         pre-aggregate with Sum/Count/Min/Max instead"
    );
    OpKind::Udo {
        factory: Arc::new(WindowMergeFactory { func, keyed }),
    }
}

/// Schema helper: the merge stage echoes its input layout
/// (`[key,] window_end, agg`).
pub fn merge_output_schema(key_ty: Option<FieldType>) -> Schema {
    let mut fields = Vec::new();
    if let Some(ty) = key_ty {
        fields.push(crate::value::Field::new("key", ty));
    }
    fields.push(crate::value::Field::new("window_end", FieldType::Timestamp));
    fields.push(crate::value::Field::new("agg", FieldType::Double));
    Schema::new(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partial(key: i64, end: i64, v: f64) -> Tuple {
        let mut t = Tuple::new(vec![
            Value::Int(key),
            Value::Timestamp(end),
            Value::Double(v),
        ]);
        t.event_time = end - 1;
        t
    }

    fn make(func: AggFunc) -> Box<dyn Udo> {
        WindowMergeFactory { func, keyed: true }.create()
    }

    #[test]
    fn partials_merge_per_key_and_window() {
        let mut m = make(AggFunc::Sum);
        let mut out = Vec::new();
        m.on_tuple(0, partial(1, 100, 3.0), &mut out);
        m.on_tuple(0, partial(1, 100, 4.0), &mut out);
        m.on_tuple(0, partial(2, 100, 7.0), &mut out);
        m.on_tuple(0, partial(1, 200, 1.0), &mut out);
        assert!(out.is_empty(), "nothing released before the watermark");
        m.on_watermark(100, &mut out);
        assert_eq!(out.len(), 2, "both keys' windows at end=100 released");
        let k1 = out
            .iter()
            .find(|t| t.values[0] == Value::Int(1))
            .expect("key 1");
        assert_eq!(k1.values[2], Value::Double(7.0), "3 + 4 merged");
        m.on_flush(&mut out);
        assert_eq!(out.len(), 3, "flush drains the end=200 window");
    }

    #[test]
    fn min_max_merge_take_extrema() {
        let mut m = make(AggFunc::Min);
        let mut out = Vec::new();
        m.on_tuple(0, partial(1, 100, 5.0), &mut out);
        m.on_tuple(0, partial(1, 100, 2.0), &mut out);
        m.on_flush(&mut out);
        assert_eq!(out[0].values[2], Value::Double(2.0));
    }

    #[test]
    fn late_partial_passes_through_as_late_update() {
        let mut m = make(AggFunc::Sum);
        let mut out = Vec::new();
        m.on_watermark(500, &mut out);
        m.on_tuple(0, partial(1, 100, 9.0), &mut out);
        assert_eq!(out.len(), 1, "late partial forwarded, not dropped");
        assert_eq!(out[0].values[2], Value::Double(9.0));
    }

    #[test]
    fn split_plus_merge_equals_unsplit_sum() {
        // Partition one key's tuples over 3 "pre-aggregators" by hand; the
        // merged totals must equal the single-instance aggregation.
        let values: Vec<f64> = (1..=30).map(|i| i as f64).collect();
        let partials: Vec<f64> = (0..3)
            .map(|s| values.iter().skip(s).step_by(3).sum())
            .collect();
        let mut m = make(AggFunc::Sum);
        let mut out = Vec::new();
        for p in &partials {
            m.on_tuple(0, partial(1, 100, *p), &mut out);
        }
        m.on_watermark(100, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values[2], Value::Double(values.iter().sum()));
    }

    #[test]
    #[should_panic(expected = "cannot be merged")]
    fn avg_merge_is_rejected() {
        let _ = window_merge_udo(AggFunc::Avg, true);
    }

    #[test]
    fn factory_declares_merge_property() {
        let f = WindowMergeFactory {
            func: AggFunc::Sum,
            keyed: true,
        };
        let p = f.properties();
        assert!(p.merges_hot_key_splits);
        assert_eq!(p.keyed_state_field, Some(0));
        assert!(p.bounded_state);
    }
}
