//! Keyed operator state: the symmetric-hash join buffer.
//!
//! Joins in PDSP-Bench queries are windowed equi-joins (Figure 2's 2-way
//! join; synthetic structures go up to 6-way via chained binary joins). The
//! buffer retains each side's tuples for the window extent and probes the
//! opposite side on arrival.

use crate::error::Result;
use crate::value::{KeyValue, Tuple, Value};
use crate::window::{decode_snapshot, WindowPolicy, WindowSpec};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// One side of a symmetric hash join.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
struct JoinSide {
    /// key -> buffered tuples (oldest first).
    buckets: HashMap<KeyValue, VecDeque<Tuple>>,
    /// Total buffered tuples across keys (state-size accounting).
    len: usize,
}

impl JoinSide {
    fn insert(&mut self, key: Value, tuple: Tuple, max_per_key: Option<usize>) {
        let bucket = self.buckets.entry(KeyValue(key)).or_default();
        bucket.push_back(tuple);
        self.len += 1;
        if let Some(cap) = max_per_key {
            while bucket.len() > cap {
                bucket.pop_front();
                self.len -= 1;
            }
        }
    }

    fn evict_older_than(&mut self, min_event_time: i64) {
        let mut evicted = 0usize;
        self.buckets.retain(|_, bucket| {
            while bucket
                .front()
                .is_some_and(|t| t.event_time < min_event_time)
            {
                bucket.pop_front();
                evicted += 1;
            }
            !bucket.is_empty()
        });
        self.len -= evicted;
    }
}

/// Windowed symmetric hash join state for one physical join instance.
///
/// * Time policy: tuples `l`, `r` join when `|l.event_time - r.event_time|
///   < length` (interval-join semantics); state is evicted by watermark.
/// * Count policy: each side retains the last `length` tuples per key.
#[derive(Debug)]
pub struct JoinState {
    spec: WindowSpec,
    left_key: usize,
    right_key: usize,
    left: JoinSide,
    right: JoinSide,
    /// Highest watermark observed (time policy); tuples older than the
    /// eviction horizon behind it are unjoinable and counted late.
    watermark: i64,
    /// Extra event-time slack before a behind-watermark tuple counts late.
    allowed_lateness: i64,
    /// Tuples discarded as unjoinable: key field missing, or arrived behind
    /// the eviction horizon (their partners are already gone). Accounted,
    /// never silent.
    late: u64,
}

impl JoinState {
    /// Create join state over the given window and key fields.
    pub fn new(spec: WindowSpec, left_key: usize, right_key: usize) -> Self {
        JoinState {
            spec,
            left_key,
            right_key,
            left: JoinSide::default(),
            right: JoinSide::default(),
            watermark: i64::MIN,
            allowed_lateness: 0,
            late: 0,
        }
    }

    /// Accept time-policy tuples up to `ms` behind the eviction horizon
    /// before discarding them as late. Configuration, not checkpointed.
    pub fn set_allowed_lateness(&mut self, ms: i64) {
        self.allowed_lateness = ms.max(0);
    }

    /// Tuples discarded as unjoinable (missing key field or behind the
    /// eviction horizon).
    pub fn late_events(&self) -> u64 {
        self.late
    }

    /// Total buffered tuples on both sides.
    pub fn buffered(&self) -> usize {
        self.left.len + self.right.len
    }

    /// Process a tuple arriving on `port` (0 = left, 1 = right); pushes
    /// concatenated join results into `out`.
    pub fn on_tuple(&mut self, port: usize, tuple: Tuple, out: &mut Vec<Tuple>) {
        let (own_key_idx, other_key_idx) = if port == 0 {
            (self.left_key, self.right_key)
        } else {
            (self.right_key, self.left_key)
        };
        let Some(key) = tuple.values.get(own_key_idx).cloned() else {
            self.late += 1; // key field missing: tuple cannot participate
            return;
        };
        if self.spec.policy == WindowPolicy::Time && self.watermark > i64::MIN {
            // Behind the eviction horizon (minus any allowance): every
            // possible partner has been evicted, so buffering or probing is
            // pointless — account and discard.
            let horizon = self
                .watermark
                .saturating_sub(self.spec.length as i64)
                .saturating_sub(self.allowed_lateness);
            if tuple.event_time < horizon {
                self.late += 1;
                return;
            }
        }

        // Probe the opposite side.
        let probe = if port == 0 { &self.right } else { &self.left };
        let _ = other_key_idx;
        if let Some(bucket) = probe.buckets.get(&KeyValue(key.clone())) {
            for other in bucket {
                if self.spec.policy == WindowPolicy::Time {
                    let dt = (tuple.event_time - other.event_time).unsigned_abs();
                    if dt >= self.spec.length {
                        continue;
                    }
                }
                let (l, r) = if port == 0 {
                    (&tuple, other)
                } else {
                    (other, &tuple)
                };
                let mut values = Vec::with_capacity(l.values.len() + r.values.len());
                values.extend_from_slice(&l.values);
                values.extend_from_slice(&r.values);
                out.push(Tuple {
                    values,
                    event_time: l.event_time.max(r.event_time),
                    emit_ns: l.emit_ns.max(r.emit_ns),
                });
            }
        }

        // Insert into own side.
        let max_per_key = match self.spec.policy {
            WindowPolicy::Count => Some(self.spec.length as usize),
            WindowPolicy::Time => None,
        };
        let side = if port == 0 {
            &mut self.left
        } else {
            &mut self.right
        };
        side.insert(key, tuple, max_per_key);
    }

    /// Watermark: evict time-window state that can no longer join.
    pub fn on_watermark(&mut self, watermark: i64) {
        if self.spec.policy == WindowPolicy::Time {
            self.watermark = self.watermark.max(watermark);
            let horizon = watermark
                .saturating_sub(self.spec.length as i64)
                .saturating_sub(self.allowed_lateness);
            self.left.evict_older_than(horizon);
            self.right.evict_older_than(horizon);
        }
    }

    /// Serialize both join buffers for a checkpoint (the spec and key
    /// fields travel with the plan, not the snapshot).
    pub fn snapshot(&self) -> Result<Vec<u8>> {
        let snap = JoinSnapshot {
            left: self.left.clone(),
            right: self.right.clone(),
            watermark: self.watermark,
            late: self.late,
        };
        serde_json::to_string(&snap)
            .map(String::into_bytes)
            .map_err(|e| crate::error::EngineError::Checkpoint(format!("join snapshot: {e}")))
    }

    /// Replace both join buffers with a previously captured snapshot.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        let snap: JoinSnapshot = decode_snapshot(bytes, "join")?;
        self.left = snap.left;
        self.right = snap.right;
        self.watermark = snap.watermark;
        self.late = snap.late;
        Ok(())
    }
}

/// Dynamic portion of [`JoinState`] captured by checkpoints.
#[derive(Serialize, Deserialize)]
struct JoinSnapshot {
    left: JoinSide,
    right: JoinSide,
    watermark: i64,
    late: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(key: i64, et: i64) -> Tuple {
        let mut t = Tuple::new(vec![Value::Int(key), Value::Int(et * 10)]);
        t.event_time = et;
        t
    }

    #[test]
    fn matching_keys_join_within_window() {
        let mut j = JoinState::new(WindowSpec::tumbling_time(100), 0, 0);
        let mut out = Vec::new();
        j.on_tuple(0, t(1, 10), &mut out);
        assert!(out.is_empty(), "nothing buffered on right yet");
        j.on_tuple(1, t(1, 20), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values.len(), 4, "concatenated width");
        assert_eq!(out[0].event_time, 20);
    }

    #[test]
    fn non_matching_keys_do_not_join() {
        let mut j = JoinState::new(WindowSpec::tumbling_time(100), 0, 0);
        let mut out = Vec::new();
        j.on_tuple(0, t(1, 10), &mut out);
        j.on_tuple(1, t(2, 20), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn time_window_bounds_join_distance() {
        let mut j = JoinState::new(WindowSpec::tumbling_time(50), 0, 0);
        let mut out = Vec::new();
        j.on_tuple(0, t(1, 0), &mut out);
        j.on_tuple(1, t(1, 49), &mut out);
        assert_eq!(out.len(), 1, "within window");
        j.on_tuple(1, t(1, 50), &mut out);
        assert_eq!(out.len(), 1, "exactly window length apart: no join");
    }

    #[test]
    fn watermark_evicts_expired_state() {
        let mut j = JoinState::new(WindowSpec::tumbling_time(50), 0, 0);
        let mut out = Vec::new();
        j.on_tuple(0, t(1, 0), &mut out);
        assert_eq!(j.buffered(), 1);
        j.on_watermark(100);
        assert_eq!(j.buffered(), 0);
        j.on_tuple(1, t(1, 40), &mut out);
        assert!(out.is_empty(), "left side was evicted");
    }

    #[test]
    fn count_window_caps_per_key_buffer() {
        let mut j = JoinState::new(WindowSpec::tumbling_count(2), 0, 0);
        let mut out = Vec::new();
        j.on_tuple(0, t(1, 1), &mut out);
        j.on_tuple(0, t(1, 2), &mut out);
        j.on_tuple(0, t(1, 3), &mut out); // evicts et=1
        j.on_tuple(1, t(1, 4), &mut out);
        assert_eq!(out.len(), 2, "joins with the 2 retained left tuples");
        assert_eq!(j.buffered(), 3);
    }

    #[test]
    fn multiple_matches_produce_cross_product() {
        let mut j = JoinState::new(WindowSpec::tumbling_time(1000), 0, 0);
        let mut out = Vec::new();
        j.on_tuple(0, t(7, 1), &mut out);
        j.on_tuple(0, t(7, 2), &mut out);
        j.on_tuple(0, t(7, 3), &mut out);
        j.on_tuple(1, t(7, 4), &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn join_key_fields_can_differ_per_side() {
        // Left keys on field 1, right keys on field 0.
        let mut j = JoinState::new(WindowSpec::tumbling_time(1000), 1, 0);
        let mut out = Vec::new();
        let mut left = Tuple::new(vec![Value::str("x"), Value::Int(5)]);
        left.event_time = 1;
        j.on_tuple(0, left, &mut out);
        let mut right = Tuple::new(vec![Value::Int(5), Value::str("y")]);
        right.event_time = 2;
        j.on_tuple(1, right, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn snapshot_restore_resumes_join_buffers() {
        let mut j = JoinState::new(WindowSpec::tumbling_time(1000), 0, 0);
        let mut out = Vec::new();
        j.on_tuple(0, t(7, 1), &mut out);
        j.on_tuple(0, t(7, 2), &mut out);
        let bytes = j.snapshot().unwrap();

        let mut r = JoinState::new(WindowSpec::tumbling_time(1000), 0, 0);
        r.restore(&bytes).unwrap();
        assert_eq!(r.buffered(), 2);
        r.on_tuple(1, t(7, 3), &mut out);
        assert_eq!(out.len(), 2, "restored left side joins with new right");
    }

    #[test]
    fn unjoinable_tuples_are_counted_not_silent() {
        let mut j = JoinState::new(WindowSpec::tumbling_time(50), 0, 0);
        let mut out = Vec::new();
        // Key field missing.
        let mut narrow = Tuple::new(vec![]);
        narrow.event_time = 1;
        j.on_tuple(0, narrow, &mut out);
        assert_eq!(j.late_events(), 1);
        // Behind the eviction horizon: partners are gone.
        j.on_watermark(100);
        j.on_tuple(1, t(1, 40), &mut out);
        assert_eq!(j.late_events(), 2);
        assert_eq!(j.buffered(), 0, "late tuple was not buffered");
        // Allowed lateness widens the horizon.
        let mut k = JoinState::new(WindowSpec::tumbling_time(50), 0, 0);
        k.set_allowed_lateness(20);
        k.on_watermark(100);
        k.on_tuple(1, t(1, 40), &mut out);
        assert_eq!(k.late_events(), 0);
        assert_eq!(k.buffered(), 1);
    }

    #[test]
    fn snapshot_restore_preserves_late_count() {
        let mut j = JoinState::new(WindowSpec::tumbling_time(50), 0, 0);
        let mut out = Vec::new();
        j.on_watermark(100);
        j.on_tuple(0, t(1, 10), &mut out);
        assert_eq!(j.late_events(), 1);
        let bytes = j.snapshot().unwrap();
        let mut r = JoinState::new(WindowSpec::tumbling_time(50), 0, 0);
        r.restore(&bytes).unwrap();
        assert_eq!(r.late_events(), 1);
        // The restored watermark still gates new arrivals.
        r.on_tuple(0, t(1, 10), &mut out);
        assert_eq!(r.late_events(), 2);
    }

    #[test]
    fn emit_ns_propagates_max() {
        let mut j = JoinState::new(WindowSpec::tumbling_time(1000), 0, 0);
        let mut out = Vec::new();
        let mut a = t(1, 1);
        a.emit_ns = 100;
        let mut b = t(1, 2);
        b.emit_ns = 300;
        j.on_tuple(0, a, &mut out);
        j.on_tuple(1, b, &mut out);
        assert_eq!(out[0].emit_ns, 300);
    }
}
