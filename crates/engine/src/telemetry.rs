//! Telemetry glue between the runtimes and `pdsp-telemetry`.
//!
//! [`telemetry_for_plan`] builds a [`RunTelemetry`] whose registry has one
//! shard per physical instance (in instance-id order), and the
//! crate-private `Probe` is the per-worker handle the runtimes thread into
//! their loops: every method is an inlined no-op when telemetry is off, so
//! the uninstrumented hot path stays untouched.

use crate::exec::RunClock;
use crate::physical::PhysicalPlan;
use pdsp_telemetry::{
    FlightEventKind, FlightRecorder, FlushReason, InstanceMetrics, MetricsRegistry, RunTelemetry,
    Span, SpanKind, SpanRing, TelemetryConfig, TraceBook, TraceContext,
};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

/// Build per-run telemetry state sized to `plan`: one metrics shard per
/// physical instance, labelled with the logical operator name and hosted on
/// the `local` node (the threaded runtime runs in-process).
pub fn telemetry_for_plan(app: &str, plan: &PhysicalPlan, config: TelemetryConfig) -> RunTelemetry {
    let mut registry = MetricsRegistry::new(app);
    for inst in &plan.instances {
        registry.register(
            plan.logical.nodes[inst.node].name.clone(),
            inst.index,
            "local",
        );
    }
    RunTelemetry::new(registry, config)
}

/// Cheap per-worker telemetry handle. Cloned into each worker thread;
/// disabled probes carry `None` and compile down to branches on a local —
/// the uninstrumented hot path pays only a branch per call.
///
/// A default-constructed probe is disabled and every method is a no-op:
///
/// ```
/// use pdsp_engine::telemetry::Probe;
/// use pdsp_telemetry::FlushReason;
///
/// let probe = Probe::default();
/// assert!(!probe.enabled());
/// probe.tuples_in(10);
/// probe.batch_out(64, FlushReason::Size); // recorded nowhere, costs a branch
/// assert!(probe.now_if().is_none());
/// ```
#[derive(Clone, Default)]
pub struct Probe {
    metrics: Option<Arc<InstanceMetrics>>,
    recorder: Option<Arc<FlightRecorder>>,
    node: usize,
    instance: usize,
    tracer: Option<Tracer>,
    /// Trace context of the frame currently being processed by this worker
    /// (attached to flight-recorder events for crash correlation). `Cell`
    /// because probes are per-thread: cloning a probe into a worker thread
    /// gives that thread its own active slot.
    active: Cell<Option<TraceContext>>,
}

/// Span-recording half of a probe; present only when the run was started
/// with `TelemetryConfig::trace_every > 0`.
#[derive(Clone)]
struct Tracer {
    book: Arc<TraceBook>,
    ring: Arc<SpanRing>,
    op: Arc<str>,
    site: Arc<str>,
    clock: RunClock,
}

impl Probe {
    /// Probe for physical instance `id`, or a disabled probe when `tel` is
    /// `None`.
    pub fn for_instance(
        tel: Option<&RunTelemetry>,
        id: usize,
        node: usize,
        instance: usize,
    ) -> Self {
        match tel {
            Some(t) => Probe {
                metrics: Some(t.registry.instance(id)),
                recorder: Some(Arc::clone(&t.recorder)),
                node,
                instance,
                tracer: None,
                active: Cell::new(None),
            },
            None => Probe::default(),
        }
    }

    /// Attach span recording to this probe (no-op when the run's telemetry
    /// has tracing disabled). Registers a fresh span ring with the trace
    /// book; the returned probe must be owned by exactly one worker thread —
    /// the ring is single-writer.
    pub(crate) fn with_trace(
        mut self,
        tel: Option<&RunTelemetry>,
        op: &str,
        clock: RunClock,
    ) -> Self {
        if let Some(book) = tel.and_then(|t| t.trace.as_ref()) {
            self.tracer = Some(Tracer {
                ring: book.ring(),
                op: op.into(),
                site: book.site().into(),
                book: Arc::clone(book),
                clock,
            });
        }
        self
    }

    /// Whether this probe records anywhere.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// Whether this probe records spans.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Current run-clock stamp in nanoseconds; `0` when tracing is off (the
    /// untraced hot path must not pay for clock reads).
    #[inline]
    pub(crate) fn trace_now(&self) -> u64 {
        match &self.tracer {
            Some(t) => t.clock.now_ns(),
            None => 0,
        }
    }

    /// Head-sampling decision for source sequence number `seq`: true for
    /// every `trace_every`-th tuple when tracing is on.
    #[inline]
    pub(crate) fn trace_sample(&self, seq: u64) -> bool {
        match &self.tracer {
            Some(t) => seq.is_multiple_of(t.book.sample_every()),
            None => false,
        }
    }

    /// Start a new trace at this source: allocates a trace id, records the
    /// root `Source` span at `now_ns`, and returns the context downstream
    /// frames should carry.
    pub(crate) fn trace_source(&self, now_ns: u64) -> Option<TraceContext> {
        let t = self.tracer.as_ref()?;
        let trace = t.book.next_trace_id();
        let id = t.book.next_span_id();
        t.ring.push(Span {
            trace,
            id,
            parent: None,
            kind: SpanKind::Source,
            op: t.op.to_string(),
            site: t.site.to_string(),
            instance: self.instance,
            start_ns: now_ns,
            end_ns: now_ns,
        });
        Some(TraceContext { trace, parent: id })
    }

    /// Record a span of `kind` over `[start_ns, end_ns]` chained onto `ctx`
    /// and return the context continuing from the new span. Identity when
    /// tracing is off.
    pub(crate) fn trace_span(
        &self,
        ctx: TraceContext,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
    ) -> TraceContext {
        let Some(t) = &self.tracer else {
            return ctx;
        };
        let id = t.book.next_span_id();
        t.ring.push(Span {
            trace: ctx.trace,
            id,
            parent: Some(ctx.parent),
            kind,
            op: t.op.to_string(),
            site: t.site.to_string(),
            instance: self.instance,
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
        TraceContext {
            trace: ctx.trace,
            parent: id,
        }
    }

    /// Set the trace context flight-recorder events from this worker are
    /// attributed to (the frame currently being processed).
    #[inline]
    pub(crate) fn trace_active(&self, ctx: Option<TraceContext>) {
        if self.tracer.is_some() {
            self.active.set(ctx);
        }
    }

    /// Count `n` tuples received by this instance.
    #[inline]
    pub fn tuples_in(&self, n: u64) {
        if let Some(m) = &self.metrics {
            m.add_tuples_in(n);
        }
    }

    /// Count `n` tuples emitted by this instance.
    #[inline]
    pub fn tuples_out(&self, n: u64) {
        if let Some(m) = &self.metrics {
            m.add_tuples_out(n);
        }
    }

    /// Record one flushed outgoing micro-batch (size in tuples + trigger).
    #[inline]
    pub fn batch_out(&self, tuples: u64, reason: FlushReason) {
        if let Some(m) = &self.metrics {
            m.record_batch(tuples, reason);
        }
    }

    /// Record the current input queue length (backpressure proxy).
    #[inline]
    pub fn queue_depth(&self, depth: usize) {
        if let Some(m) = &self.metrics {
            m.observe_queue_depth(depth as u64);
        }
    }

    /// Record one end-to-end latency observation in nanoseconds.
    #[inline]
    pub fn latency_ns(&self, ns: u64) {
        if let Some(m) = &self.metrics {
            m.record_latency_ns(ns);
        }
    }

    /// Overwrite the cumulative fired-pane and late-tuple counts.
    #[inline]
    pub fn window_state(&self, fires: u64, late: u64) {
        if let Some(m) = &self.metrics {
            m.set_window_fires(fires);
            m.set_late_tuples(late);
        }
    }

    /// Count `n` tuples dropped by the load-shedding rung.
    #[inline]
    pub fn shed(&self, n: u64) {
        if let Some(m) = &self.metrics {
            m.add_shed(n);
        }
    }

    /// Record the current overload-escalation rung (0/1/2).
    #[inline]
    pub fn pressure(&self, level: u64) {
        if let Some(m) = &self.metrics {
            m.set_pressure(level);
        }
    }

    /// Record one completed checkpoint and its duration.
    #[inline]
    pub fn checkpoint(&self, ns: u64) {
        if let Some(m) = &self.metrics {
            m.record_checkpoint(ns);
        }
    }

    /// Count one recovery-driven restart of this instance.
    #[inline]
    pub fn restart(&self) {
        if let Some(m) = &self.metrics {
            m.add_restart();
        }
    }

    /// `Instant::now()` only when enabled — the disabled hot path must not
    /// pay for clock reads.
    #[inline]
    pub fn now_if(&self) -> Option<Instant> {
        self.metrics.as_ref().map(|_| Instant::now())
    }

    /// Account the time since `since` as idle (waiting for input) and
    /// return the processing start time.
    #[inline]
    pub fn mark_idle(&self, since: Option<Instant>) -> Option<Instant> {
        match (&self.metrics, since) {
            (Some(m), Some(t0)) => {
                let now = Instant::now();
                m.add_idle_ns(now.duration_since(t0).as_nanos() as u64);
                Some(now)
            }
            _ => None,
        }
    }

    /// Account the time since `since` as busy (processing a message).
    #[inline]
    pub fn mark_busy(&self, since: Option<Instant>) {
        if let (Some(m), Some(t0)) = (&self.metrics, since) {
            m.add_busy_ns(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Record a flight-recorder event attributed to this worker, tagged
    /// with the active trace context when tracing is on.
    pub fn event(&self, kind: FlightEventKind, detail: impl Into<String>) {
        if let Some(r) = &self.recorder {
            r.record_traced(kind, self.node, self.instance, detail, self.active.get());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::value::{FieldType, Schema};

    #[test]
    fn registry_matches_physical_instances() {
        let plan = PlanBuilder::new()
            .source("src", Schema::of(&[FieldType::Int]), 2)
            .sink("sink")
            .build()
            .unwrap();
        let phys = PhysicalPlan::expand(&plan).unwrap();
        let tel = telemetry_for_plan("WC", &phys, TelemetryConfig::default());
        assert_eq!(tel.registry.len(), phys.instance_count());
        let snaps = tel.registry.snapshot();
        assert_eq!(snaps[0].operator, "src");
        assert_eq!(snaps[0].node, "local");
        assert!(snaps.iter().any(|s| s.operator == "sink"));
    }

    #[test]
    fn disabled_probe_is_inert() {
        let p = Probe::default();
        assert!(!p.enabled());
        p.tuples_in(1);
        p.tuples_out(1);
        p.queue_depth(9);
        p.latency_ns(5);
        assert!(p.now_if().is_none());
        assert!(p.mark_idle(None).is_none());
        p.mark_busy(None);
        p.event(FlightEventKind::PaneFired, "nothing");
    }
}
