//! Seeded, deterministic plan corpus for the distributed runtime.
//!
//! Distributed deployment ships *plan specifications* — short strings like
//! `seeded:42:2048:1` — rather than serialized plans, because plans can
//! carry arbitrary UDO closures that do not cross process boundaries. The
//! coordinator and every worker process resolve the same spec string with
//! [`resolve`] and are guaranteed to construct bit-identical logical plans,
//! physical expansions, and source data: everything here is a pure function
//! of the spec.
//!
//! Sources are *throttled* (a short sleep every few hundred tuples) so a
//! chaos SIGKILL or connection drop lands mid-run instead of after all data
//! has already drained — the corpus exists to be killed.

use crate::agg::AggFunc;
use crate::builder::PlanBuilder;
use crate::error::{EngineError, Result};
use crate::expr::{CmpOp, Predicate};
use crate::physical::PhysicalPlan;
use crate::runtime::SourceFactory;
use crate::value::{FieldType, Schema, Tuple, Value};
use crate::window::WindowSpec;
use std::sync::Arc;

/// Resolve a plan specification string into an executable topology.
///
/// Every process of a distributed run calls this with the same spec and gets
/// the same answer. See [`SpecResolver`](crate::distributed::SpecResolver)
/// for how drivers with richer vocabularies (the CLI's `app:` specs) layer
/// on top.
pub type PlanAndSources = (PhysicalPlan, Vec<Arc<dyn SourceFactory>>);

/// Resolve a `seeded:<seed>[:<tuples>[:<pace_ms>]]` spec into a physical
/// plan plus its throttled sources.
///
/// * `seed` selects the plan shape and the generated tuple stream;
/// * `tuples` is the total tuple count across source instances
///   (default 4096);
/// * `pace_ms` is the sleep each source instance takes every 256 tuples
///   (default 1 — slow enough that a mid-run kill has something to kill).
///
/// Unknown spec prefixes are rejected with [`EngineError::InvalidConfig`],
/// which is what lets richer resolvers chain: try their own grammar first,
/// then fall back here.
pub fn resolve(spec: &str) -> Result<PlanAndSources> {
    let rest = spec.strip_prefix("seeded:").ok_or_else(|| {
        EngineError::InvalidConfig(format!(
            "unknown plan spec '{spec}' (expected seeded:<seed>[:<tuples>[:<pace_ms>]])"
        ))
    })?;
    let mut parts = rest.split(':');
    let parse = |what: &str, v: Option<&str>, default: u64| -> Result<u64> {
        match v {
            None | Some("") => Ok(default),
            Some(text) => text.parse().map_err(|_| {
                EngineError::InvalidConfig(format!(
                    "spec '{spec}': {what} '{text}' is not a number"
                ))
            }),
        }
    };
    let seed = parse("seed", parts.next(), 0)?;
    let tuples = parse("tuples", parts.next(), 4096)?.max(1);
    let pace_ms = parse("pace_ms", parts.next(), 1)?;
    if parts.next().is_some() {
        return Err(EngineError::InvalidConfig(format!(
            "spec '{spec}' has trailing fields"
        )));
    }
    build(seed, tuples, pace_ms)
}

/// Construct the seeded topology directly (the function behind [`resolve`]).
/// Exposed so equivalence tests can run the same plan on the threaded
/// runtime without going through spec strings.
pub fn build(seed: u64, tuples: u64, pace_ms: u64) -> Result<PlanAndSources> {
    // The corpus deliberately avoids time windows: count windows and
    // stateless operators make the sink multiset independent of message
    // interleaving, which is what lets a killed-and-recovered distributed
    // run be compared bit-for-bit against an unkilled threaded run.
    let shape = seed % 3;
    let logical = match shape {
        0 => PlanBuilder::new()
            .source("src", Schema::of(&[FieldType::Int, FieldType::Int]), 2)
            .filter("keep", Predicate::cmp(1, CmpOp::Ge, Value::Int(0)), 1.0)
            .set_parallelism(1, 2)
            .window_agg_keyed("sum", WindowSpec::tumbling_count(8), AggFunc::Sum, 1, 0)
            .set_parallelism(2, 2)
            .sink("sink")
            .build()?,
        1 => PlanBuilder::new()
            .source("src", Schema::of(&[FieldType::Int, FieldType::Int]), 2)
            .window_agg_keyed(
                "count",
                WindowSpec::tumbling_count(16),
                AggFunc::Count,
                1,
                0,
            )
            .set_parallelism(1, 3)
            .sink("sink")
            .build()?,
        _ => PlanBuilder::new()
            .source("src", Schema::of(&[FieldType::Int, FieldType::Int]), 2)
            .filter(
                "mod",
                Predicate::cmp(1, CmpOp::Lt, Value::Int(1 << 40)),
                1.0,
            )
            .set_parallelism(1, 2)
            .filter("pos", Predicate::cmp(1, CmpOp::Ge, Value::Int(0)), 1.0)
            .set_parallelism(2, 2)
            .sink("sink")
            .build()?,
    };
    let plan = PhysicalPlan::expand(&logical)?;
    let sources: Vec<Arc<dyn SourceFactory>> = vec![Arc::new(SeededSource {
        seed,
        tuples,
        pace_ms,
    })];
    Ok((plan, sources))
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic two-column integer stream `(key, value)`, partitioned
/// round-robin across source instances and throttled by `pace_ms`.
struct SeededSource {
    seed: u64,
    tuples: u64,
    pace_ms: u64,
}

impl SourceFactory for SeededSource {
    fn instance_iter(
        &self,
        instance_index: usize,
        parallelism: usize,
    ) -> Box<dyn Iterator<Item = Tuple> + Send> {
        let (seed, tuples, pace_ms) = (self.seed, self.tuples, self.pace_ms);
        let iter = (0..tuples)
            .filter(move |i| (*i as usize) % parallelism == instance_index)
            .enumerate()
            .map(move |(local_idx, i)| {
                // Draws are keyed by the global index so the stream content
                // is independent of the partitioning. The value column is a
                // pure function of the key: tuples of one key are
                // interchangeable, so keyed window aggregates cannot depend
                // on per-key arrival order — which is what makes runs
                // comparable across backends at all (the merge order of a
                // multi-channel keyed exchange is inherently racy).
                let mut state = seed ^ i.wrapping_mul(0x9E37_79B9);
                let key = splitmix64(&mut state) % 16;
                let mut vstate = seed ^ key.wrapping_mul(0xA24B_AED4);
                let value = splitmix64(&mut vstate) % 1_000;
                if pace_ms > 0 && local_idx > 0 && local_idx % 256 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(pace_ms));
                }
                let mut t = Tuple::new(vec![Value::Int(key as i64), Value::Int(value as i64)]);
                t.event_time = i as i64;
                t
            });
        Box::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{RunConfig, ThreadedRuntime};

    #[test]
    fn specs_resolve_deterministically() {
        for spec in ["seeded:0:512:0", "seeded:1:512:0", "seeded:2:512:0"] {
            let (a, src_a) = resolve(spec).unwrap();
            let (b, src_b) = resolve(spec).unwrap();
            assert_eq!(a.instance_count(), b.instance_count(), "{spec}");
            let ta: Vec<Tuple> = src_a[0].instance_iter(0, 2).collect();
            let tb: Vec<Tuple> = src_b[0].instance_iter(0, 2).collect();
            assert_eq!(ta, tb, "{spec}");
        }
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        assert!(matches!(
            resolve("app:WC"),
            Err(EngineError::InvalidConfig(_))
        ));
        assert!(matches!(
            resolve("seeded:x"),
            Err(EngineError::InvalidConfig(_))
        ));
        assert!(matches!(
            resolve("seeded:1:2:3:4"),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn partitions_cover_the_stream_disjointly() {
        let (_, sources) = resolve("seeded:7:100:0").unwrap();
        let a: Vec<Tuple> = sources[0].instance_iter(0, 2).collect();
        let b: Vec<Tuple> = sources[0].instance_iter(1, 2).collect();
        assert_eq!(a.len() + b.len(), 100);
    }

    #[test]
    fn corpus_plans_execute_on_the_threaded_runtime() {
        for seed in 0..3 {
            let (plan, sources) = build(seed, 256, 0).unwrap();
            let rt = ThreadedRuntime::new(RunConfig::default());
            let res = rt.run(&plan, &sources).unwrap();
            assert_eq!(res.tuples_in, 256, "seed {seed}");
            assert!(res.tuples_out > 0, "seed {seed}");
        }
    }
}
