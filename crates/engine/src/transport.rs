//! Pluggable data-plane transport.
//!
//! Every runtime hands its worker loops a set of [`Sender`] endpoints, one
//! per downstream physical instance. Where those senders deliver is the
//! transport's business: [`LocalTransport`] returns the real in-process
//! channel senders (the threaded and fault-tolerant runtimes are the
//! `local` instantiation of the trait), while the distributed runtime's
//! mesh transport returns proxy senders whose frames are serialized onto a
//! TCP connection to the worker hosting the target instance. The worker
//! loops — and the [`crate::batch::EdgeBatcher`] hot path — are transport
//! agnostic: they only ever see `Sender<Envelope>`.

use crate::error::{EngineError, Result};
use crate::physical::OutRoute;
use crate::runtime::Envelope;
use crossbeam_channel::Sender;

/// A source of per-instance delivery endpoints. See the module docs.
pub(crate) trait Transport: Send + Sync {
    /// Sender delivering into `instance`'s input queue, wherever that
    /// instance lives.
    fn sender(&self, instance: usize) -> Option<Sender<Envelope>>;

    /// Label for diagnostics ("local", "tcp").
    fn kind(&self) -> &'static str;

    /// Materialize the per-route downstream sender matrix for one
    /// instance's out-routes — the shape the worker loops and
    /// [`crate::batch::EdgeBatcher`] consume.
    fn downstream_for(&self, routes: &[OutRoute]) -> Result<Vec<Vec<Sender<Envelope>>>> {
        let mut downstream = Vec::with_capacity(routes.len());
        for r in routes {
            let mut txs = Vec::with_capacity(r.targets.len());
            for t in r.targets.iter() {
                let tx = self.sender(t.instance).ok_or_else(|| {
                    EngineError::Execution(format!(
                        "internal routing error: {} transport has no endpoint for instance {}",
                        self.kind(),
                        t.instance
                    ))
                })?;
                txs.push(tx);
            }
            downstream.push(txs);
        }
        Ok(downstream)
    }
}

/// In-process transport: every instance's endpoint is its real channel
/// sender. Dropping the transport drops the engine's copies of the senders,
/// so receivers observe disconnects when workers die.
pub(crate) struct LocalTransport {
    senders: Vec<Sender<Envelope>>,
}

impl LocalTransport {
    /// Wrap the per-instance input senders.
    pub(crate) fn new(senders: Vec<Sender<Envelope>>) -> Self {
        LocalTransport { senders }
    }
}

impl Transport for LocalTransport {
    fn sender(&self, instance: usize) -> Option<Sender<Envelope>> {
        self.senders.get(instance).cloned()
    }

    fn kind(&self) -> &'static str {
        "local"
    }
}
