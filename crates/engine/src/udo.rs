//! User-defined operators (UDOs).
//!
//! The real-world applications in PDSP-Bench (Table 2) mix standard SPS
//! operators with custom logic — outlier scoring, sentiment classification,
//! toll accounting, … The paper's observation O3 hinges on the distinction:
//! standard operators scale predictably, UDOs carry state/coordination costs
//! that make scaling non-linear. A UDO therefore also publishes a
//! [`CostProfile`] that the cluster simulator uses in place of the built-in
//! operator cost table.

use crate::value::{Schema, Tuple};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Simulation-facing cost description of an operator.
///
/// Units are chosen so built-in operators and UDOs are directly comparable:
/// `cpu_ns_per_tuple` is the per-tuple service demand on a 1 GHz reference
/// core (the simulator divides by the node's clock), `selectivity` is the
/// expected output/input tuple ratio, and `state_factor` scales the
/// parallelism-coordination overhead (stateful operators pay more for
/// synchronization as instances multiply — the mechanism behind O2/O3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Per-tuple CPU demand in nanoseconds on a 1 GHz reference core.
    pub cpu_ns_per_tuple: f64,
    /// Expected output tuples per input tuple.
    pub selectivity: f64,
    /// Relative statefulness in [0, ~4]: 0 = stateless map/filter,
    /// 1 = windowed aggregation, 2+ = join-like or heavily stateful UDO.
    pub state_factor: f64,
}

impl CostProfile {
    /// A stateless operator profile.
    pub fn stateless(cpu_ns_per_tuple: f64, selectivity: f64) -> Self {
        CostProfile {
            cpu_ns_per_tuple,
            selectivity,
            state_factor: 0.0,
        }
    }

    /// A stateful operator profile.
    pub fn stateful(cpu_ns_per_tuple: f64, selectivity: f64, state_factor: f64) -> Self {
        CostProfile {
            cpu_ns_per_tuple,
            selectivity,
            state_factor,
        }
    }
}

/// How much the schema-inference pass may trust a UDO's declared
/// [`UdoFactory::output_schema`].
///
/// Inference cannot look inside a UDO closure, so the factory's schema
/// declaration is the only bridge across it. The policy states how firm
/// that bridge is: `Declared` is a verified contract, `Same` pins the UDO
/// to a pass-through shape, and `Opaque` is the escape hatch for operators
/// whose output layout genuinely depends on runtime data — inference keeps
/// going with the claimed schema, but every downstream schema finding is
/// downgraded to a hint because its premise is unverified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemaPolicy {
    /// `output_schema` is a verified contract: inference trusts it fully
    /// and downstream findings keep their full severity.
    Declared,
    /// The UDO emits tuples in exactly its input layout; inference uses
    /// the input schema and ignores `output_schema`.
    Same,
    /// `output_schema` is a best-effort claim. Inference continues with it
    /// but marks everything downstream as tainted, downgrading later
    /// schema findings to hints.
    Opaque,
}

/// Statically declared semantic properties of a UDO.
///
/// The engine cannot look inside a UDO closure, so correctness-relevant
/// facts (is the state keyed? does the operator need to see the whole
/// stream?) must be declared by the factory. `LogicalPlan::validate` and
/// the `pdsp-analyze` lint passes consume these declarations; the defaults
/// are the optimistic stateless-pure-function reading, so factories with
/// interesting semantics should override [`UdoFactory::properties`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdoProperties {
    /// Output depends only on input order and content (no clocks, RNGs, or
    /// external reads). Non-deterministic UDOs break checkpoint replay.
    pub deterministic: bool,
    /// The operator writes to the outside world (files, sockets, ...);
    /// replay after recovery duplicates those effects.
    pub side_effecting: bool,
    /// The operator keeps mutable cross-tuple state. Defaults to the cost
    /// profile's view (`state_factor > 0`).
    pub stateful: bool,
    /// State is partitioned by this input field: tuples sharing the field
    /// value must be routed to the same instance for parallel execution to
    /// match sequential execution.
    pub keyed_state_field: Option<usize>,
    /// The operator must observe the complete stream (global top-k,
    /// global distinct-count): only parallelism 1 (or broadcast
    /// replication) computes the sequential answer.
    pub requires_global_view: bool,
    /// Per-instance state is an approximation whose output quality is
    /// acceptable under any input partitioning (e.g. a per-partition
    /// median baseline standing in for the global one). Suppresses the
    /// partitioning lints that `stateful` would otherwise trigger.
    pub partition_tolerant: bool,
    /// State size is bounded (ring buffer, windowed eviction, TTL).
    /// `false` means state grows with the input and will eventually
    /// exhaust memory in a long-running deployment.
    pub bounded_state: bool,
    /// The operator merges partial per-key results produced by hot-key
    /// splitting (`Partitioning::HashSplit` upstream). The analyzer's
    /// hazard pass uses this to recognize a split edge as mitigated.
    pub merges_hot_key_splits: bool,
    /// How firmly the factory's [`UdoFactory::output_schema`] may be
    /// trusted by schema inference (see [`SchemaPolicy`]).
    pub schema_policy: SchemaPolicy,
}

impl Default for UdoProperties {
    fn default() -> Self {
        UdoProperties {
            deterministic: true,
            side_effecting: false,
            stateful: false,
            keyed_state_field: None,
            requires_global_view: false,
            partition_tolerant: false,
            bounded_state: true,
            merges_hot_key_splits: false,
            schema_policy: SchemaPolicy::Declared,
        }
    }
}

/// One running instance of a user-defined operator.
///
/// Implementations hold per-instance state; the engine creates one via
/// [`UdoFactory::create`] for every parallel instance.
pub trait Udo: Send {
    /// Process one input tuple from the given input port.
    fn on_tuple(&mut self, port: usize, tuple: Tuple, out: &mut Vec<Tuple>);

    /// Process a whole micro-batch from the given input port. The default
    /// loops [`Udo::on_tuple`]; override when a batch can be processed more
    /// cheaply (e.g. fused operator chains).
    fn on_batch(&mut self, port: usize, tuples: Vec<Tuple>, out: &mut Vec<Tuple>) {
        for t in tuples {
            self.on_tuple(port, t, out);
        }
    }

    /// Observe a watermark (event-time ms). Default: ignore.
    fn on_watermark(&mut self, _watermark: i64, _out: &mut Vec<Tuple>) {}

    /// End-of-stream: flush any buffered state. Default: nothing.
    fn on_flush(&mut self, _out: &mut Vec<Tuple>) {}
}

/// Factory for a user-defined operator: describes it (name, schema, cost)
/// and creates per-instance state.
pub trait UdoFactory: Send + Sync {
    /// Stable operator name (appears in plans, features, and reports).
    fn name(&self) -> &str;

    /// Create one instance's state.
    fn create(&self) -> Box<dyn Udo>;

    /// Cost profile for the simulator and rule-based enumerator.
    fn cost_profile(&self) -> CostProfile;

    /// Output schema given the input schema.
    fn output_schema(&self, input: &Schema) -> Schema;

    /// Declared semantic properties. The default derives `stateful` from
    /// the cost profile and assumes a deterministic, effect-free,
    /// bounded-state operator with no keying requirement; override for
    /// anything more interesting.
    fn properties(&self) -> UdoProperties {
        UdoProperties {
            stateful: self.cost_profile().state_factor > 0.0,
            ..UdoProperties::default()
        }
    }
}

/// Shared handle to a UDO factory, cloneable into every plan copy.
pub type UdoRef = Arc<dyn UdoFactory>;

impl fmt::Debug for dyn UdoFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Udo({})", self.name())
    }
}

/// A stateless UDO defined by a plain function — convenient for map-like
/// custom logic in applications and tests.
pub struct FnUdo<F> {
    name: String,
    cost: CostProfile,
    out_schema_fn: fn(&Schema) -> Schema,
    f: F,
}

impl<F> FnUdo<F>
where
    F: Fn(Tuple, &mut Vec<Tuple>) + Send + Sync + Clone + 'static,
{
    /// Build a function-backed UDO factory.
    pub fn new(
        name: impl Into<String>,
        cost: CostProfile,
        out_schema_fn: fn(&Schema) -> Schema,
        f: F,
    ) -> Arc<Self> {
        Arc::new(FnUdo {
            name: name.into(),
            cost,
            out_schema_fn,
            f,
        })
    }
}

struct FnUdoInstance<F> {
    f: F,
}

impl<F> Udo for FnUdoInstance<F>
where
    F: Fn(Tuple, &mut Vec<Tuple>) + Send,
{
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, out: &mut Vec<Tuple>) {
        (self.f)(tuple, out);
    }
}

impl<F> UdoFactory for FnUdo<F>
where
    F: Fn(Tuple, &mut Vec<Tuple>) + Send + Sync + Clone + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn create(&self) -> Box<dyn Udo> {
        Box::new(FnUdoInstance { f: self.f.clone() })
    }

    fn cost_profile(&self) -> CostProfile {
        self.cost
    }

    fn output_schema(&self, input: &Schema) -> Schema {
        (self.out_schema_fn)(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{FieldType, Value};

    #[test]
    fn fn_udo_roundtrip() {
        let udo = FnUdo::new(
            "double-it",
            CostProfile::stateless(100.0, 1.0),
            |s: &Schema| s.clone(),
            |t: Tuple, out: &mut Vec<Tuple>| {
                let v = t.values[0].as_f64().unwrap() * 2.0;
                out.push(Tuple::new(vec![Value::Double(v)]));
            },
        );
        assert_eq!(udo.name(), "double-it");
        let mut inst = udo.create();
        let mut out = Vec::new();
        inst.on_tuple(0, Tuple::new(vec![Value::Int(21)]), &mut out);
        assert_eq!(out[0].values[0], Value::Double(42.0));
    }

    #[test]
    fn instances_are_independent() {
        // Each create() yields independent state; verify via a counting UDO.
        struct Counter {
            n: u64,
        }
        impl Udo for Counter {
            fn on_tuple(&mut self, _p: usize, _t: Tuple, out: &mut Vec<Tuple>) {
                self.n += 1;
                out.push(Tuple::new(vec![Value::Int(self.n as i64)]));
            }
        }
        struct CounterFactory;
        impl UdoFactory for CounterFactory {
            fn name(&self) -> &str {
                "counter"
            }
            fn create(&self) -> Box<dyn Udo> {
                Box::new(Counter { n: 0 })
            }
            fn cost_profile(&self) -> CostProfile {
                CostProfile::stateful(200.0, 1.0, 1.0)
            }
            fn output_schema(&self, _input: &Schema) -> Schema {
                Schema::of(&[FieldType::Int])
            }
        }
        let f = CounterFactory;
        let (mut a, mut b) = (f.create(), f.create());
        let mut out = Vec::new();
        a.on_tuple(0, Tuple::new(vec![]), &mut out);
        a.on_tuple(0, Tuple::new(vec![]), &mut out);
        b.on_tuple(0, Tuple::new(vec![]), &mut out);
        assert_eq!(out[1].values[0], Value::Int(2));
        assert_eq!(out[2].values[0], Value::Int(1), "b has fresh state");
    }

    #[test]
    fn default_properties_derive_statefulness_from_cost() {
        let pure = FnUdo::new(
            "pure",
            CostProfile::stateless(10.0, 1.0),
            |s: &Schema| s.clone(),
            |t: Tuple, out: &mut Vec<Tuple>| out.push(t),
        );
        assert!(!pure.properties().stateful);
        assert!(pure.properties().deterministic);
        assert!(pure.properties().bounded_state);
        let heavy = FnUdo::new(
            "heavy",
            CostProfile::stateful(10.0, 1.0, 2.0),
            |s: &Schema| s.clone(),
            |t: Tuple, out: &mut Vec<Tuple>| out.push(t),
        );
        assert!(heavy.properties().stateful);
        assert_eq!(heavy.properties().keyed_state_field, None);
    }

    #[test]
    fn cost_profile_constructors() {
        let s = CostProfile::stateless(10.0, 0.5);
        assert_eq!(s.state_factor, 0.0);
        let f = CostProfile::stateful(10.0, 1.0, 2.0);
        assert_eq!(f.state_factor, 2.0);
    }
}
