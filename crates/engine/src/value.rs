//! Dynamic values, tuples, and schemas for data streams.
//!
//! PDSP-Bench generates streams whose tuple width and per-field types vary
//! (Table 3: width 1-15 over {string, double, int}), so tuples are
//! dynamically typed. `Value` keeps string payloads behind `Arc<str>` so that
//! fan-out partitioning (broadcast, multi-consumer shuffles) clones cheaply.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a single tuple field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Double,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Event timestamp in milliseconds.
    Timestamp,
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FieldType::Int => "int",
            FieldType::Double => "double",
            FieldType::Str => "string",
            FieldType::Bool => "bool",
            FieldType::Timestamp => "timestamp",
        };
        f.write_str(s)
    }
}

/// A dynamically typed field value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Double(f64),
    /// UTF-8 string (cheaply cloneable).
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// Event timestamp in milliseconds since epoch.
    Timestamp(i64),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The [`FieldType`] of this value.
    pub fn field_type(&self) -> FieldType {
        match self {
            Value::Int(_) => FieldType::Int,
            Value::Double(_) => FieldType::Double,
            Value::Str(_) => FieldType::Str,
            Value::Bool(_) => FieldType::Bool,
            Value::Timestamp(_) => FieldType::Timestamp,
        }
    }

    /// Interpret the value as f64 for aggregation; strings/bools are errors
    /// handled by callers, here mapped to `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::Timestamp(t) => Some(*t as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(_) => None,
        }
    }

    /// Interpret as i64 where lossless.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Borrow as &str for string values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Total-order comparison used by filter predicates and sort-based tests.
    ///
    /// Numeric types (`Int`, `Double`, `Timestamp`, `Bool`) compare by
    /// numeric value; strings compare lexicographically. Comparisons across
    /// the numeric/string divide return `None`.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Str(_), _) | (_, Value::Str(_)) => None,
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Stable 64-bit hash used by hash partitioning and join keys.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        match self {
            Value::Int(i) => {
                h.write_u8(0);
                h.write_i64(*i);
            }
            Value::Double(d) => {
                h.write_u8(1);
                h.write_u64(d.to_bits());
            }
            Value::Str(s) => {
                h.write_u8(2);
                h.write_bytes(s.as_bytes());
            }
            Value::Bool(b) => {
                h.write_u8(3);
                h.write_u8(*b as u8);
            }
            Value::Timestamp(t) => {
                h.write_u8(4);
                h.write_i64(*t);
            }
        }
        h.finish64()
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(_), _) | (_, Value::Str(_)) => false,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => write!(f, "@{t}"),
        }
    }
}

/// FNV-1a, fixed so hashes are stable across runs and platforms (needed for
/// deterministic partitioning in tests and the simulator).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
    fn write_u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
    fn finish64(&self) -> u64 {
        self.0
    }
}

/// A named, typed field in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Field name (informational; operators address fields by index).
    pub name: String,
    /// Field type.
    pub ty: FieldType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of fields describing a stream's tuples.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    /// Ordered fields.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Shorthand: schema of unnamed fields with the given types.
    pub fn of(types: &[FieldType]) -> Self {
        Schema {
            fields: types
                .iter()
                .enumerate()
                .map(|(i, &ty)| Field::new(format!("f{i}"), ty))
                .collect(),
        }
    }

    /// Number of fields.
    pub fn width(&self) -> usize {
        self.fields.len()
    }

    /// Whether a tuple structurally matches this schema (arity + types).
    pub fn matches(&self, tuple: &Tuple) -> bool {
        tuple.values.len() == self.fields.len()
            && tuple
                .values
                .iter()
                .zip(&self.fields)
                .all(|(v, f)| v.field_type() == f.ty)
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// A data tuple flowing through the dataflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// Field values.
    pub values: Vec<Value>,
    /// Event time in milliseconds (set by the source, used by time windows).
    pub event_time: i64,
    /// Wall-clock (or simulated-clock) nanoseconds at which the source
    /// emitted the tuple; the sink uses it to compute end-to-end latency.
    pub emit_ns: u64,
}

impl Tuple {
    /// Construct a tuple with event time 0.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values,
            event_time: 0,
            emit_ns: 0,
        }
    }

    /// Construct with an explicit event time (ms).
    pub fn at(values: Vec<Value>, event_time: i64) -> Self {
        Tuple {
            values,
            event_time,
            emit_ns: 0,
        }
    }

    /// Tuple width.
    pub fn width(&self) -> usize {
        self.values.len()
    }

    /// Hash the given key fields (for hash partitioning / join keys).
    pub fn key_hash(&self, key_fields: &[usize]) -> u64 {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for &idx in key_fields {
            let h = self
                .values
                .get(idx)
                .map(Value::stable_hash)
                .unwrap_or(0x9e37_79b9_7f4a_7c15);
            acc = acc.rotate_left(13) ^ h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        acc
    }
}

/// Wrapper allowing `Value` to key a `HashMap` (group-by / join state).
///
/// Equality follows [`Value::eq`]; the hash is [`Value::stable_hash`].
/// `Double` keys containing NaN never compare equal and thus never group.
#[derive(Debug, Clone)]
pub struct KeyValue(pub Value);

impl PartialEq for KeyValue {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for KeyValue {}
impl Hash for KeyValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.stable_hash());
    }
}

// Newtype-transparent serde (checkpoint snapshots of keyed state).
impl Serialize for KeyValue {
    fn to_json_value(&self) -> serde::Value {
        self.0.to_json_value()
    }
}

impl Deserialize for KeyValue {
    fn from_json_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Value::from_json_value(value).map(KeyValue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types_roundtrip() {
        assert_eq!(Value::Int(3).field_type(), FieldType::Int);
        assert_eq!(Value::Double(1.5).field_type(), FieldType::Double);
        assert_eq!(Value::str("x").field_type(), FieldType::Str);
        assert_eq!(Value::Bool(true).field_type(), FieldType::Bool);
        assert_eq!(Value::Timestamp(9).field_type(), FieldType::Timestamp);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Value::Int(2).partial_cmp_value(&Value::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Double(1.5).partial_cmp_value(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::str("a").partial_cmp_value(&Value::Int(1)), None);
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert_eq!(
            Value::str("apple").partial_cmp_value(&Value::str("banana")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn stable_hash_distinguishes_types() {
        // Int(1) and Bool(true) must not collide via the type tag.
        assert_ne!(Value::Int(1).stable_hash(), Value::Bool(true).stable_hash());
        assert_ne!(
            Value::Int(1).stable_hash(),
            Value::Timestamp(1).stable_hash()
        );
    }

    #[test]
    fn stable_hash_is_deterministic() {
        let v = Value::str("hello world");
        assert_eq!(v.stable_hash(), v.stable_hash());
        // Known-answer check so the hash stays stable across refactors.
        assert_eq!(Value::Int(42).stable_hash(), {
            let mut h = Fnv64::new();
            h.write_u8(0);
            h.write_i64(42);
            h.finish64()
        });
    }

    #[test]
    fn schema_matches_checks_arity_and_types() {
        let s = Schema::of(&[FieldType::Int, FieldType::Str]);
        assert!(s.matches(&Tuple::new(vec![Value::Int(1), Value::str("a")])));
        assert!(!s.matches(&Tuple::new(vec![Value::Int(1)])));
        assert!(!s.matches(&Tuple::new(vec![Value::str("a"), Value::Int(1)])));
    }

    #[test]
    fn key_hash_depends_on_selected_fields_only() {
        let t1 = Tuple::new(vec![Value::Int(1), Value::str("a")]);
        let t2 = Tuple::new(vec![Value::Int(1), Value::str("b")]);
        assert_eq!(t1.key_hash(&[0]), t2.key_hash(&[0]));
        assert_ne!(t1.key_hash(&[1]), t2.key_hash(&[1]));
    }

    #[test]
    fn key_hash_order_sensitive() {
        let t = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        assert_ne!(t.key_hash(&[0, 1]), t.key_hash(&[1, 0]));
    }

    #[test]
    fn keyvalue_groups_equal_values() {
        use std::collections::HashMap;
        let mut m: HashMap<KeyValue, usize> = HashMap::new();
        *m.entry(KeyValue(Value::str("k"))).or_default() += 1;
        *m.entry(KeyValue(Value::str("k"))).or_default() += 1;
        *m.entry(KeyValue(Value::str("j"))).or_default() += 1;
        assert_eq!(m.len(), 2);
        assert_eq!(m[&KeyValue(Value::str("k"))], 2);
    }

    #[test]
    fn schema_index_of() {
        let s = Schema::new(vec![
            Field::new("id", FieldType::Int),
            Field::new("price", FieldType::Double),
        ]);
        assert_eq!(s.index_of("price"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }
}
