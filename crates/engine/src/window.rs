//! Window specifications and window state machines.
//!
//! PDSP-Bench enumerates window *type* (sliding, tumbling) and *policy*
//! (count-based, time-based) independently, with window durations of
//! 250-3000 ms, lengths of 5-1000 tuples and slide ratios of 0.3-0.7
//! (Table 3). A tumbling window is represented as a sliding window whose
//! slide equals its length, which the assigner exploits.

use crate::agg::{Accumulator, AggFunc};
use crate::error::{EngineError, Result};
use crate::value::{KeyValue, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// Window type: tumbling (non-overlapping) or sliding (overlapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowKind {
    /// Non-overlapping; slide == length.
    Tumbling,
    /// Overlapping; slide < length.
    Sliding,
}

/// Window policy: what "length" counts — tuples or milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowPolicy {
    /// Length/slide measured in tuples per key.
    Count,
    /// Length/slide measured in event-time milliseconds.
    Time,
}

/// A fully specified window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Count or time policy.
    pub policy: WindowPolicy,
    /// Window length (tuples or ms according to policy).
    pub length: u64,
    /// Slide (tuples or ms). `slide == length` means tumbling.
    pub slide: u64,
}

impl WindowSpec {
    /// Tumbling count window of `length` tuples.
    pub fn tumbling_count(length: u64) -> Self {
        WindowSpec {
            policy: WindowPolicy::Count,
            length,
            slide: length,
        }
    }

    /// Sliding count window.
    pub fn sliding_count(length: u64, slide: u64) -> Self {
        WindowSpec {
            policy: WindowPolicy::Count,
            length,
            slide,
        }
    }

    /// Tumbling time window of `length_ms`.
    pub fn tumbling_time(length_ms: u64) -> Self {
        WindowSpec {
            policy: WindowPolicy::Time,
            length: length_ms,
            slide: length_ms,
        }
    }

    /// Sliding time window.
    pub fn sliding_time(length_ms: u64, slide_ms: u64) -> Self {
        WindowSpec {
            policy: WindowPolicy::Time,
            length: length_ms,
            slide: slide_ms,
        }
    }

    /// Derived window kind.
    pub fn kind(&self) -> WindowKind {
        if self.slide >= self.length {
            WindowKind::Tumbling
        } else {
            WindowKind::Sliding
        }
    }

    /// Number of panes a sliding window spans (1 for tumbling).
    pub fn panes_per_window(&self) -> u64 {
        self.length.div_ceil(self.slide.max(1))
    }

    /// Whether the spec is structurally valid (non-zero, slide <= length).
    pub fn is_valid(&self) -> bool {
        self.length > 0 && self.slide > 0 && self.slide <= self.length
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let unit = match self.policy {
            WindowPolicy::Count => "tuples",
            WindowPolicy::Time => "ms",
        };
        write!(
            f,
            "{:?} {:?} len={} {} slide={}",
            self.kind(),
            self.policy,
            self.length,
            unit,
            self.slide
        )
    }
}

/// One fired window result.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult {
    /// Grouping key (`None` for global windows).
    pub key: Option<Value>,
    /// Window end: event-time ms for time windows, cumulative per-key tuple
    /// count for count windows.
    pub window_end: i64,
    /// Aggregate value (`None` when the aggregated window was empty).
    pub value: Option<f64>,
    /// Number of tuples aggregated.
    pub count: u64,
    /// Latest `emit_ns` among contributing tuples — the window result
    /// inherits it so sink latency covers the full pipeline.
    pub emit_ns: u64,
    /// Latest event time among contributing tuples.
    pub event_time: i64,
}

/// Per-key pane state for time windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TimePane {
    acc: Accumulator,
    max_emit_ns: u64,
    max_event_time: i64,
}

/// Per-key time-window state: panes plus the fire cursor (end of the next
/// window to fire), preventing duplicate firings across watermarks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct TimeKeyState {
    panes: BTreeMap<i64, TimePane>,
    next_end: Option<i64>,
}

const fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Per-key buffer for count windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CountBuf {
    values: VecDeque<(f64, u64, i64)>, // (value, emit_ns, event_time)
    seen: u64,
    since_fire: u64,
}

/// Keyed (or global) window aggregation state machine.
///
/// Count windows fire synchronously on tuple arrival; time windows fire when
/// the watermark passes a window end. Time windows use pane-based
/// pre-aggregation so sliding windows cost O(panes) per fire rather than
/// O(window contents).
pub struct KeyedWindower {
    spec: WindowSpec,
    func: AggFunc,
    /// Pane size for time windows: gcd(length, slide), so pane boundaries
    /// align exactly with every window start *and* end even when the length
    /// is not a multiple of the slide (ratios like 0.3/0.7 in Table 3).
    pane_ms: i64,
    /// Time policy: key -> pane/cursor state.
    time_state: HashMap<KeyValue, TimeKeyState>,
    /// Count policy: key -> ring buffer.
    count_state: HashMap<KeyValue, CountBuf>,
    /// Key used for global (un-keyed) windows.
    global_key: Value,
    keyed: bool,
    /// Highest watermark observed; time-policy tuples behind it are late.
    watermark: i64,
    /// Tuples up to this many ms behind the watermark are still accepted
    /// (re-firing their windows as late updates); 0 restores the strict
    /// drop-at-watermark rule. Configuration, not checkpointed.
    allowed_lateness: i64,
    /// Late (dropped) tuple count.
    late_events: u64,
    /// Window results fired so far (telemetry counter; not checkpointed —
    /// a restored instance counts fires since restore).
    fired: u64,
}

impl KeyedWindower {
    /// Create a windower. `keyed == false` aggregates the whole stream.
    pub fn new(spec: WindowSpec, func: AggFunc, keyed: bool) -> Self {
        KeyedWindower {
            spec,
            func,
            pane_ms: gcd(spec.length.max(1), spec.slide.max(1)) as i64,
            time_state: HashMap::new(),
            count_state: HashMap::new(),
            global_key: Value::Int(0),
            keyed,
            watermark: i64::MIN,
            allowed_lateness: 0,
            late_events: 0,
            fired: 0,
        }
    }

    /// Accept time-policy tuples up to `ms` behind the watermark. An
    /// accepted late tuple re-fires every window covering it at the next
    /// watermark — a *late update* carrying the late tuple plus any
    /// not-yet-expired panes, mirroring Flink's allowed-lateness semantics.
    /// Tuples later than the bound are still dropped and counted late.
    pub fn set_allowed_lateness(&mut self, ms: i64) {
        self.allowed_lateness = ms.max(0);
    }

    /// Tuples dropped because they arrived behind the watermark (time
    /// policy only; count windows have no notion of lateness), beyond any
    /// allowed lateness.
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Window results fired so far.
    pub fn panes_fired(&self) -> u64 {
        self.fired
    }

    /// The window spec.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Ingest one (key, value) pair; count windows may fire immediately.
    pub fn push(
        &mut self,
        key: Option<&Value>,
        value: f64,
        tuple: &Tuple,
        out: &mut Vec<WindowResult>,
    ) {
        let key = if self.keyed {
            key.cloned().unwrap_or_else(|| self.global_key.clone())
        } else {
            self.global_key.clone()
        };
        match self.spec.policy {
            WindowPolicy::Time => {
                if tuple.event_time < self.watermark.saturating_sub(self.allowed_lateness) {
                    self.late_events += 1;
                    return;
                }
                self.push_time(key, value, tuple)
            }
            WindowPolicy::Count => self.push_count(key, value, tuple, out),
        }
    }

    fn push_time(&mut self, key: Value, value: f64, tuple: &Tuple) {
        let pane_start = tuple.event_time.div_euclid(self.pane_ms) * self.pane_ms;
        let func = self.func;
        // A tuple behind the watermark here is late-but-allowed (the drop
        // check already passed): its windows may have fired, so the cursor
        // must rewind to re-fire them as late updates.
        let is_late = tuple.event_time < self.watermark;
        let state = self.time_state.entry(KeyValue(key)).or_default();
        let pane = state.panes.entry(pane_start).or_insert_with(|| TimePane {
            acc: Accumulator::new(func),
            max_emit_ns: 0,
            max_event_time: i64::MIN,
        });
        pane.acc.push(value);
        pane.max_emit_ns = pane.max_emit_ns.max(tuple.emit_ns);
        pane.max_event_time = pane.max_event_time.max(tuple.event_time);
        if is_late {
            // Earliest window end covering this pane: smallest k*slide +
            // length with k*slide > pane_start - length.
            let length = self.spec.length as i64;
            let slide = self.spec.slide as i64;
            let k_min = (pane_start - length).div_euclid(slide) + 1;
            let earliest_end = k_min * slide + length;
            state.next_end = Some(state.next_end.map_or(earliest_end, |c| c.min(earliest_end)));
        }
    }

    fn push_count(&mut self, key: Value, value: f64, tuple: &Tuple, out: &mut Vec<WindowResult>) {
        let len = self.spec.length as usize;
        let slide = self.spec.slide;
        let buf = self
            .count_state
            .entry(KeyValue(key.clone()))
            .or_insert_with(|| CountBuf {
                values: VecDeque::with_capacity(len.min(4096)),
                seen: 0,
                since_fire: 0,
            });
        buf.values
            .push_back((value, tuple.emit_ns, tuple.event_time));
        if buf.values.len() > len {
            buf.values.pop_front();
        }
        buf.seen += 1;
        buf.since_fire += 1;
        // Fire once the first full window exists, then every `slide` tuples.
        let fire = buf.seen >= self.spec.length && buf.since_fire >= slide;
        if fire {
            buf.since_fire = 0;
            let mut acc = Accumulator::new(self.func);
            let mut max_emit = 0u64;
            let mut max_et = i64::MIN;
            for &(v, e, t) in &buf.values {
                acc.push(v);
                max_emit = max_emit.max(e);
                max_et = max_et.max(t);
            }
            self.fired += 1;
            out.push(WindowResult {
                key: if self.keyed { Some(key) } else { None },
                window_end: buf.seen as i64,
                value: acc.finish(),
                count: acc.count(),
                emit_ns: max_emit,
                event_time: max_et,
            });
        }
    }

    /// Advance the watermark (event-time ms); fires all complete time
    /// windows. No-op for count windows.
    pub fn on_watermark(&mut self, watermark: i64, out: &mut Vec<WindowResult>) {
        if self.spec.policy != WindowPolicy::Time {
            return;
        }
        self.watermark = self.watermark.max(watermark);
        let fired_before = out.len();
        let slide = self.spec.slide as i64;
        let length = self.spec.length as i64;
        let keyed = self.keyed;
        let func = self.func;
        // Smallest window end strictly above the watermark (i128 dodges
        // overflow at the i64 extremes). The per-key cursor must never
        // advance past it: an accepted out-of-order tuple always belongs
        // to windows ending above the watermark, and a cursor beyond them
        // would expire its pane without ever firing it.
        let first_end_above = {
            let wm = self.watermark;
            let k = (wm as i128 - length as i128).div_euclid(slide as i128) + 1;
            (k * slide as i128 + length as i128).clamp(i64::MIN as i128, i64::MAX as i128) as i64
        };
        for (key, state) in self.time_state.iter_mut() {
            let Some((&first_pane, _)) = state.panes.iter().next() else {
                continue;
            };
            // Earliest window end covering the first pane: smallest
            // k*slide + length with k*slide > first_pane - length.
            let k_min = (first_pane - length).div_euclid(slide) + 1;
            let earliest_end = k_min * slide + length;
            let mut next_end = state.next_end.map_or(earliest_end, |c| c.max(earliest_end));
            while watermark >= next_end && !state.panes.is_empty() {
                let w_start = next_end - length;
                let mut acc = Accumulator::new(func);
                let mut max_emit = 0u64;
                let mut max_et = i64::MIN;
                for (_, pane) in state.panes.range(w_start..next_end) {
                    acc.merge(&pane.acc);
                    max_emit = max_emit.max(pane.max_emit_ns);
                    max_et = max_et.max(pane.max_event_time);
                }
                if acc.count() > 0 {
                    out.push(WindowResult {
                        key: if keyed { Some(key.0.clone()) } else { None },
                        window_end: next_end,
                        value: acc.finish(),
                        count: acc.count(),
                        emit_ns: max_emit,
                        event_time: max_et,
                    });
                }
                // `next_end` saturates rather than wrapping when flushed
                // with watermark == i64::MAX.
                next_end = next_end.saturating_add(slide);
                // Panes entirely before the next window's start are dead.
                let next_start = next_end - length;
                let expired: Vec<i64> = state.panes.range(..next_start).map(|(k, _)| *k).collect();
                for k in expired {
                    state.panes.remove(&k);
                }
            }
            state.next_end = Some(next_end.min(first_end_above));
        }
        self.time_state.retain(|_, s| !s.panes.is_empty());
        self.fired += (out.len() - fired_before) as u64;
    }

    /// Flush at end-of-stream: fire all remaining time windows.
    pub fn flush(&mut self, out: &mut Vec<WindowResult>) {
        self.on_watermark(i64::MAX, out);
    }

    /// Number of live keys (for state-size accounting).
    pub fn key_count(&self) -> usize {
        match self.spec.policy {
            WindowPolicy::Time => self.time_state.len(),
            WindowPolicy::Count => self.count_state.len(),
        }
    }

    /// Pane size in ms for time windows (gcd of length and slide).
    pub fn pane_ms(&self) -> i64 {
        self.pane_ms
    }

    /// Serialize the dynamic state (panes, buffers, watermark, late count)
    /// for a checkpoint. The spec/func/keyed configuration travels with the
    /// plan, not the snapshot.
    pub fn snapshot(&self) -> Result<Vec<u8>> {
        let snap = WindowerSnapshot {
            time_state: self.time_state.clone(),
            count_state: self.count_state.clone(),
            watermark: self.watermark,
            late_events: self.late_events,
        };
        serde_json::to_string(&snap)
            .map(String::into_bytes)
            .map_err(|e| EngineError::Checkpoint(format!("windower snapshot: {e}")))
    }

    /// Replace the dynamic state with a previously captured snapshot.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        let snap: WindowerSnapshot = decode_snapshot(bytes, "windower")?;
        self.time_state = snap.time_state;
        self.count_state = snap.count_state;
        self.watermark = snap.watermark;
        self.late_events = snap.late_events;
        Ok(())
    }
}

/// Dynamic portion of [`KeyedWindower`] captured by checkpoints.
#[derive(Serialize, Deserialize)]
struct WindowerSnapshot {
    time_state: HashMap<KeyValue, TimeKeyState>,
    count_state: HashMap<KeyValue, CountBuf>,
    watermark: i64,
    late_events: u64,
}

/// Shared snapshot decoding: UTF-8 then JSON, with a labelled error.
pub(crate) fn decode_snapshot<T: serde::Deserialize>(bytes: &[u8], what: &str) -> Result<T> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| EngineError::Checkpoint(format!("{what} snapshot not utf-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| EngineError::Checkpoint(format!("{what} restore: {e}")))
}

/// Session-window state for one key.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SessionState {
    acc: Accumulator,
    start_et: i64,
    last_et: i64,
    max_emit_ns: u64,
}

/// Keyed session windows: a session groups events whose gaps stay below
/// `gap_ms`; a session fires once the watermark passes `last event + gap`.
///
/// Session windows extend the paper's tumbling/sliding vocabulary with the
/// third standard Flink window type, so generated workloads can cover
/// activity-burst analytics (an expressiveness extension over Table 3).
pub struct SessionWindower {
    gap_ms: i64,
    func: AggFunc,
    keyed: bool,
    sessions: HashMap<KeyValue, SessionState>,
    global_key: Value,
    /// Events that arrived behind the watermark and were dropped.
    late_events: u64,
    watermark: i64,
    /// Events up to this many ms behind the watermark are still accepted
    /// (opening or extending a session that fires as a late update); 0
    /// restores the strict rule. Configuration, not checkpointed.
    allowed_lateness: i64,
    /// Sessions fired so far (telemetry counter; not checkpointed).
    fired: u64,
}

impl SessionWindower {
    /// Session windows with the given inactivity gap (ms).
    pub fn new(gap_ms: u64, func: AggFunc, keyed: bool) -> Self {
        SessionWindower {
            gap_ms: gap_ms.max(1) as i64,
            func,
            keyed,
            sessions: HashMap::new(),
            global_key: Value::Int(0),
            late_events: 0,
            watermark: i64::MIN,
            allowed_lateness: 0,
            fired: 0,
        }
    }

    /// Accept events up to `ms` behind the watermark; a late-accepted event
    /// opens (or extends) a session that fires as a late update at the next
    /// watermark. Events later than the bound stay dropped and counted.
    pub fn set_allowed_lateness(&mut self, ms: i64) {
        self.allowed_lateness = ms.max(0);
    }

    /// The inactivity gap in ms.
    pub fn gap_ms(&self) -> i64 {
        self.gap_ms
    }

    /// Number of dropped late events.
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Sessions fired so far.
    pub fn panes_fired(&self) -> u64 {
        self.fired
    }

    /// Live (unfired) sessions.
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    fn fire(key: Option<Value>, s: &SessionState, out: &mut Vec<WindowResult>) {
        out.push(WindowResult {
            key,
            window_end: s.last_et + 1,
            value: s.acc.finish(),
            count: s.acc.count(),
            emit_ns: s.max_emit_ns,
            event_time: s.last_et,
        });
    }

    /// Ingest one (key, value) pair; a gap larger than `gap_ms` closes the
    /// previous session for that key immediately.
    pub fn push(
        &mut self,
        key: Option<&Value>,
        value: f64,
        tuple: &Tuple,
        out: &mut Vec<WindowResult>,
    ) {
        if tuple.event_time < self.watermark.saturating_sub(self.allowed_lateness) {
            self.late_events += 1;
            return;
        }
        let key_v = if self.keyed {
            key.cloned().unwrap_or_else(|| self.global_key.clone())
        } else {
            self.global_key.clone()
        };
        let keyed = self.keyed;
        let entry = self.sessions.entry(KeyValue(key_v.clone()));
        let state = match entry {
            std::collections::hash_map::Entry::Occupied(mut occ) => {
                if tuple.event_time - occ.get().last_et > self.gap_ms {
                    // Gap exceeded: close the old session, start fresh.
                    self.fired += 1;
                    Self::fire(keyed.then(|| key_v.clone()), occ.get(), out);
                    *occ.get_mut() = SessionState {
                        acc: Accumulator::new(self.func),
                        start_et: tuple.event_time,
                        last_et: tuple.event_time,
                        max_emit_ns: 0,
                    };
                }
                occ.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(vac) => vac.insert(SessionState {
                acc: Accumulator::new(self.func),
                start_et: tuple.event_time,
                last_et: tuple.event_time,
                max_emit_ns: 0,
            }),
        };
        state.acc.push(value);
        state.last_et = state.last_et.max(tuple.event_time);
        state.max_emit_ns = state.max_emit_ns.max(tuple.emit_ns);
    }

    /// Advance the watermark; sessions inactive past the gap fire.
    pub fn on_watermark(&mut self, watermark: i64, out: &mut Vec<WindowResult>) {
        self.watermark = self.watermark.max(watermark);
        let gap = self.gap_ms;
        let keyed = self.keyed;
        let expired: Vec<KeyValue> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.last_et.saturating_add(gap) <= watermark)
            .map(|(k, _)| k.clone())
            .collect();
        for k in expired {
            if let Some(s) = self.sessions.remove(&k) {
                self.fired += 1;
                Self::fire(keyed.then(|| k.0.clone()), &s, out);
            }
        }
    }

    /// Fire everything (end of stream).
    pub fn flush(&mut self, out: &mut Vec<WindowResult>) {
        self.on_watermark(i64::MAX, out);
    }

    /// Event-time length of the currently open session for a key (tests /
    /// introspection).
    pub fn session_span(&self, key: &Value) -> Option<i64> {
        self.sessions
            .get(&KeyValue(key.clone()))
            .map(|s| s.last_et - s.start_et)
    }

    /// Serialize the open sessions, watermark and late count for a
    /// checkpoint.
    pub fn snapshot(&self) -> Result<Vec<u8>> {
        let snap = SessionSnapshot {
            sessions: self.sessions.clone(),
            watermark: self.watermark,
            late_events: self.late_events,
        };
        serde_json::to_string(&snap)
            .map(String::into_bytes)
            .map_err(|e| EngineError::Checkpoint(format!("session snapshot: {e}")))
    }

    /// Replace the dynamic state with a previously captured snapshot.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        let snap: SessionSnapshot = decode_snapshot(bytes, "session windower")?;
        self.sessions = snap.sessions;
        self.watermark = snap.watermark;
        self.late_events = snap.late_events;
        Ok(())
    }
}

/// Dynamic portion of [`SessionWindower`] captured by checkpoints.
#[derive(Serialize, Deserialize)]
struct SessionSnapshot {
    sessions: HashMap<KeyValue, SessionState>,
    watermark: i64,
    late_events: u64,
}

#[cfg(test)]
mod session_tests {
    use super::*;

    fn t(et: i64) -> Tuple {
        let mut t = Tuple::new(vec![Value::Int(0)]);
        t.event_time = et;
        t
    }

    #[test]
    fn events_within_gap_form_one_session() {
        let mut w = SessionWindower::new(100, AggFunc::Count, false);
        let mut out = Vec::new();
        for et in [0, 50, 120, 180] {
            w.push(None, 1.0, &t(et), &mut out);
        }
        assert!(out.is_empty());
        w.flush(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].count, 4);
    }

    #[test]
    fn gap_exceeded_closes_session_inline() {
        let mut w = SessionWindower::new(100, AggFunc::Sum, false);
        let mut out = Vec::new();
        w.push(None, 1.0, &t(0), &mut out);
        w.push(None, 2.0, &t(50), &mut out);
        w.push(None, 10.0, &t(500), &mut out); // gap 450 > 100
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, Some(3.0));
        w.flush(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].value, Some(10.0));
    }

    #[test]
    fn watermark_fires_inactive_sessions_only() {
        let mut w = SessionWindower::new(100, AggFunc::Count, true);
        let mut out = Vec::new();
        let (a, b) = (Value::str("a"), Value::str("b"));
        w.push(Some(&a), 1.0, &t(0), &mut out);
        w.push(Some(&b), 1.0, &t(450), &mut out);
        w.on_watermark(200, &mut out);
        assert_eq!(out.len(), 1, "only key a is inactive past the gap");
        assert_eq!(out[0].key, Some(Value::str("a")));
        assert_eq!(w.open_sessions(), 1);
    }

    #[test]
    fn late_events_are_counted_and_dropped() {
        let mut w = SessionWindower::new(100, AggFunc::Count, false);
        let mut out = Vec::new();
        w.push(None, 1.0, &t(1_000), &mut out);
        w.on_watermark(900, &mut out);
        w.push(None, 1.0, &t(500), &mut out); // behind the watermark
        assert_eq!(w.late_events(), 1);
        w.flush(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].count, 1, "late event did not join the session");
    }

    #[test]
    fn snapshot_restore_resumes_open_sessions() {
        let mut w = SessionWindower::new(100, AggFunc::Count, true);
        let mut out = Vec::new();
        let k = Value::str("a");
        w.push(Some(&k), 1.0, &t(0), &mut out);
        w.push(Some(&k), 1.0, &t(50), &mut out);
        let bytes = w.snapshot().unwrap();
        let mut r = SessionWindower::new(100, AggFunc::Count, true);
        r.restore(&bytes).unwrap();
        assert_eq!(r.open_sessions(), 1);
        r.push(Some(&k), 1.0, &t(120), &mut out);
        r.flush(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].count, 3, "session continued across restore");
    }

    #[test]
    fn session_span_tracks_extent() {
        let mut w = SessionWindower::new(100, AggFunc::Count, true);
        let mut out = Vec::new();
        let k = Value::Int(7);
        w.push(Some(&k), 1.0, &t(10), &mut out);
        w.push(Some(&k), 1.0, &t(90), &mut out);
        assert_eq!(w.session_span(&k), Some(80));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple_at(et: i64) -> Tuple {
        let mut t = Tuple::new(vec![Value::Int(0)]);
        t.event_time = et;
        t
    }

    #[test]
    fn spec_kind_derivation() {
        assert_eq!(WindowSpec::tumbling_count(10).kind(), WindowKind::Tumbling);
        assert_eq!(WindowSpec::sliding_count(10, 5).kind(), WindowKind::Sliding);
        assert_eq!(WindowSpec::tumbling_time(500).kind(), WindowKind::Tumbling);
    }

    #[test]
    fn spec_validity() {
        assert!(WindowSpec::tumbling_count(5).is_valid());
        assert!(!WindowSpec::sliding_count(5, 0).is_valid());
        assert!(!WindowSpec::sliding_count(0, 1).is_valid());
        assert!(!WindowSpec {
            policy: WindowPolicy::Count,
            length: 5,
            slide: 6
        }
        .is_valid());
    }

    #[test]
    fn tumbling_count_window_fires_every_n() {
        let mut w = KeyedWindower::new(WindowSpec::tumbling_count(3), AggFunc::Sum, false);
        let mut out = Vec::new();
        for i in 1..=7 {
            w.push(None, i as f64, &tuple_at(i), &mut out);
        }
        // Fires at tuples 3 and 6.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, Some(1.0 + 2.0 + 3.0));
        assert_eq!(out[1].value, Some(4.0 + 5.0 + 6.0));
    }

    #[test]
    fn sliding_count_window_overlap() {
        let mut w = KeyedWindower::new(WindowSpec::sliding_count(4, 2), AggFunc::Sum, false);
        let mut out = Vec::new();
        for i in 1..=8 {
            w.push(None, i as f64, &tuple_at(i), &mut out);
        }
        // First fire at tuple 4 (1+2+3+4), then every 2: [3..6], [5..8].
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].value, Some(10.0));
        assert_eq!(out[1].value, Some(3.0 + 4.0 + 5.0 + 6.0));
        assert_eq!(out[2].value, Some(5.0 + 6.0 + 7.0 + 8.0));
    }

    #[test]
    fn keyed_count_windows_are_independent() {
        let mut w = KeyedWindower::new(WindowSpec::tumbling_count(2), AggFunc::Count, true);
        let mut out = Vec::new();
        let (ka, kb) = (Value::str("a"), Value::str("b"));
        w.push(Some(&ka), 1.0, &tuple_at(1), &mut out);
        w.push(Some(&kb), 1.0, &tuple_at(2), &mut out);
        assert!(out.is_empty());
        w.push(Some(&ka), 1.0, &tuple_at(3), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, Some(Value::str("a")));
    }

    #[test]
    fn tumbling_time_window_fires_on_watermark() {
        let mut w = KeyedWindower::new(WindowSpec::tumbling_time(100), AggFunc::Sum, false);
        let mut out = Vec::new();
        w.push(None, 1.0, &tuple_at(10), &mut out);
        w.push(None, 2.0, &tuple_at(50), &mut out);
        w.push(None, 4.0, &tuple_at(120), &mut out);
        assert!(out.is_empty());
        w.on_watermark(99, &mut out);
        assert!(out.is_empty(), "window [0,100) not complete at wm=99");
        w.on_watermark(100, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, Some(3.0));
        assert_eq!(out[0].window_end, 100);
        w.flush(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].value, Some(4.0));
    }

    #[test]
    fn sliding_time_window_counts_overlaps() {
        // length 100, slide 50: tuple at t=60 is in [0,100) and [50,150).
        let mut w = KeyedWindower::new(WindowSpec::sliding_time(100, 50), AggFunc::Count, false);
        let mut out = Vec::new();
        w.push(None, 1.0, &tuple_at(60), &mut out);
        w.flush(&mut out);
        let containing: Vec<i64> = out
            .iter()
            .filter(|r| r.count > 0)
            .map(|r| r.window_end)
            .collect();
        assert_eq!(containing, vec![100, 150]);
    }

    #[test]
    fn time_window_results_carry_latest_emit_ns() {
        let mut w = KeyedWindower::new(WindowSpec::tumbling_time(100), AggFunc::Sum, false);
        let mut out = Vec::new();
        let mut t1 = tuple_at(10);
        t1.emit_ns = 111;
        let mut t2 = tuple_at(20);
        t2.emit_ns = 222;
        w.push(None, 1.0, &t1, &mut out);
        w.push(None, 1.0, &t2, &mut out);
        w.flush(&mut out);
        assert_eq!(out[0].emit_ns, 222);
    }

    #[test]
    fn watermark_is_idempotent() {
        let mut w = KeyedWindower::new(WindowSpec::tumbling_time(100), AggFunc::Sum, false);
        let mut out = Vec::new();
        w.push(None, 5.0, &tuple_at(10), &mut out);
        w.on_watermark(200, &mut out);
        w.on_watermark(200, &mut out);
        w.on_watermark(300, &mut out);
        assert_eq!(out.len(), 1, "window must fire exactly once");
    }

    #[test]
    fn negative_event_times_align_correctly() {
        // div_euclid keeps panes aligned for negative timestamps.
        let mut w = KeyedWindower::new(WindowSpec::tumbling_time(100), AggFunc::Count, false);
        let mut out = Vec::new();
        w.push(None, 1.0, &tuple_at(-50), &mut out);
        w.flush(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].window_end, 0); // window [-100, 0)
    }

    #[test]
    fn late_time_tuples_are_dropped_and_counted() {
        let mut w = KeyedWindower::new(WindowSpec::tumbling_time(100), AggFunc::Count, false);
        let mut out = Vec::new();
        w.push(None, 1.0, &tuple_at(150), &mut out);
        w.on_watermark(120, &mut out);
        // Behind the watermark: dropped.
        w.push(None, 1.0, &tuple_at(90), &mut out);
        assert_eq!(w.late_events(), 1);
        // At/ahead of the watermark: accepted.
        w.push(None, 1.0, &tuple_at(130), &mut out);
        assert_eq!(w.late_events(), 1);
        w.flush(&mut out);
        let total: u64 = out.iter().map(|r| r.count).sum();
        assert_eq!(total, 2, "only the on-time tuples are aggregated");
    }

    #[test]
    fn out_of_order_pane_behind_the_cursor_still_fires() {
        // Regression: a tuple ahead of the stream initializes the firing
        // cursor; an out-of-order tuple that is NOT late (still at/above
        // the watermark) then opens an earlier pane. That pane's window
        // must fire rather than expire silently.
        let mut w = KeyedWindower::new(WindowSpec::tumbling_time(100), AggFunc::Count, false);
        let mut out = Vec::new();
        w.push(None, 1.0, &tuple_at(150), &mut out);
        // Watermark far behind: nothing fires, nothing is late yet.
        w.on_watermark(10, &mut out);
        assert!(out.is_empty());
        // Out of order but at the watermark: accepted into window [0, 100).
        w.push(None, 1.0, &tuple_at(10), &mut out);
        assert_eq!(w.late_events(), 0);
        w.flush(&mut out);
        let total: u64 = out.iter().map(|r| r.count).sum();
        assert_eq!(total, 2, "the out-of-order tuple is aggregated, not lost");
        assert_eq!(out.len(), 2, "both windows fired");
    }

    #[test]
    fn allowed_lateness_accepts_and_refires_as_late_update() {
        let mut w = KeyedWindower::new(WindowSpec::tumbling_time(100), AggFunc::Count, false);
        w.set_allowed_lateness(50);
        let mut out = Vec::new();
        w.push(None, 1.0, &tuple_at(10), &mut out);
        w.on_watermark(120, &mut out);
        assert_eq!(out.len(), 1, "window [0,100) fired on time");
        // 30ms behind the bound 120-50=70: accepted, re-fires [0,100).
        w.push(None, 1.0, &tuple_at(90), &mut out);
        assert_eq!(w.late_events(), 0);
        w.on_watermark(120, &mut out);
        assert_eq!(out.len(), 2, "late update re-fired the window");
        assert_eq!(out[1].window_end, 100);
        assert_eq!(out[1].count, 1, "update carries the late tuple");
        // Beyond the bound: still dropped and counted.
        w.push(None, 1.0, &tuple_at(60), &mut out);
        assert_eq!(w.late_events(), 1);
        w.flush(&mut out);
        let total: u64 = out.iter().map(|r| r.count).sum();
        assert_eq!(total, 2, "accounting: 3 in = 2 contributed + 1 late");
    }

    #[test]
    fn allowed_lateness_zero_matches_strict_behaviour() {
        let mut strict = KeyedWindower::new(WindowSpec::sliding_time(100, 50), AggFunc::Sum, true);
        let mut zeroed = KeyedWindower::new(WindowSpec::sliding_time(100, 50), AggFunc::Sum, true);
        zeroed.set_allowed_lateness(0);
        let key = Value::str("k");
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for w in [(&mut strict, &mut a), (&mut zeroed, &mut b)] {
            let (win, out) = w;
            for et in [10, 160, 60, 90, 200] {
                win.push(Some(&key), et as f64, &tuple_at(et), out);
                win.on_watermark(et - 40, out);
            }
            win.flush(out);
        }
        assert_eq!(a, b);
        assert_eq!(strict.late_events(), zeroed.late_events());
    }

    #[test]
    fn session_allowed_lateness_admits_late_session() {
        let mut w = SessionWindower::new(100, AggFunc::Count, false);
        w.set_allowed_lateness(200);
        let mut out = Vec::new();
        w.push(None, 1.0, &tuple_at(1_000), &mut out);
        w.on_watermark(900, &mut out);
        // 100ms behind the watermark but inside the allowance.
        w.push(None, 1.0, &tuple_at(800), &mut out);
        assert_eq!(w.late_events(), 0);
        // Far beyond the allowance: dropped.
        w.push(None, 1.0, &tuple_at(100), &mut out);
        assert_eq!(w.late_events(), 1);
        w.flush(&mut out);
        let total: u64 = out.iter().map(|r| r.count).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn count_policy_ignores_watermarks() {
        let mut w = KeyedWindower::new(WindowSpec::tumbling_count(5), AggFunc::Sum, false);
        let mut out = Vec::new();
        w.push(None, 1.0, &tuple_at(1), &mut out);
        w.on_watermark(i64::MAX, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn panes_per_window() {
        assert_eq!(WindowSpec::sliding_time(100, 30).panes_per_window(), 4);
        assert_eq!(WindowSpec::tumbling_time(100).panes_per_window(), 1);
    }

    #[test]
    fn snapshot_restore_resumes_time_windows_identically() {
        let spec = WindowSpec::sliding_time(100, 50);
        let mut reference = KeyedWindower::new(spec, AggFunc::Sum, true);
        let mut out_ref = Vec::new();
        let key = Value::str("k");
        for et in [10, 60, 110, 170] {
            reference.push(Some(&key), et as f64, &tuple_at(et), &mut out_ref);
        }
        reference.on_watermark(100, &mut out_ref);

        // Rebuild a second windower from the midpoint snapshot, then feed
        // both the same tail; outputs must match exactly.
        let mut original = KeyedWindower::new(spec, AggFunc::Sum, true);
        let mut scratch = Vec::new();
        for et in [10, 60, 110, 170] {
            original.push(Some(&key), et as f64, &tuple_at(et), &mut scratch);
        }
        original.on_watermark(100, &mut scratch);
        let bytes = original.snapshot().unwrap();
        let mut restored = KeyedWindower::new(spec, AggFunc::Sum, true);
        restored.restore(&bytes).unwrap();

        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        for w in [reference, restored]
            .iter_mut()
            .zip([&mut out_a, &mut out_b])
        {
            let (win, out) = w;
            win.push(Some(&key), 230.0, &tuple_at(230), out);
            win.flush(out);
        }
        assert_eq!(out_a, out_b);
        assert!(!out_a.is_empty());
    }

    #[test]
    fn snapshot_restore_preserves_count_buffers_and_late_count() {
        let mut w = KeyedWindower::new(WindowSpec::tumbling_count(3), AggFunc::Sum, false);
        let mut out = Vec::new();
        w.push(None, 1.0, &tuple_at(1), &mut out);
        w.push(None, 2.0, &tuple_at(2), &mut out);
        let bytes = w.snapshot().unwrap();
        let mut r = KeyedWindower::new(WindowSpec::tumbling_count(3), AggFunc::Sum, false);
        r.restore(&bytes).unwrap();
        r.push(None, 3.0, &tuple_at(3), &mut out);
        assert_eq!(out.len(), 1, "restored buffer completes the window");
        assert_eq!(out[0].value, Some(6.0));
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut w = KeyedWindower::new(WindowSpec::tumbling_count(3), AggFunc::Sum, false);
        assert!(w.restore(b"not json").is_err());
        assert!(w.restore(&[0xff, 0xfe]).is_err());
    }
}
