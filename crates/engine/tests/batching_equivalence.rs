//! Property test for the micro-batched data plane: for randomly generated
//! plans, the batched engine must deliver the *identical* output multiset
//! as the tuple-at-a-time engine (`batch_size == 1`) — across batch sizes
//! (including one larger than the whole stream), flush timeouts, the
//! operator-fusion rewrite, and fault-injected exactly-once recovery runs.
//!
//! Determinism discipline: every generated edge is either `Forward` or
//! `Hash` on the key field, so each key follows a single instance path and
//! its tuple order is independent of thread scheduling. Outputs are then
//! compared as sorted multisets of rows.

use pdsp_engine::agg::AggFunc;
use pdsp_engine::chaining::fuse;
use pdsp_engine::expr::{CmpOp, Predicate, ScalarExpr};
use pdsp_engine::fault::{
    Backoff, DeliveryMode, FaultInjector, FtConfig, FtRuntime, RestartPolicy,
};
use pdsp_engine::plan::{LogicalPlan, Partitioning};
use pdsp_engine::runtime::{RunConfig, ThreadedRuntime, VecSource};
use pdsp_engine::window::WindowSpec;
use pdsp_engine::{FieldType, PhysicalPlan, PlanBuilder, Schema, Tuple, Value};
use std::time::Duration;

const KEYS: i64 = 5;
const TUPLES: i64 = 1_200;

/// Deterministic split-mix style generator; no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = self.0;
        (x ^ (x >> 33)).wrapping_mul(0xff51afd7ed558ccd) >> 31
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn source_tuples() -> Vec<Tuple> {
    (0..TUPLES)
        .map(|i| {
            let mut t = Tuple::new(vec![Value::Int(i % KEYS), Value::Int((i * 7) % 101)]);
            t.event_time = i;
            t
        })
        .collect()
}

/// A random plan: source -> 1..=3 stateless stages (filter/map, random
/// parallelism, Forward where parallelism allows so fusion has chains to
/// collapse) -> optionally a keyed window -> sink.
fn random_plan(rng: &mut Rng) -> LogicalPlan {
    let schema = Schema::of(&[FieldType::Int, FieldType::Int]);
    let mut b = PlanBuilder::new()
        .partition_by(Partitioning::Hash(vec![0]))
        .source("src", schema, 1);
    let mut prev_parallelism = 1usize;
    for s in 0..=rng.below(2) {
        let p = 1 + rng.below(3) as usize;
        let part = if p == prev_parallelism {
            Partitioning::Forward
        } else {
            Partitioning::Hash(vec![0])
        };
        b = b.partition_by(part);
        b = if rng.below(2) == 0 {
            b.filter(
                &format!("filter{s}"),
                Predicate::cmp(1, CmpOp::Gt, Value::Int(rng.below(40) as i64)),
                0.6,
            )
        } else {
            b.map(
                &format!("map{s}"),
                vec![
                    ScalarExpr::Field(0),
                    ScalarExpr::Add(
                        Box::new(ScalarExpr::Field(1)),
                        Box::new(ScalarExpr::Literal(Value::Int(rng.below(9) as i64))),
                    ),
                ],
            )
        };
        let id = b.cursor().expect("chained node exists");
        b = b.set_parallelism(id, p);
        prev_parallelism = p;
    }
    if rng.below(3) > 0 {
        let window = match rng.below(3) {
            0 => WindowSpec::tumbling_count(4 + rng.below(5)),
            1 => WindowSpec::sliding_count(8, 4),
            _ => WindowSpec::tumbling_time(50 + 25 * rng.below(3)),
        };
        let func = if rng.below(2) == 0 {
            AggFunc::Sum
        } else {
            AggFunc::Avg
        };
        b = b.window_agg_keyed("win", window, func, 1, 0);
        let id = b.cursor().expect("window node exists");
        b = b.set_parallelism(id, 1 + rng.below(3) as usize);
    }
    b = b.partition_by(Partitioning::Hash(vec![0]));
    b.sink("sink").build().expect("generated plan is valid")
}

fn run_plan(plan: &LogicalPlan, config: RunConfig) -> Vec<Vec<Value>> {
    let phys = PhysicalPlan::expand(plan).expect("plan expands");
    let res = ThreadedRuntime::new(config)
        .run(&phys, &[VecSource::new(source_tuples())])
        .expect("run succeeds");
    assert_eq!(
        res.tuples_out as usize,
        res.sink_tuples.len(),
        "capture limit not hit — the comparison sees every row"
    );
    multiset(res.sink_tuples)
}

fn multiset(rows: Vec<Tuple>) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = rows.into_iter().map(|t| t.values).collect();
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

fn config(batch_size: usize, flush_interval_ms: u64) -> RunConfig {
    RunConfig {
        batch_size,
        flush_interval_ms,
        ..RunConfig::default()
    }
}

#[test]
fn batched_runs_match_tuple_at_a_time_across_random_plans() {
    for seed in 0..8u64 {
        let mut rng = Rng(0x9e3779b97f4a7c15 ^ seed);
        let plan = random_plan(&mut rng);
        let reference = run_plan(&plan, config(1, 5));
        assert!(!reference.is_empty(), "seed {seed}: plan produces output");
        // Size-triggered flushes (7, 64), a batch larger than the whole
        // stream (everything rides linger/marker/EOS flushes), and a tight
        // linger timeout.
        for (batch, flush_ms) in [(7, 5), (64, 5), (2 * TUPLES as usize, 5), (64, 1)] {
            let got = run_plan(&plan, config(batch, flush_ms));
            assert_eq!(
                got, reference,
                "seed {seed}: batch {batch} / flush {flush_ms}ms diverged from per-tuple output"
            );
        }
    }
}

#[test]
fn fused_plans_match_unfused_output() {
    for seed in 0..8u64 {
        let mut rng = Rng(0xdeadbeefcafef00d ^ seed);
        let plan = random_plan(&mut rng);
        let reference = run_plan(&plan, config(1, 5));
        let fused = fuse(&plan).expect("fusion rewrite succeeds");
        for batch in [1usize, 64] {
            let got = run_plan(&fused, config(batch, 5));
            assert_eq!(
                got, reference,
                "seed {seed}: fused plan at batch {batch} diverged from unfused per-tuple output"
            );
        }
    }
}

#[test]
fn exactly_once_recovery_matches_reference_at_every_batch_size() {
    // Fixed representative plan: stateless stage into keyed count windows
    // (watermark-insensitive, so replay effects would show up directly).
    let plan = PlanBuilder::new()
        .partition_by(Partitioning::Hash(vec![0]))
        .source("src", Schema::of(&[FieldType::Int, FieldType::Int]), 1)
        .filter("gt", Predicate::cmp(1, CmpOp::Gt, Value::Int(10)), 0.8)
        .window_agg_keyed("win", WindowSpec::tumbling_count(8), AggFunc::Sum, 1, 0)
        .sink("sink")
        .build()
        .expect("plan is valid")
        .with_uniform_parallelism(2);
    let phys = PhysicalPlan::expand(&plan).expect("plan expands");

    let ft = |batch: usize, injector: Option<FaultInjector>| {
        let cfg = FtConfig {
            checkpoint_interval_tuples: 128,
            mode: DeliveryMode::ExactlyOnce,
            restart: RestartPolicy {
                max_restarts: 3,
                backoff: Backoff::Fixed(Duration::from_millis(5)),
            },
            run: config(batch, 5),
        };
        let res = FtRuntime::new(cfg)
            .run(&phys, &[VecSource::new(source_tuples())], injector)
            .expect("ft run completes");
        (multiset(res.result.sink_tuples), res.recovery.attempts)
    };

    let (reference, clean_attempts) = ft(1, None);
    assert_eq!(clean_attempts, 1);
    assert!(!reference.is_empty());
    for batch in [1usize, 7, 64] {
        let injector = FaultInjector::after_tuples(2, 0, 400);
        let (got, attempts) = ft(batch, Some(injector.clone()));
        assert!(injector.fired(), "batch {batch}: fault actually triggered");
        assert!(attempts > 1, "batch {batch}: a restart happened");
        assert_eq!(
            got, reference,
            "batch {batch}: exactly-once replay diverged from the clean per-tuple run"
        );
    }
}
