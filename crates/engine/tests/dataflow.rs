//! Topology integration tests for the threaded runtime: unions, broadcast
//! edges, diamonds, multi-sink plans, and chained multi-way joins.

use pdsp_engine::agg::AggFunc;
use pdsp_engine::expr::{CmpOp, Predicate};
use pdsp_engine::operator::OpKind;
use pdsp_engine::physical::PhysicalPlan;
use pdsp_engine::plan::{LogicalPlan, Partitioning};
use pdsp_engine::runtime::{RunConfig, ThreadedRuntime, VecSource};
use pdsp_engine::value::{FieldType, Schema, Tuple, Value};
use pdsp_engine::window::WindowSpec;
use pdsp_engine::PlanBuilder;
use std::sync::Arc;

fn int_tuples(range: std::ops::Range<i64>) -> Vec<Tuple> {
    range
        .map(|i| {
            let mut t = Tuple::new(vec![Value::Int(i)]);
            t.event_time = i;
            t
        })
        .collect()
}

fn rt() -> ThreadedRuntime {
    ThreadedRuntime::new(RunConfig::default())
}

#[test]
fn union_merges_two_sources() {
    let mut plan = LogicalPlan::default();
    let s1 = plan.add_node(
        "s1",
        OpKind::Source {
            schema: Schema::of(&[FieldType::Int]),
        },
        1,
    );
    let s2 = plan.add_node(
        "s2",
        OpKind::Source {
            schema: Schema::of(&[FieldType::Int]),
        },
        1,
    );
    let u = plan.add_node("union", OpKind::Union, 2);
    let k = plan.add_node("sink", OpKind::Sink, 1);
    plan.connect(s1, u, Partitioning::Rebalance);
    plan.connect(s2, u, Partitioning::Rebalance);
    plan.connect(u, k, Partitioning::Rebalance);
    let phys = PhysicalPlan::expand(&plan).unwrap();
    let res = rt()
        .run(
            &phys,
            &[
                VecSource::new(int_tuples(0..60)),
                VecSource::new(int_tuples(100..140)),
            ],
        )
        .unwrap();
    assert_eq!(res.tuples_out, 100);
    let from_first = res
        .sink_tuples
        .iter()
        .filter(|t| t.values[0].as_i64().unwrap() < 100)
        .count();
    assert_eq!(from_first, 60);
}

#[test]
fn broadcast_replicates_to_every_instance() {
    // source --broadcast--> count-agg (3 instances) -> sink.
    // Each of the 3 instances receives all 90 tuples; tumbling count 30
    // fires 3 windows per instance.
    let mut plan = LogicalPlan::default();
    let s = plan.add_node(
        "s",
        OpKind::Source {
            schema: Schema::of(&[FieldType::Int]),
        },
        1,
    );
    let agg = plan.add_node(
        "agg",
        OpKind::WindowAggregate {
            window: WindowSpec::tumbling_count(30),
            func: AggFunc::Count,
            agg_field: 0,
            key_field: None,
        },
        3,
    );
    let k = plan.add_node("sink", OpKind::Sink, 1);
    plan.connect(s, agg, Partitioning::Broadcast);
    plan.connect(agg, k, Partitioning::Rebalance);
    let phys = PhysicalPlan::expand(&plan).unwrap();
    let res = rt()
        .run(&phys, &[VecSource::new(int_tuples(0..90))])
        .unwrap();
    assert_eq!(res.tuples_out, 9, "3 instances x 3 windows");
    for t in &res.sink_tuples {
        assert_eq!(t.values[1], Value::Double(30.0));
    }
}

#[test]
fn diamond_topology_counts_both_branches() {
    // source -> {evens filter, odds filter} -> union -> sink: the two
    // branches partition the stream, the union restores it.
    let mut plan = LogicalPlan::default();
    let s = plan.add_node(
        "s",
        OpKind::Source {
            schema: Schema::of(&[FieldType::Int]),
        },
        1,
    );
    let evens = plan.add_node(
        "lt50",
        OpKind::Filter {
            predicate: Predicate::cmp(0, CmpOp::Lt, Value::Int(50)),
            selectivity: 0.5,
        },
        2,
    );
    let odds = plan.add_node(
        "ge50",
        OpKind::Filter {
            predicate: Predicate::cmp(0, CmpOp::Ge, Value::Int(50)),
            selectivity: 0.5,
        },
        2,
    );
    let u = plan.add_node("union", OpKind::Union, 1);
    let k = plan.add_node("sink", OpKind::Sink, 1);
    plan.connect(s, evens, Partitioning::Rebalance);
    plan.connect(s, odds, Partitioning::Rebalance);
    plan.connect(evens, u, Partitioning::Rebalance);
    plan.connect(odds, u, Partitioning::Rebalance);
    plan.connect(u, k, Partitioning::Rebalance);
    let phys = PhysicalPlan::expand(&plan).unwrap();
    let res = rt()
        .run(&phys, &[VecSource::new(int_tuples(0..100))])
        .unwrap();
    assert_eq!(res.tuples_out, 100, "branches are complementary");
}

#[test]
fn multi_sink_plans_deliver_to_both() {
    let mut plan = LogicalPlan::default();
    let s = plan.add_node(
        "s",
        OpKind::Source {
            schema: Schema::of(&[FieldType::Int]),
        },
        1,
    );
    let f = plan.add_node(
        "f",
        OpKind::Filter {
            predicate: Predicate::cmp(0, CmpOp::Lt, Value::Int(30)),
            selectivity: 0.3,
        },
        1,
    );
    let k1 = plan.add_node("sink-raw", OpKind::Sink, 1);
    let k2 = plan.add_node("sink-filtered", OpKind::Sink, 1);
    plan.connect(s, f, Partitioning::Rebalance);
    plan.connect(s, k1, Partitioning::Rebalance);
    plan.connect(f, k2, Partitioning::Rebalance);
    let phys = PhysicalPlan::expand(&plan).unwrap();
    let res = rt()
        .run(&phys, &[VecSource::new(int_tuples(0..100))])
        .unwrap();
    // sink-raw gets all 100, sink-filtered the 30 below the threshold.
    assert_eq!(res.tuples_out, 130);
}

#[test]
fn three_way_join_chains_binary_joins() {
    let mut b = PlanBuilder::new();
    let schema = Schema::of(&[FieldType::Int]);
    let s1 = b.add_node(
        "s1",
        OpKind::Source {
            schema: schema.clone(),
        },
        1,
    );
    let s2 = b.add_node(
        "s2",
        OpKind::Source {
            schema: schema.clone(),
        },
        1,
    );
    let s3 = b.add_node("s3", OpKind::Source { schema }, 1);
    let b = b.join("j1", s1, s2, WindowSpec::tumbling_time(1_000_000), 0, 0);
    let j1 = b.cursor().unwrap();
    let plan = b
        .join("j2", j1, s3, WindowSpec::tumbling_time(1_000_000), 0, 0)
        .set_parallelism(3, 2)
        .set_parallelism(4, 2)
        .sink("sink")
        .build()
        .unwrap();
    let phys = PhysicalPlan::expand(&plan).unwrap();
    let res = rt()
        .run(
            &phys,
            &[
                VecSource::new(int_tuples(0..40)),
                VecSource::new(int_tuples(0..40)),
                VecSource::new(int_tuples(0..40)),
            ],
        )
        .unwrap();
    // Every key joins across all three streams exactly once.
    assert_eq!(res.tuples_out, 40);
    for t in &res.sink_tuples {
        assert_eq!(t.values.len(), 3, "three concatenated fields");
        assert_eq!(t.values[0], t.values[1]);
        assert_eq!(t.values[1], t.values[2]);
    }
}

#[test]
fn high_parallelism_smoke_64_instances() {
    let plan = PlanBuilder::new()
        .source("s", Schema::of(&[FieldType::Int]), 4)
        .filter("f", Predicate::cmp(0, CmpOp::Ge, Value::Int(0)), 1.0)
        .set_parallelism(1, 64)
        .sink("k")
        .build()
        .unwrap();
    let phys = PhysicalPlan::expand(&plan).unwrap();
    assert_eq!(phys.instance_count(), 4 + 64 + 1);
    let res = rt()
        .run(&phys, &[VecSource::new(int_tuples(0..2_000))])
        .unwrap();
    assert_eq!(res.tuples_out, 2_000);
}

#[test]
fn udo_in_parallel_dataflow_keeps_key_locality() {
    use pdsp_engine::udo::{CostProfile, Udo, UdoFactory};
    use std::collections::HashSet;

    // A UDO that tags every tuple with a per-instance id; with hash
    // partitioning each key must always land on the same instance.
    struct Tagger {
        id: i64,
    }
    impl Udo for Tagger {
        fn on_tuple(&mut self, _p: usize, t: Tuple, out: &mut Vec<Tuple>) {
            let mut values = t.values.clone();
            values.push(Value::Int(self.id));
            out.push(Tuple {
                values,
                event_time: t.event_time,
                emit_ns: t.emit_ns,
            });
        }
    }
    struct TaggerFactory {
        counter: std::sync::atomic::AtomicI64,
    }
    impl UdoFactory for TaggerFactory {
        fn name(&self) -> &str {
            "tagger"
        }
        fn create(&self) -> Box<dyn Udo> {
            Box::new(Tagger {
                id: self
                    .counter
                    .fetch_add(1, std::sync::atomic::Ordering::SeqCst),
            })
        }
        fn cost_profile(&self) -> CostProfile {
            CostProfile::stateless(100.0, 1.0)
        }
        fn output_schema(&self, input: &Schema) -> Schema {
            let mut fields = input.fields.clone();
            fields.push(pdsp_engine::value::Field::new("tag", FieldType::Int));
            Schema::new(fields)
        }
    }

    let plan = PlanBuilder::new()
        .source("s", Schema::of(&[FieldType::Int]), 1)
        .chain(
            "tag",
            OpKind::Udo {
                factory: Arc::new(TaggerFactory {
                    counter: std::sync::atomic::AtomicI64::new(0),
                }),
            },
            Some(Partitioning::Hash(vec![0])),
        )
        .set_parallelism(1, 4)
        .sink("k")
        .build()
        .unwrap();
    let tuples: Vec<Tuple> = (0..400)
        .map(|i| Tuple::new(vec![Value::Int(i % 10)]))
        .collect();
    let phys = PhysicalPlan::expand(&plan).unwrap();
    let res = rt().run(&phys, &[VecSource::new(tuples)]).unwrap();
    assert_eq!(res.tuples_out, 400);
    // Each key maps to exactly one instance tag.
    let mut per_key: std::collections::HashMap<i64, HashSet<i64>> = Default::default();
    for t in &res.sink_tuples {
        let key = t.values[0].as_i64().unwrap();
        let tag = t.values[1].as_i64().unwrap();
        per_key.entry(key).or_default().insert(tag);
    }
    for (key, tags) in &per_key {
        assert_eq!(tags.len(), 1, "key {key} visited {tags:?}");
    }
}

#[test]
fn operator_stats_track_selectivity() {
    // 30% filter: observed selectivity must match the predicate exactly.
    let plan = PlanBuilder::new()
        .source("s", Schema::of(&[FieldType::Int]), 2)
        .filter("f", Predicate::cmp(0, CmpOp::Lt, Value::Int(30)), 0.3)
        .set_parallelism(1, 4)
        .sink("k")
        .build()
        .unwrap();
    let phys = PhysicalPlan::expand(&plan).unwrap();
    let res = rt()
        .run(&phys, &[VecSource::new(int_tuples(0..100))])
        .unwrap();
    let filter = res
        .operator_stats
        .iter()
        .find(|s| s.name == "f")
        .expect("filter stats");
    assert_eq!(filter.tuples_in, 100);
    assert_eq!(filter.tuples_out, 30);
    assert_eq!(filter.observed_selectivity(), Some(0.3));
    let source = &res.operator_stats[0];
    assert_eq!(source.tuples_in, 100);
    let sink = res.operator_stats.last().unwrap();
    assert_eq!(sink.tuples_in, 30);
    assert_eq!(sink.tuples_out, 0);
}

#[test]
fn operator_stats_capture_flatmap_expansion() {
    use pdsp_engine::value::Value as V;
    let sentences: Vec<Tuple> = (0..50)
        .map(|_| Tuple::new(vec![V::str("a b c d")]))
        .collect();
    let plan = PlanBuilder::new()
        .source("s", Schema::of(&[FieldType::Str]), 1)
        .flat_map_split("split", 0)
        .sink("k")
        .build()
        .unwrap();
    let phys = PhysicalPlan::expand(&plan).unwrap();
    let res = rt().run(&phys, &[VecSource::new(sentences)]).unwrap();
    let split = res
        .operator_stats
        .iter()
        .find(|s| s.name == "split")
        .unwrap();
    assert_eq!(split.observed_selectivity(), Some(4.0));
}
