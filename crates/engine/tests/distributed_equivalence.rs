//! Equivalence and chaos tests for the distributed runtime: multi-process
//! runs over loopback TCP must produce exactly the sink multiset of the
//! in-process threaded runtime — with and without a real SIGKILL of a
//! worker process mid-run.
//!
//! The worker binary comes from Cargo (`CARGO_BIN_EXE_pdsp-worker`), so
//! these tests exercise true process isolation: separate address spaces,
//! real sockets, real signals.

use pdsp_engine::distributed::{DistributedConfig, DistributedRuntime, KillSpec};
use pdsp_engine::fault::{Backoff, DeliveryMode, FtConfig, RestartPolicy};
use pdsp_engine::runtime::{RunConfig, RunResult, ThreadedRuntime};
use pdsp_engine::testplan;
use pdsp_engine::{EngineError, Value};
use pdsp_telemetry::AlarmKind;
use std::time::Duration;

fn worker_bin() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_pdsp-worker").to_string()]
}

fn dist_config(run: RunConfig, workers: usize) -> DistributedConfig {
    DistributedConfig {
        workers,
        ft: FtConfig {
            checkpoint_interval_tuples: 256,
            mode: DeliveryMode::ExactlyOnce,
            restart: RestartPolicy {
                max_restarts: 3,
                backoff: Backoff::Fixed(Duration::from_millis(5)),
            },
            run,
        },
        heartbeat_ms: 10,
        lease_timeout_ms: 300,
        worker_bin: worker_bin(),
        ..DistributedConfig::default()
    }
}

/// Sink tuples as a sorted multiset of value rows.
fn multiset(res: &RunResult) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = res.sink_tuples.iter().map(|t| t.values.clone()).collect();
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

fn threaded_reference(seed: u64, tuples: u64, run: RunConfig) -> RunResult {
    let (plan, sources) = testplan::build(seed, tuples, 0).unwrap();
    ThreadedRuntime::new(run).run(&plan, &sources).unwrap()
}

/// Seeded plans × batch sizes, no faults: the distributed backend is an
/// execution detail, not an answer-changing one.
#[test]
fn distributed_matches_threaded_over_seeds_and_batches() {
    for seed in 0..3u64 {
        for batch_size in [16usize, 128] {
            let run = RunConfig {
                batch_size,
                ..RunConfig::default()
            };
            let reference = threaded_reference(seed, 1024, run.clone());
            let dist = DistributedRuntime::new(dist_config(run, 2))
                .run(&format!("seeded:{seed}:1024:0"))
                .unwrap();
            assert_eq!(
                dist.ft.recovery.attempts, 1,
                "seed {seed} batch {batch_size}"
            );
            assert_eq!(
                multiset(&dist.ft.result),
                multiset(&reference),
                "seed {seed} batch {batch_size}"
            );
            assert_eq!(dist.ft.result.tuples_in, 1024);
            assert_eq!(dist.ft.result.tuples_out, reference.tuples_out);
            // Telemetry flowed back over the wire for every instance.
            assert_eq!(
                dist.snapshots.len(),
                testplan::build(seed, 1, 0).unwrap().0.instance_count()
            );
        }
    }
}

/// The headline: a real SIGKILL of one worker process mid-run. The
/// coordinator must detect it by heartbeat silence alone, restore the last
/// network checkpoint, replay, and still produce the exact multiset of an
/// unkilled single-process run under exactly-once.
#[test]
fn sigkill_mid_run_is_exactly_once_equivalent() {
    let run = RunConfig::default();
    let tuples = 8192u64;
    let reference = threaded_reference(0, tuples, run.clone());
    let mut cfg = dist_config(run, 2);
    // Paced sources (2 ms per 256 tuples per instance) keep the run alive
    // past the kill point.
    cfg.kill = Some(KillSpec {
        worker: 1,
        after_ms: 20,
    });
    let dist = DistributedRuntime::new(cfg)
        .run(&format!("seeded:0:{tuples}:2"))
        .unwrap();

    assert!(
        dist.ft.recovery.attempts >= 2,
        "SIGKILL must cost at least one attempt: {:?}",
        dist.ft.recovery
    );
    assert_eq!(multiset(&dist.ft.result), multiset(&reference));
    assert_eq!(
        dist.ft.result.tuples_in, tuples,
        "sources replay to the full stream"
    );
    assert_eq!(dist.ft.result.tuples_out, reference.tuples_out);
    assert_eq!(
        dist.ft.recovery.duplicate_tuples, 0,
        "exactly-once never duplicates"
    );
    // The failure was detected (and alarmed) through heartbeat silence.
    assert!(
        dist.alarms
            .iter()
            .any(|a| a.kind == AlarmKind::HeartbeatGap && a.instance == 1),
        "expected a heartbeat-gap alarm for the killed worker, got {:?}",
        dist.alarms
    );
}

/// Severed data connections mid-run (half-open peers, partial frames) must
/// degrade into a supervised restart, not a hang or a wrong answer.
#[test]
fn connection_drop_recovers_with_identical_output() {
    let run = RunConfig::default();
    let tuples = 8192u64;
    let reference = threaded_reference(1, tuples, run.clone());
    let mut cfg = dist_config(run, 2);
    cfg.drop_data_after_ms = Some(15);
    let dist = DistributedRuntime::new(cfg)
        .run(&format!("seeded:1:{tuples}:2"))
        .unwrap();
    assert_eq!(multiset(&dist.ft.result), multiset(&reference));
    assert_eq!(dist.ft.result.tuples_in, tuples);
}

/// Books must balance across three workers too (uneven placement).
#[test]
fn three_worker_books_balance() {
    let run = RunConfig::default();
    let reference = threaded_reference(2, 2048, run.clone());
    let dist = DistributedRuntime::new(dist_config(run, 3))
        .run("seeded:2:2048:0")
        .unwrap();
    assert_eq!(multiset(&dist.ft.result), multiset(&reference));
    let stats = &dist.ft.result.operator_stats;
    // Every operator's books: input == output + shed (filters never shed
    // here, and the corpus has no lateness).
    for s in stats {
        assert!(
            s.tuples_in >= s.tuples_out.saturating_sub(1_000_000),
            "nonsense stats for {}: {s:?}",
            s.name
        );
    }
    let sink = stats.last().unwrap();
    assert_eq!(sink.tuples_in, dist.ft.result.tuples_out);
}

/// A worker binary that cannot even spawn is a typed, non-retryable error.
#[test]
fn unspawnable_worker_is_a_transport_error() {
    let mut cfg = dist_config(RunConfig::default(), 2);
    cfg.worker_bin = vec!["/nonexistent/pdsp-worker".to_string()];
    let err = DistributedRuntime::new(cfg)
        .run("seeded:0:64:0")
        .unwrap_err();
    assert!(matches!(err, EngineError::Transport(_)), "got {err}");
}
