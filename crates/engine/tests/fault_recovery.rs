//! End-to-end fault-injection and recovery tests: a mid-pipeline operator
//! instance is killed mid-run and the supervising runtime must restore the
//! last checkpoint, replay, and finish with correct results.

use pdsp_engine::fault::{
    Backoff, DeliveryMode, FaultInjector, FtConfig, FtRunResult, FtRuntime, RestartPolicy,
};
use pdsp_engine::runtime::{RunConfig, VecSource};
use pdsp_engine::{
    agg::AggFunc, window::WindowSpec, EngineError, PhysicalPlan, PlanBuilder, Tuple,
};
use pdsp_engine::{FieldType, Schema, Value};
use std::time::Duration;

const KEYS: i64 = 4;
const TUPLES: i64 = 2000;
const WINDOW: u64 = 10; // tumbling count window per key

fn keyed_tuples() -> Vec<Tuple> {
    (0..TUPLES)
        .map(|i| {
            let mut t = Tuple::new(vec![Value::Int(i % KEYS), Value::Int(i)]);
            t.event_time = i;
            t
        })
        .collect()
}

/// Keyed tumbling-count windows: watermark-insensitive, so the output
/// multiset is deterministic and comparable across failing and clean runs.
fn windowed_plan() -> PhysicalPlan {
    let plan = PlanBuilder::new()
        .source("src", Schema::of(&[FieldType::Int, FieldType::Int]), 1)
        .window_agg_keyed(
            "agg",
            WindowSpec::tumbling_count(WINDOW),
            AggFunc::Sum,
            1,
            0,
        )
        .set_parallelism(1, 2)
        .sink("sink")
        .build()
        .unwrap();
    PhysicalPlan::expand(&plan).unwrap()
}

fn ft_config(mode: DeliveryMode) -> FtConfig {
    FtConfig {
        checkpoint_interval_tuples: 128,
        mode,
        restart: RestartPolicy {
            max_restarts: 3,
            backoff: Backoff::Fixed(Duration::from_millis(5)),
        },
        run: RunConfig::default(),
    }
}

fn run_ft(mode: DeliveryMode, injector: Option<FaultInjector>) -> FtRunResult {
    let phys = windowed_plan();
    FtRuntime::new(ft_config(mode))
        .run(&phys, &[VecSource::new(keyed_tuples())], injector)
        .unwrap()
}

/// Sink tuples as a sorted multiset of (key, window_value) rows.
fn multiset(res: &FtRunResult) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = res
        .result
        .sink_tuples
        .iter()
        .map(|t| t.values.clone())
        .collect();
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

#[test]
fn no_failure_run_completes_with_one_attempt() {
    let res = run_ft(DeliveryMode::ExactlyOnce, None);
    assert_eq!(res.recovery.attempts, 1);
    assert!(res.recovery.recovery_times_ms.is_empty());
    assert_eq!(res.recovery.replayed_tuples, 0);
    assert_eq!(res.result.tuples_in, TUPLES as u64);
    assert_eq!(
        res.result.tuples_out,
        (TUPLES as u64) / WINDOW,
        "every window fires"
    );
    assert!(
        res.recovery.completed_checkpoints > 0,
        "barriers complete checkpoints even without failures"
    );
}

#[test]
fn killed_operator_recovers_exactly_once_with_identical_output() {
    // Kill instance 0 of the window aggregation (logical node 1) after it
    // has processed 600 tuples — well past several checkpoints.
    let injector = FaultInjector::after_tuples(1, 0, 600);
    let failing = run_ft(DeliveryMode::ExactlyOnce, Some(injector.clone()));
    let clean = run_ft(DeliveryMode::ExactlyOnce, None);

    assert!(injector.fired(), "the fault actually triggered");
    assert_eq!(failing.recovery.attempts, 2, "one failure, one restart");
    assert_eq!(
        failing.recovery.recovery_times_ms.len(),
        1,
        "one recovery recorded"
    );
    assert!(
        failing.recovery.recovery_times_ms[0] > 0.0,
        "recovery time is nonzero"
    );
    assert!(
        failing.recovery.restored_checkpoint.is_some(),
        "restart restored a completed checkpoint"
    );
    assert!(failing.recovery.replayed_tuples > 0, "source replayed");
    assert_eq!(
        failing.recovery.duplicate_tuples, 0,
        "exactly-once: no duplicates"
    );

    // The acceptance criterion: the windowed aggregate of the failing run
    // equals the no-failure run, as a multiset.
    assert_eq!(
        failing.result.tuples_out, clean.result.tuples_out,
        "same number of windows fired"
    );
    assert_eq!(
        multiset(&failing),
        multiset(&clean),
        "windowed aggregates identical despite the mid-run kill"
    );
}

#[test]
fn at_least_once_recovery_redelivers_but_completes() {
    let injector = FaultInjector::after_tuples(1, 0, 600);
    let res = run_ft(DeliveryMode::AtLeastOnce, Some(injector));
    assert_eq!(res.recovery.attempts, 2);
    assert!(res.recovery.replayed_tuples > 0);
    // Tuples delivered between the restored checkpoint and the failure are
    // delivered again after replay.
    assert!(
        res.result.tuples_out >= (TUPLES as u64) / WINDOW,
        "at-least-once never loses windows: {} >= {}",
        res.result.tuples_out,
        (TUPLES as u64) / WINDOW
    );
}

#[test]
fn panic_style_fault_is_recovered_too() {
    let injector = FaultInjector::after_tuples(1, 0, 600).panicking();
    let res = run_ft(DeliveryMode::ExactlyOnce, Some(injector));
    assert_eq!(res.recovery.attempts, 2, "panic detected and recovered");
    let clean = run_ft(DeliveryMode::ExactlyOnce, None);
    assert_eq!(multiset(&res), multiset(&clean));
}

#[test]
fn restart_budget_exhaustion_surfaces_the_root_error() {
    // Injectors are single-shot, so a restarted job always succeeds; a
    // zero-restart budget makes the first failure terminal instead.
    let cfg = FtConfig {
        restart: RestartPolicy {
            max_restarts: 0,
            backoff: Backoff::Fixed(Duration::from_millis(1)),
        },
        ..ft_config(DeliveryMode::ExactlyOnce)
    };
    let phys = windowed_plan();
    let err = FtRuntime::new(cfg)
        .run(
            &phys,
            &[VecSource::new(keyed_tuples())],
            Some(FaultInjector::after_tuples(1, 0, 600)),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::FaultInjected {
                node: 1,
                instance: 0
            }
        ),
        "root cause surfaces, not a cascade symptom: {err:?}"
    );
}

#[test]
fn join_pipeline_recovers_with_exact_results() {
    // Two sources into a windowed equi-join; kill one join instance.
    let build = || {
        let mut b = PlanBuilder::new();
        let s1 = b.add_node(
            "s1",
            pdsp_engine::OpKind::Source {
                schema: Schema::of(&[FieldType::Int]),
            },
            1,
        );
        let s2 = b.add_node(
            "s2",
            pdsp_engine::OpKind::Source {
                schema: Schema::of(&[FieldType::Int]),
            },
            1,
        );
        let plan = b
            .join("j", s1, s2, WindowSpec::tumbling_time(1_000_000), 0, 0)
            .set_parallelism(2, 2)
            .sink("sink")
            .build()
            .unwrap();
        PhysicalPlan::expand(&plan).unwrap()
    };
    let ints = |n: i64| -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                let mut t = Tuple::new(vec![Value::Int(i)]);
                t.event_time = i;
                t
            })
            .collect()
    };
    let run = |injector: Option<FaultInjector>| -> FtRunResult {
        FtRuntime::new(ft_config(DeliveryMode::ExactlyOnce))
            .run(
                &build(),
                &[VecSource::new(ints(800)), VecSource::new(ints(800))],
                injector,
            )
            .unwrap()
    };
    let clean = run(None);
    let failing = run(Some(FaultInjector::after_tuples(2, 1, 500)));
    assert_eq!(failing.recovery.attempts, 2);
    assert_eq!(failing.result.tuples_out, clean.result.tuples_out);
    assert_eq!(multiset(&failing), multiset(&clean));
}
