//! Property tests for the overload ladder's accounting discipline: load
//! shedding is never a silent drop. Across random plans, adversarial input
//! shapes (hot-key skew, burst trains, late storms), shedding policies, and
//! batch sizes, the per-operator books must balance — every tuple an
//! operator receives is either processed, counted `shed`, or counted
//! `late` — and with shedding disabled the ladder must not change a single
//! output row, including under exactly-once fault recovery.

use pdsp_engine::agg::AggFunc;
use pdsp_engine::expr::{CmpOp, Predicate, ScalarExpr};
use pdsp_engine::fault::{
    Backoff, DeliveryMode, FaultInjector, FtConfig, FtRuntime, RestartPolicy,
};
use pdsp_engine::plan::{LogicalPlan, Partitioning};
use pdsp_engine::pressure::{OverloadConfig, ShedPolicy};
use pdsp_engine::runtime::{RunConfig, RunResult, ThreadedRuntime, VecSource};
use pdsp_engine::udo::{CostProfile, FnUdo};
use pdsp_engine::window::WindowSpec;
use pdsp_engine::{FieldType, PhysicalPlan, PlanBuilder, Schema, Tuple, Value};
use std::time::{Duration, Instant};

const KEYS: i64 = 8;
const TUPLES: usize = 3_000;

/// Deterministic split-mix style generator; no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = self.0;
        (x ^ (x >> 33)).wrapping_mul(0xff51afd7ed558ccd) >> 31
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The three adversarial input shapes, mirroring the workload crate's
/// hazard generators without a cross-crate dev-dependency.
#[derive(Clone, Copy, Debug)]
enum Hazard {
    /// 60% of tuples land on one key.
    HotKey,
    /// Event times advance in dense bursts separated by quiet gaps.
    BurstTrain,
    /// 20% of tuples carry event times far behind the stream's front.
    LateStorm,
}

const HAZARDS: [Hazard; 3] = [Hazard::HotKey, Hazard::BurstTrain, Hazard::LateStorm];

fn hazard_stream(hazard: Hazard, seed: u64) -> Vec<Tuple> {
    let mut rng = Rng(seed ^ 0xace1_ace1);
    (0..TUPLES)
        .map(|i| {
            let key = match hazard {
                Hazard::HotKey if rng.below(10) < 6 => 0,
                _ => rng.below(KEYS as u64) as i64,
            };
            let t = match hazard {
                // 40-tuple bursts covering 10ms each, 300ms apart.
                Hazard::BurstTrain => (i as i64 / 40) * 300 + (i as i64 % 40) / 4,
                Hazard::LateStorm if rng.below(10) < 2 => {
                    (i as i64).saturating_sub(500 + rng.below(1500) as i64)
                }
                _ => i as i64,
            };
            let mut tuple = Tuple::new(vec![Value::Int(key), Value::Double((i % 97) as f64)]);
            tuple.event_time = t;
            tuple
        })
        .collect()
}

/// A linear plan of pass-through stages (a CPU grind UDO, an identity map)
/// into a keyed event-time Count window: every stage has selectivity 1, so
/// `tuples_out == tuples_in - shed` must hold stage by stage, and the sum
/// of window counts recovers exactly the tuples the window accepted.
fn accounting_plan(rng: &mut Rng, grind_ns: u64) -> LogicalPlan {
    let grind = FnUdo::new(
        "grind",
        CostProfile::stateless(grind_ns as f64, 1.0),
        |s: &Schema| s.clone(),
        move |t: Tuple, out: &mut Vec<Tuple>| {
            let deadline = Instant::now() + Duration::from_nanos(grind_ns);
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
            out.push(t);
        },
    );
    let p1 = 1 + rng.below(2) as usize;
    let p2 = 1 + rng.below(2) as usize;
    let mut b = PlanBuilder::new()
        .partition_by(Partitioning::Hash(vec![0]))
        .source("src", Schema::of(&[FieldType::Int, FieldType::Double]), 1)
        .udo("grind", grind);
    let id = b.cursor().expect("grind node exists");
    b = b
        .set_parallelism(id, p1)
        .partition_by(Partitioning::Hash(vec![0]))
        .map("ident", vec![ScalarExpr::Field(0), ScalarExpr::Field(1)]);
    let id = b.cursor().expect("map node exists");
    b = b
        .set_parallelism(id, p2)
        .partition_by(Partitioning::Hash(vec![0]))
        .window_agg_keyed("win", WindowSpec::tumbling_time(100), AggFunc::Count, 1, 0);
    let id = b.cursor().expect("window node exists");
    b = b
        .set_parallelism(id, 1 + rng.below(2) as usize)
        .partition_by(Partitioning::Hash(vec![0]));
    b.sink("sink").build().expect("accounting plan is valid")
}

fn shed_policy(rng: &mut Rng) -> ShedPolicy {
    match rng.below(3) {
        0 => ShedPolicy::Random,
        1 => ShedPolicy::PerKey(vec![0]),
        _ => ShedPolicy::DropOldest,
    }
}

fn run(plan: &LogicalPlan, config: RunConfig, tuples: Vec<Tuple>) -> RunResult {
    let phys = PhysicalPlan::expand(plan).expect("plan expands");
    ThreadedRuntime::new(config)
        .run(&phys, &[VecSource::new(tuples)])
        .expect("run succeeds")
}

/// The shedding accounting invariant, stage by stage:
///   - pass-through stages: `tuples_out == tuples_in - shed`
///   - flow conservation: each stage receives exactly what its upstream
///     emitted (nothing vanishes between operators)
///   - the window stage: emitted counts sum to `tuples_in - shed - late`
///     (tumbling windows, strict lateness: each accepted tuple lands in
///     exactly one fired window)
fn assert_books_balance(res: &RunResult, label: &str) {
    assert_eq!(
        res.tuples_out as usize,
        res.sink_tuples.len(),
        "{label}: capture limit not hit"
    );
    let stat = |name: &str| {
        res.operator_stats
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{label}: no stats for operator {name}"))
    };
    let (src, grind, ident, win) = (stat("src"), stat("grind"), stat("ident"), stat("win"));

    assert_eq!(src.tuples_out, res.tuples_in, "{label}: source emission");
    for (s, upstream_out) in [(grind, src.tuples_out), (ident, grind.tuples_out)] {
        assert_eq!(
            s.tuples_in, upstream_out,
            "{label}: {} lost tuples in transit",
            s.name
        );
        assert_eq!(
            s.tuples_out,
            s.tuples_in - s.shed,
            "{label}: {} books do not balance (in {}, out {}, shed {})",
            s.name,
            s.tuples_in,
            s.tuples_out,
            s.shed
        );
    }
    assert_eq!(win.tuples_in, ident.tuples_out, "{label}: window input");
    let windowed: f64 = res
        .sink_tuples
        .iter()
        .map(|t| match &t.values[2] {
            Value::Double(v) => *v,
            other => panic!("{label}: unexpected window value {other:?}"),
        })
        .sum();
    assert_eq!(
        windowed as u64,
        win.tuples_in - win.shed - win.late,
        "{label}: window counts must recover accepted tuples exactly \
         (in {}, shed {}, late {})",
        win.tuples_in,
        win.shed,
        win.late
    );
    assert_eq!(
        res.total_shed(),
        grind.shed + ident.shed + win.shed,
        "{label}: total_shed aggregates the per-operator counters"
    );
}

#[test]
fn shedding_books_balance_across_plans_hazards_and_batch_sizes() {
    let mut total_shed_everywhere = 0u64;
    let mut total_late_everywhere = 0u64;
    for seed in 0..4u64 {
        for hazard in HAZARDS {
            for batch_size in [1usize, 8, 64] {
                let mut rng = Rng(0x0eed_10ad ^ (seed << 8) ^ batch_size as u64);
                let plan = accounting_plan(&mut rng, 4_000);
                let config = RunConfig {
                    channel_capacity: 64.max(batch_size * 2),
                    batch_size,
                    overload: OverloadConfig {
                        // Aggressive thresholds so a short test run actually
                        // reaches the shedding rung.
                        batch_threshold: 0.05,
                        shed_threshold: 0.10,
                        max_shed_fraction: 0.9,
                        shed_policy: shed_policy(&mut rng),
                        seed: seed ^ 0x5eed,
                        ..OverloadConfig::enabled()
                    },
                    ..RunConfig::default()
                };
                let res = run(&plan, config, hazard_stream(hazard, seed));
                let label = format!("seed {seed} / {hazard:?} / batch {batch_size}");
                assert_eq!(res.tuples_in, TUPLES as u64, "{label}: all tuples fed");
                assert_books_balance(&res, &label);
                total_shed_everywhere += res.total_shed();
                total_late_everywhere += res.total_late();
            }
        }
    }
    // The invariant must hold whether or not pressure built up, but the
    // test is only meaningful if the ladder actually engaged somewhere.
    assert!(
        total_shed_everywhere > 0,
        "no configuration ever reached the shedding rung — thresholds too lax"
    );
    assert!(
        total_late_everywhere > 0,
        "late storms never produced late-accounted tuples"
    );
}

/// A deterministic random plan for output comparison: Forward/Hash-on-key
/// edges only, so the output multiset is schedule-independent.
fn deterministic_plan(rng: &mut Rng) -> LogicalPlan {
    let schema = Schema::of(&[FieldType::Int, FieldType::Double]);
    let mut b = PlanBuilder::new()
        .partition_by(Partitioning::Hash(vec![0]))
        .source("src", schema, 1);
    for s in 0..=rng.below(2) {
        b = b.partition_by(Partitioning::Hash(vec![0]));
        b = if rng.below(2) == 0 {
            b.filter(
                &format!("filter{s}"),
                Predicate::cmp(1, CmpOp::Gt, Value::Double(rng.below(40) as f64)),
                0.6,
            )
        } else {
            b.map(
                &format!("map{s}"),
                vec![ScalarExpr::Field(0), ScalarExpr::Field(1)],
            )
        };
        let id = b.cursor().expect("chained node exists");
        b = b.set_parallelism(id, 1 + rng.below(3) as usize);
    }
    b = b
        .partition_by(Partitioning::Hash(vec![0]))
        .window_agg_keyed("win", WindowSpec::tumbling_count(8), AggFunc::Sum, 1, 0);
    let id = b.cursor().expect("window node exists");
    b = b
        .set_parallelism(id, 1 + rng.below(2) as usize)
        .partition_by(Partitioning::Hash(vec![0]));
    b.sink("sink").build().expect("generated plan is valid")
}

fn multiset(rows: Vec<Tuple>) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = rows.into_iter().map(|t| t.values).collect();
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

/// The ladder with shedding disabled (`max_shed_fraction == 0`) may batch
/// adaptively but must not change a single output row.
fn no_shed_overload(seed: u64) -> OverloadConfig {
    OverloadConfig {
        max_shed_fraction: 0.0,
        seed,
        ..OverloadConfig::enabled()
    }
}

#[test]
fn disabled_shedding_is_multiset_identical_to_baseline() {
    for seed in 0..6u64 {
        let mut rng = Rng(0xbeef_0000 ^ seed);
        let plan = deterministic_plan(&mut rng);
        let tuples = hazard_stream(HAZARDS[(seed % 3) as usize], seed);
        for batch_size in [1usize, 32] {
            // Like-for-like: only the ladder differs between the two runs
            // (cross-batch-size equivalence is covered elsewhere).
            let baseline = run(
                &plan,
                RunConfig {
                    batch_size,
                    ..RunConfig::default()
                },
                tuples.clone(),
            );
            let reference = multiset(baseline.sink_tuples);
            assert!(!reference.is_empty(), "seed {seed}: plan produces output");
            let config = RunConfig {
                batch_size,
                overload: no_shed_overload(seed),
                ..RunConfig::default()
            };
            let res = run(&plan, config, tuples.clone());
            assert_eq!(res.total_shed(), 0, "seed {seed}: nothing may be shed");
            assert_eq!(
                multiset(res.sink_tuples),
                reference,
                "seed {seed} / batch {batch_size}: ladder without shedding \
                 changed the output"
            );
        }
    }
}

#[test]
fn exactly_once_recovery_holds_with_the_ladder_enabled() {
    let plan = PlanBuilder::new()
        .partition_by(Partitioning::Hash(vec![0]))
        .source("src", Schema::of(&[FieldType::Int, FieldType::Double]), 1)
        .filter("gt", Predicate::cmp(1, CmpOp::Gt, Value::Double(10.0)), 0.8)
        .window_agg_keyed("win", WindowSpec::tumbling_count(8), AggFunc::Sum, 1, 0)
        .sink("sink")
        .build()
        .expect("plan is valid")
        .with_uniform_parallelism(2);
    let phys = PhysicalPlan::expand(&plan).expect("plan expands");
    let tuples = hazard_stream(Hazard::HotKey, 11);

    let ft = |overload: OverloadConfig, injector: Option<FaultInjector>| {
        let cfg = FtConfig {
            checkpoint_interval_tuples: 128,
            mode: DeliveryMode::ExactlyOnce,
            restart: RestartPolicy {
                max_restarts: 3,
                backoff: Backoff::Fixed(Duration::from_millis(5)),
            },
            run: RunConfig {
                overload,
                ..RunConfig::default()
            },
        };
        let res = FtRuntime::new(cfg)
            .run(&phys, &[VecSource::new(tuples.clone())], injector)
            .expect("ft run completes");
        (multiset(res.result.sink_tuples), res.recovery.attempts)
    };

    let (reference, clean_attempts) = ft(OverloadConfig::default(), None);
    assert_eq!(clean_attempts, 1);
    assert!(!reference.is_empty());
    let injector = FaultInjector::after_tuples(1, 0, 400);
    let (got, attempts) = ft(no_shed_overload(11), Some(injector.clone()));
    assert!(injector.fired(), "fault actually triggered");
    assert!(attempts > 1, "a restart happened");
    assert_eq!(
        got, reference,
        "exactly-once replay with the ladder enabled diverged from the \
         clean baseline"
    );
}
