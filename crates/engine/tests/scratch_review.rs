use pdsp_engine::agg::AggFunc;
use pdsp_engine::window::{KeyedWindower, WindowSpec};
use pdsp_engine::{Tuple, Value};

fn tuple_at(et: i64) -> Tuple {
    let mut t = Tuple::new(vec![Value::Int(0), Value::Double(1.0)]);
    t.event_time = et;
    t
}

#[test]
fn sliding_late_update_refires_unaffected_window() {
    // Sliding 100/50, allowed lateness 200.
    let mut w = KeyedWindower::new(WindowSpec::sliding_time(100, 50), AggFunc::Sum, false);
    w.set_allowed_lateness(200);
    let mut out = Vec::new();
    // On-time data in panes 150 and 200.
    w.push(None, 10.0, &tuple_at(160), &mut out);
    w.push(None, 20.0, &tuple_at(210), &mut out);
    w.on_watermark(250, &mut out);
    let fired: Vec<(i64, f64)> = out.iter().map(|r| (r.window_end, r.value)).collect();
    println!("initial fires: {fired:?}");
    out.clear();
    // Late tuple at 90 (within lateness 250-200=50 <= 90).
    w.push(None, 1.0, &tuple_at(90), &mut out);
    w.on_watermark(260, &mut out);
    let refires: Vec<(i64, f64, u64)> = out.iter().map(|r| (r.window_end, r.value, r.count)).collect();
    println!("re-fires: {refires:?}");
    // Windows covering event-time 90: ends 100 and 150 only.
    for r in &out {
        assert!(
            r.window_end == 100 || r.window_end == 150,
            "window end {} re-fired but does not cover the late tuple: {refires:?}",
            r.window_end
        );
    }
}
