//! Property tests for window correctness: the pane-based time windower must
//! agree exactly with a brute-force reference implementation on arbitrary
//! event sequences, window specs, and watermark schedules.

use pdsp_engine::agg::AggFunc;
use pdsp_engine::value::{Tuple, Value};
use pdsp_engine::window::{KeyedWindower, WindowSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A late tuple within the allowed-lateness bound must re-fire only the
/// sliding windows that actually cover its event time — panes it does not
/// touch stay quiet.
#[test]
fn sliding_late_update_refires_only_covering_windows() {
    // Sliding 100/50, allowed lateness 300. A late update re-fires the
    // windows covering the late tuple *plus* any windows still holding
    // not-yet-expired on-time panes, so the watermark below is pushed far
    // enough (301 > last window end 300) to drain and expire every on-time
    // pane before the late tuple arrives — what re-fires after that must
    // cover the late tuple and nothing else.
    let mut w = KeyedWindower::new(WindowSpec::sliding_time(100, 50), AggFunc::Sum, false);
    w.set_allowed_lateness(300);
    let tuple_at = |et: i64| {
        let mut t = Tuple::new(vec![Value::Int(0), Value::Double(1.0)]);
        t.event_time = et;
        t
    };
    let mut out = Vec::new();
    // On-time data in panes 150 and 200; all covering windows end by 300.
    w.push(None, 10.0, &tuple_at(160), &mut out);
    w.push(None, 20.0, &tuple_at(210), &mut out);
    w.on_watermark(301, &mut out);
    out.clear();
    // Late tuple at 90: within the bound (301 - 300 = 1 <= 90).
    w.push(None, 1.0, &tuple_at(90), &mut out);
    w.on_watermark(310, &mut out);
    assert!(!out.is_empty(), "late tuple within bound must re-fire");
    // Windows covering event-time 90: ends 100 and 150 only.
    for r in &out {
        assert!(
            r.window_end == 100 || r.window_end == 150,
            "window end {} re-fired but does not cover the late tuple",
            r.window_end
        );
    }
}

/// Brute-force reference: enumerate all windows [k*slide, k*slide+len) that
/// contain at least one event and aggregate their contents directly.
fn reference_time_windows(
    events: &[(i64, f64)],
    spec: WindowSpec,
    func: AggFunc,
) -> BTreeMap<i64, (f64, u64)> {
    let len = spec.length as i64;
    let slide = spec.slide as i64;
    let mut out = BTreeMap::new();
    if events.is_empty() {
        return out;
    }
    let min_t = events.iter().map(|&(t, _)| t).min().unwrap();
    let max_t = events.iter().map(|&(t, _)| t).max().unwrap();
    let k_lo = (min_t - len).div_euclid(slide);
    let k_hi = max_t.div_euclid(slide) + 1;
    for k in k_lo..=k_hi {
        let start = k * slide;
        let end = start + len;
        let contents: Vec<f64> = events
            .iter()
            .filter(|&&(t, _)| t >= start && t < end)
            .map(|&(_, v)| v)
            .collect();
        if contents.is_empty() {
            continue;
        }
        let agg = match func {
            AggFunc::Sum => contents.iter().sum(),
            AggFunc::Count => contents.len() as f64,
            AggFunc::Min => contents.iter().copied().fold(f64::INFINITY, f64::min),
            AggFunc::Max => contents.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            AggFunc::Avg | AggFunc::Mean => contents.iter().sum::<f64>() / contents.len() as f64,
        };
        out.insert(end, (agg, contents.len() as u64));
    }
    out
}

fn run_windower(
    events: &[(i64, f64)],
    spec: WindowSpec,
    func: AggFunc,
    watermark_every: usize,
) -> BTreeMap<i64, (f64, u64)> {
    let mut w = KeyedWindower::new(spec, func, false);
    let mut results = Vec::new();
    for (i, &(t, v)) in events.iter().enumerate() {
        let mut tuple = Tuple::new(vec![Value::Double(v)]);
        tuple.event_time = t;
        w.push(None, v, &tuple, &mut results);
        // Periodic watermarks at the running max event time (events are fed
        // in sorted order below, so nothing is late).
        if watermark_every > 0 && (i + 1) % watermark_every == 0 {
            w.on_watermark(t, &mut results);
        }
    }
    w.flush(&mut results);
    results
        .into_iter()
        .map(|r| (r.window_end, (r.value.unwrap(), r.count)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pane-based tumbling/sliding time windows match the brute-force
    /// reference for every aggregate function, any length/slide combination
    /// (including non-divisible ratios), and any watermark cadence.
    #[test]
    fn time_windows_match_reference(
        mut times in prop::collection::vec(0i64..5_000, 1..120),
        length in 1u64..400,
        slide_pct in 10u64..=100,
        func_idx in 0usize..6,
        wm_every in 0usize..10,
    ) {
        times.sort_unstable();
        let slide = ((length * slide_pct) / 100).max(1);
        let spec = WindowSpec::sliding_time(length, slide);
        let func = AggFunc::ALL[func_idx];
        // Values derived from times, deterministic.
        let events: Vec<(i64, f64)> = times
            .iter()
            .map(|&t| (t, ((t * 7919) % 997) as f64 / 10.0))
            .collect();

        let got = run_windower(&events, spec, func, wm_every);
        let want = reference_time_windows(&events, spec, func);

        prop_assert_eq!(got.len(), want.len(), "window count");
        for (end, (w_val, w_count)) in &want {
            let (g_val, g_count) = got
                .get(end)
                .unwrap_or_else(|| panic!("missing window ending at {end}"));
            prop_assert_eq!(g_count, w_count, "count of window {}", end);
            prop_assert!(
                (g_val - w_val).abs() <= 1e-9 * (1.0 + w_val.abs()),
                "window {}: got {}, want {}", end, g_val, w_val
            );
        }
    }

    /// Late-tuple accounting: the windower's `late_events` counter must
    /// equal an independently tracked count of tuples behind the
    /// allowed-lateness bound at push time — every dropped-late tuple is
    /// counted, and accepted-late tuples (within the bound) never are.
    /// With strict semantics (lateness 0) the books must balance exactly:
    /// each fed tuple either lands in a fired tumbling window or in the
    /// late counter, never both, never neither.
    #[test]
    fn late_drops_are_exactly_counted(
        times in prop::collection::vec(0i64..3_000, 1..150),
        wm_every in 1usize..8,
        lateness_idx in 0usize..3,
    ) {
        let lateness = [0i64, 50, 400][lateness_idx];
        let spec = WindowSpec::tumbling_time(100);
        let mut w = KeyedWindower::new(spec, AggFunc::Count, false);
        w.set_allowed_lateness(lateness);
        let mut results = Vec::new();
        // Mirror of the windower's drop rule, tracked independently.
        let mut wm = i64::MIN;
        let mut expected_dropped = 0u64;
        for (i, &t) in times.iter().enumerate() {
            if t < wm.saturating_sub(lateness) {
                expected_dropped += 1;
            }
            let mut tuple = Tuple::new(vec![Value::Double(1.0)]);
            tuple.event_time = t;
            w.push(None, 1.0, &tuple, &mut results);
            if (i + 1) % wm_every == 0 {
                wm = wm.max(t);
                w.on_watermark(wm, &mut results);
            }
        }
        prop_assert_eq!(
            w.late_events(), expected_dropped,
            "late counter disagrees with independently tracked drops"
        );
        if lateness == 0 {
            // No re-fires under strict semantics, so summing emitted
            // counts is exact: fed == emitted + dropped.
            w.flush(&mut results);
            let emitted: u64 = results.iter().map(|r| r.count).sum();
            prop_assert_eq!(
                emitted + w.late_events(), times.len() as u64,
                "every tuple must be windowed or counted late (emitted {}, late {})",
                emitted, w.late_events()
            );
        }
    }

    /// Keyed windows are exactly the union of per-key global windows.
    #[test]
    fn keyed_windows_decompose_by_key(
        mut times in prop::collection::vec(0i64..2_000, 1..80),
        keys in prop::collection::vec(0i64..4, 80),
        length in 10u64..200,
    ) {
        times.sort_unstable();
        let spec = WindowSpec::tumbling_time(length);
        let events: Vec<(i64, i64)> = times
            .iter()
            .zip(&keys)
            .map(|(&t, &k)| (t, k))
            .collect();

        // Keyed run.
        let mut keyed = KeyedWindower::new(spec, AggFunc::Count, true);
        let mut keyed_results = Vec::new();
        for &(t, k) in &events {
            let mut tuple = Tuple::new(vec![Value::Int(k)]);
            tuple.event_time = t;
            keyed.push(Some(&Value::Int(k)), 1.0, &tuple, &mut keyed_results);
        }
        keyed.flush(&mut keyed_results);

        // Per-key reference.
        for key in 0..4i64 {
            let per_key: Vec<(i64, f64)> = events
                .iter()
                .filter(|&&(_, k)| k == key)
                .map(|&(t, _)| (t, 1.0))
                .collect();
            let want = reference_time_windows(&per_key, spec, AggFunc::Count);
            let got: BTreeMap<i64, u64> = keyed_results
                .iter()
                .filter(|r| r.key == Some(Value::Int(key)))
                .map(|r| (r.window_end, r.count))
                .collect();
            prop_assert_eq!(got.len(), want.len(), "key {}", key);
            for (end, (_, count)) in &want {
                prop_assert_eq!(got.get(end), Some(count), "key {} window {}", key, end);
            }
        }
    }
}
