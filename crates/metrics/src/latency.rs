//! Latency recording: exact small-sample storage with automatic spill to
//! streaming estimators for unbounded runs.

use crate::percentile::{exact_percentile, P2Quantile};

/// Records per-tuple end-to-end latencies (milliseconds) and answers
/// percentile queries. Below `exact_cap` samples everything is kept and
/// percentiles are exact; beyond it, P² estimators take over.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    exact_cap: usize,
    samples: Vec<f64>,
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new(100_000)
    }
}

impl LatencyRecorder {
    /// Recorder keeping up to `exact_cap` exact samples.
    pub fn new(exact_cap: usize) -> Self {
        LatencyRecorder {
            exact_cap,
            samples: Vec::new(),
            p50: P2Quantile::new(0.5),
            p90: P2Quantile::new(0.9),
            p99: P2Quantile::new(0.99),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one latency in milliseconds.
    pub fn record_ms(&mut self, ms: f64) {
        self.count += 1;
        self.sum += ms;
        self.min = self.min.min(ms);
        self.max = self.max.max(ms);
        if self.samples.len() < self.exact_cap {
            self.samples.push(ms);
        }
        self.p50.observe(ms);
        self.p90.observe(ms);
        self.p99.observe(ms);
    }

    /// Record a latency in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.record_ms(ns as f64 / 1e6);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in ms.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum recorded latency.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Percentile (p in `[0, 100]`): exact while all samples are retained,
    /// P² estimate afterwards (supported points: 50, 90, 99; other p values
    /// fall back to the exact prefix).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count as usize <= self.samples.len() {
            return exact_percentile(&self.samples, p);
        }
        match p {
            x if (x - 50.0).abs() < 1e-9 => self.p50.estimate(),
            x if (x - 90.0).abs() < 1e-9 => self.p90.estimate(),
            x if (x - 99.0).abs() < 1e-9 => self.p99.estimate(),
            _ => exact_percentile(&self.samples, p),
        }
    }

    /// Median (p50) in ms — the paper's reported metric.
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_phase_median() {
        let mut r = LatencyRecorder::new(100);
        for v in [10.0, 20.0, 30.0] {
            r.record_ms(v);
        }
        assert_eq!(r.median(), Some(20.0));
        assert_eq!(r.mean(), Some(20.0));
        assert_eq!(r.min(), Some(10.0));
        assert_eq!(r.max(), Some(30.0));
    }

    #[test]
    fn spill_phase_uses_p2() {
        let mut r = LatencyRecorder::new(10);
        for i in 1..=10_000 {
            r.record_ms(i as f64);
        }
        let m = r.median().unwrap();
        assert!((m - 5000.0).abs() / 5000.0 < 0.05, "median {m}");
        assert_eq!(r.count(), 10_000);
    }

    #[test]
    fn record_ns_converts() {
        let mut r = LatencyRecorder::default();
        r.record_ns(2_500_000); // 2.5 ms
        assert_eq!(r.median(), Some(2.5));
    }

    #[test]
    fn empty_recorder() {
        let r = LatencyRecorder::default();
        assert_eq!(r.median(), None);
        assert_eq!(r.mean(), None);
        assert_eq!(r.count(), 0);
    }
}
