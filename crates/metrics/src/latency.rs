//! Latency recording with bounded memory: a small exact bootstrap buffer
//! for short runs plus a streaming log-scale histogram for unbounded ones.
//!
//! Earlier versions kept up to `exact_cap` raw samples (hundreds of
//! kilobytes per recorder, growing with the requested cap). The hot path is
//! now O(1) memory: once the bootstrap buffer fills, samples only land in a
//! fixed-size [`HistogramSnapshot`] whose quantiles are exact to the
//! documented [`pdsp_telemetry::QUANTILE_RELATIVE_ERROR`] (6.25%). Exact
//! full-sample percentiles remain available behind the test-only
//! `exact-percentiles` cargo feature.

use crate::percentile::exact_percentile;
use pdsp_telemetry::HistogramSnapshot;

/// Hard cap on the exact bootstrap buffer, regardless of the requested
/// `exact_cap`: this is what bounds recorder memory.
pub const BOOTSTRAP_CAP: usize = 4096;

/// Records per-tuple end-to-end latencies (milliseconds) and answers
/// percentile queries. Below the bootstrap capacity everything is kept and
/// percentiles are exact; beyond it, the streaming histogram takes over.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    bootstrap_cap: usize,
    bootstrap: Vec<f64>,
    /// Streaming distribution in nanoseconds (log-scale buckets).
    hist_ns: HistogramSnapshot,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Full sample set, kept only when exact percentiles are compiled in
    /// (test-only feature; unbounded memory by design).
    #[cfg(feature = "exact-percentiles")]
    all: Vec<f64>,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new(100_000)
    }
}

impl LatencyRecorder {
    /// Recorder keeping up to `min(exact_cap, BOOTSTRAP_CAP)` exact samples
    /// before spilling to the streaming histogram.
    pub fn new(exact_cap: usize) -> Self {
        LatencyRecorder {
            bootstrap_cap: exact_cap.min(BOOTSTRAP_CAP),
            bootstrap: Vec::new(),
            hist_ns: HistogramSnapshot::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            #[cfg(feature = "exact-percentiles")]
            all: Vec::new(),
        }
    }

    /// Record one latency in milliseconds.
    pub fn record_ms(&mut self, ms: f64) {
        self.count += 1;
        self.sum += ms;
        self.min = self.min.min(ms);
        self.max = self.max.max(ms);
        if self.bootstrap.len() < self.bootstrap_cap {
            self.bootstrap.push(ms);
        }
        self.hist_ns.record((ms * 1e6).max(0.0) as u64);
        #[cfg(feature = "exact-percentiles")]
        self.all.push(ms);
    }

    /// Record a latency in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.record_ms(ns as f64 / 1e6);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in ms.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum recorded latency.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The streaming latency distribution (nanoseconds). This is the same
    /// snapshot schema telemetry exporters use, so recorder state can be
    /// merged with per-instance sink histograms.
    pub fn histogram_ns(&self) -> &HistogramSnapshot {
        &self.hist_ns
    }

    /// Percentile (p in `[0, 100]`): exact while all samples fit the
    /// bootstrap buffer, histogram estimate (≤6.25% relative error)
    /// afterwards. With the `exact-percentiles` feature every query is
    /// exact.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        #[cfg(feature = "exact-percentiles")]
        {
            return exact_percentile(&self.all, p);
        }
        #[cfg(not(feature = "exact-percentiles"))]
        {
            if self.count == 0 {
                return None;
            }
            if self.count as usize <= self.bootstrap.len() {
                return exact_percentile(&self.bootstrap, p);
            }
            let q = (p / 100.0).clamp(0.0, 1.0);
            Some(self.hist_ns.quantile(q) as f64 / 1e6)
        }
    }

    /// Median (p50) in ms — the paper's reported metric.
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_phase_median() {
        let mut r = LatencyRecorder::new(100);
        for v in [10.0, 20.0, 30.0] {
            r.record_ms(v);
        }
        assert_eq!(r.median(), Some(20.0));
        assert_eq!(r.mean(), Some(20.0));
        assert_eq!(r.min(), Some(10.0));
        assert_eq!(r.max(), Some(30.0));
    }

    #[test]
    fn spill_phase_uses_streaming_histogram() {
        let mut r = LatencyRecorder::new(10);
        for i in 1..=10_000 {
            r.record_ms(i as f64);
        }
        let m = r.median().unwrap();
        assert!((m - 5000.0).abs() / 5000.0 < 0.0625, "median {m}");
        assert_eq!(r.count(), 10_000);
        assert_eq!(r.histogram_ns().count, 10_000);
    }

    #[test]
    fn memory_is_bounded_regardless_of_requested_cap() {
        let mut r = LatencyRecorder::new(usize::MAX);
        for i in 0..(BOOTSTRAP_CAP + 500) {
            r.record_ms(i as f64);
        }
        assert_eq!(r.bootstrap.len(), BOOTSTRAP_CAP);
        // Arbitrary percentiles still answerable from the histogram.
        let p75 = r.percentile(75.0).unwrap();
        let expect = 0.75 * (BOOTSTRAP_CAP + 500) as f64;
        assert!((p75 - expect).abs() / expect < 0.07, "p75 {p75}");
    }

    #[test]
    fn record_ns_converts() {
        let mut r = LatencyRecorder::default();
        r.record_ns(2_500_000); // 2.5 ms
        assert_eq!(r.median(), Some(2.5));
    }

    #[test]
    fn empty_recorder() {
        let r = LatencyRecorder::default();
        assert_eq!(r.median(), None);
        assert_eq!(r.mean(), None);
        assert_eq!(r.count(), 0);
    }

    #[cfg(feature = "exact-percentiles")]
    #[test]
    fn exact_feature_is_exact_past_the_bootstrap() {
        let mut r = LatencyRecorder::new(10);
        for i in 1..=10_000 {
            r.record_ms(i as f64);
        }
        // Exact rank round(0.5 * 9999) = 5000 → the 5001st sample.
        assert_eq!(r.median(), Some(5001.0));
        assert_eq!(r.percentile(99.0), Some(9900.0));
    }
}
