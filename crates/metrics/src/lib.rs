//! # pdsp-metrics
//!
//! Performance metric collection for PDSP-Bench: latency distributions
//! (exact and streaming P² percentile estimation), throughput windows, and
//! the paper's measurement protocol — the *mean of three runs of the median
//! (50th percentile) end-to-end latency* (§4, Metrics).

pub mod latency;
pub mod percentile;
pub mod recovery;
pub mod summary;
pub mod throughput;

pub use latency::LatencyRecorder;
pub use percentile::P2Quantile;
pub use recovery::{LatencyTimeline, RecoveryRecorder};
pub use summary::{MeasurementProtocol, RunSummary};
pub use throughput::ThroughputMeter;
