//! Streaming quantile estimation with the P² algorithm (Jain & Chlamtac,
//! 1985). Long-running queries produce millions of latency samples; P² keeps
//! five markers instead of the full sample set.

/// Streaming estimator of a single quantile.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    /// Target quantile in (0,1).
    p: f64,
    /// Marker heights (estimated quantile values).
    q: [f64; 5],
    /// Marker positions (1-based ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Position increments.
    dn: [f64; 5],
    /// Samples observed.
    count: usize,
    /// First five samples (bootstrap).
    init: Vec<f64>,
}

impl P2Quantile {
    /// Estimator for quantile `p` in (0, 1), e.g. 0.5 for the median.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// Number of samples observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one sample.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).unwrap());
                for i in 0..5 {
                    self.q[i] = self.init[i];
                }
            }
            return;
        }

        // Locate cell k such that q[k] <= x < q[k+1].
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.q[i] <= x && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for item in self.n.iter_mut().skip(k + 1) {
            *item += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current quantile estimate (`None` until a sample arrives).
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.init.len() < 5 && self.count <= self.init.len() {
            // Fewer than 5 samples: exact.
            let mut v = self.init.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let rank = (self.p * (v.len() - 1) as f64).round() as usize;
            return Some(v[rank]);
        }
        Some(self.q[2])
    }
}

/// Exact percentile over a sorted copy (reference implementation used by
/// small-sample paths and tests).
pub fn exact_percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
    Some(v[rank.min(v.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_percentile_basics() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(exact_percentile(&v, 50.0), Some(3.0));
        assert_eq!(exact_percentile(&v, 0.0), Some(1.0));
        assert_eq!(exact_percentile(&v, 100.0), Some(5.0));
        assert_eq!(exact_percentile(&[], 50.0), None);
    }

    #[test]
    fn p2_median_on_uniform_sequence() {
        let mut est = P2Quantile::new(0.5);
        for i in 1..=10_001 {
            est.observe(i as f64);
        }
        let m = est.estimate().unwrap();
        assert!(
            (m - 5001.0).abs() / 5001.0 < 0.02,
            "median estimate {m} too far from 5001"
        );
    }

    #[test]
    fn p2_p99_on_skewed_distribution() {
        // Deterministic LCG; exponential-ish via inverse transform.
        let mut est = P2Quantile::new(0.99);
        let mut all = Vec::new();
        let mut state: u64 = 12345;
        for _ in 0..50_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 11) as f64) / ((1u64 << 53) as f64);
            let x = -(1.0 - u).ln();
            est.observe(x);
            all.push(x);
        }
        let exact = exact_percentile(&all, 99.0).unwrap();
        let got = est.estimate().unwrap();
        assert!(
            (got - exact).abs() / exact < 0.08,
            "p99 estimate {got} vs exact {exact}"
        );
    }

    #[test]
    fn small_sample_estimates_are_exact() {
        let mut est = P2Quantile::new(0.5);
        est.observe(10.0);
        assert_eq!(est.estimate(), Some(10.0));
        est.observe(20.0);
        est.observe(30.0);
        assert_eq!(est.estimate(), Some(20.0));
    }

    #[test]
    fn empty_estimator_returns_none() {
        assert_eq!(P2Quantile::new(0.5).estimate(), None);
    }

    #[test]
    #[should_panic]
    fn invalid_quantile_panics() {
        P2Quantile::new(1.5);
    }
}
