//! Recovery metrics: per-restart recovery times, tuple-accounting counters
//! (lost / duplicate / late), and a bucketed latency timeline that makes
//! the post-failure latency spike visible.

use crate::percentile::exact_percentile;

/// Collects recovery observations across one or more runs.
#[derive(Debug, Clone, Default)]
pub struct RecoveryRecorder {
    recovery_times_ms: Vec<f64>,
    lost_tuples: u64,
    duplicate_tuples: u64,
    late_tuples: u64,
}

impl RecoveryRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one recovery (failure detection to resumed processing), ms.
    pub fn record_recovery_ms(&mut self, ms: f64) {
        self.recovery_times_ms.push(ms);
    }

    /// Add tuples that were lost outright (no checkpoint covered them).
    pub fn add_lost(&mut self, n: u64) {
        self.lost_tuples += n;
    }

    /// Add tuples delivered more than once after replay.
    pub fn add_duplicates(&mut self, n: u64) {
        self.duplicate_tuples += n;
    }

    /// Add tuples dropped behind the watermark.
    pub fn add_late(&mut self, n: u64) {
        self.late_tuples += n;
    }

    /// Number of recoveries recorded.
    pub fn recoveries(&self) -> usize {
        self.recovery_times_ms.len()
    }

    /// Mean recovery time, ms.
    pub fn mean_recovery_ms(&self) -> Option<f64> {
        (!self.recovery_times_ms.is_empty()).then(|| {
            self.recovery_times_ms.iter().sum::<f64>() / self.recovery_times_ms.len() as f64
        })
    }

    /// Maximum recovery time, ms.
    pub fn max_recovery_ms(&self) -> Option<f64> {
        self.recovery_times_ms
            .iter()
            .copied()
            .fold(None, |m: Option<f64>, x| Some(m.map_or(x, |m| m.max(x))))
    }

    /// Tuples lost outright.
    pub fn lost(&self) -> u64 {
        self.lost_tuples
    }

    /// Tuples delivered more than once.
    pub fn duplicates(&self) -> u64 {
        self.duplicate_tuples
    }

    /// Tuples dropped as late.
    pub fn late(&self) -> u64 {
        self.late_tuples
    }
}

/// Latency over time, bucketed by delivery timestamp: failures show up as a
/// spike in the buckets covering the outage and its drain.
#[derive(Debug, Clone)]
pub struct LatencyTimeline {
    bucket_ms: f64,
    /// Latency samples per bucket index.
    buckets: Vec<Vec<f64>>,
}

impl LatencyTimeline {
    /// Timeline with the given bucket width in milliseconds.
    pub fn new(bucket_ms: f64) -> Self {
        LatencyTimeline {
            bucket_ms: bucket_ms.max(1e-6),
            buckets: Vec::new(),
        }
    }

    /// Record a delivery at absolute time `at_ms` with latency `latency_ms`.
    pub fn record(&mut self, at_ms: f64, latency_ms: f64) {
        if !at_ms.is_finite() || at_ms < 0.0 {
            return;
        }
        let idx = (at_ms / self.bucket_ms) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, Vec::new());
        }
        self.buckets[idx].push(latency_ms);
    }

    /// Number of buckets spanned so far.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Per-bucket `(bucket_start_ms, percentile)` series; empty buckets are
    /// skipped.
    pub fn percentile_series(&self, p: f64) -> Vec<(f64, f64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| exact_percentile(b, p).map(|v| (i as f64 * self.bucket_ms, v)))
            .collect()
    }

    /// Detect the failure spike: the bucket whose median most exceeds the
    /// overall median. Returns `(bucket_start_ms, bucket_median, overall
    /// median)` when some bucket's median is at least `factor` times the
    /// overall one.
    pub fn spike(&self, factor: f64) -> Option<(f64, f64, f64)> {
        let series = self.percentile_series(50.0);
        let all: Vec<f64> = self.buckets.iter().flatten().copied().collect();
        let overall = exact_percentile(&all, 50.0)?;
        series
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .filter(|&(_, m)| m >= factor * overall)
            .map(|(t, m)| (t, m, overall))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_aggregates_counters_and_times() {
        let mut r = RecoveryRecorder::new();
        assert_eq!(r.mean_recovery_ms(), None);
        r.record_recovery_ms(100.0);
        r.record_recovery_ms(300.0);
        r.add_lost(5);
        r.add_duplicates(7);
        r.add_late(3);
        assert_eq!(r.recoveries(), 2);
        assert_eq!(r.mean_recovery_ms(), Some(200.0));
        assert_eq!(r.max_recovery_ms(), Some(300.0));
        assert_eq!((r.lost(), r.duplicates(), r.late()), (5, 7, 3));
    }

    #[test]
    fn timeline_buckets_by_time() {
        let mut t = LatencyTimeline::new(100.0);
        t.record(10.0, 1.0);
        t.record(150.0, 2.0);
        t.record(160.0, 4.0);
        let series = t.percentile_series(50.0);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], (0.0, 1.0));
        // Nearest-rank percentile: median of [2, 4] is the upper sample.
        assert_eq!(series[1], (100.0, 4.0));
    }

    #[test]
    fn timeline_detects_failure_spike() {
        let mut t = LatencyTimeline::new(100.0);
        // Steady 5 ms latency, then an outage bucket at 10x.
        for i in 0..50 {
            t.record(i as f64 * 10.0, 5.0);
        }
        for i in 0..10 {
            t.record(500.0 + i as f64 * 10.0, 50.0);
        }
        for i in 0..50 {
            t.record(600.0 + i as f64 * 10.0, 5.0);
        }
        let (at, spike, overall) = t.spike(3.0).unwrap();
        assert_eq!(at, 500.0);
        assert_eq!(spike, 50.0);
        assert!(overall < 10.0);
        assert!(t.spike(20.0).is_none(), "no 20x spike present");
    }

    #[test]
    fn timeline_ignores_invalid_timestamps() {
        let mut t = LatencyTimeline::new(100.0);
        t.record(f64::NAN, 1.0);
        t.record(-5.0, 1.0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
