//! Recovery metrics: per-restart recovery times, tuple-accounting counters
//! (lost / duplicate / late), and a bucketed latency timeline that makes
//! the post-failure latency spike visible.

use pdsp_telemetry::{FlightEvent, FlightEventKind, HistogramSnapshot};

/// Collects recovery observations across one or more runs.
#[derive(Debug, Clone, Default)]
pub struct RecoveryRecorder {
    recovery_times_ms: Vec<f64>,
    lost_tuples: u64,
    duplicate_tuples: u64,
    late_tuples: u64,
}

impl RecoveryRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild recovery timings from a run's flight-recorder events: each
    /// `RecoveryStarted` → `RestartCompleted` pair contributes one recovery
    /// interval (failure detection to respawn).
    pub fn from_flight_events(events: &[FlightEvent]) -> Self {
        let mut r = Self::new();
        let mut started_at: Option<u64> = None;
        for e in events {
            match e.kind {
                FlightEventKind::RecoveryStarted => started_at = Some(e.t_ms),
                FlightEventKind::RestartCompleted => {
                    if let Some(t0) = started_at.take() {
                        r.record_recovery_ms(e.t_ms.saturating_sub(t0) as f64);
                    }
                }
                _ => {}
            }
        }
        r
    }

    /// Record one recovery (failure detection to resumed processing), ms.
    pub fn record_recovery_ms(&mut self, ms: f64) {
        self.recovery_times_ms.push(ms);
    }

    /// Add tuples that were lost outright (no checkpoint covered them).
    pub fn add_lost(&mut self, n: u64) {
        self.lost_tuples += n;
    }

    /// Add tuples delivered more than once after replay.
    pub fn add_duplicates(&mut self, n: u64) {
        self.duplicate_tuples += n;
    }

    /// Add tuples dropped behind the watermark.
    pub fn add_late(&mut self, n: u64) {
        self.late_tuples += n;
    }

    /// Number of recoveries recorded.
    pub fn recoveries(&self) -> usize {
        self.recovery_times_ms.len()
    }

    /// Mean recovery time, ms.
    pub fn mean_recovery_ms(&self) -> Option<f64> {
        (!self.recovery_times_ms.is_empty()).then(|| {
            self.recovery_times_ms.iter().sum::<f64>() / self.recovery_times_ms.len() as f64
        })
    }

    /// Maximum recovery time, ms.
    pub fn max_recovery_ms(&self) -> Option<f64> {
        self.recovery_times_ms
            .iter()
            .copied()
            .fold(None, |m: Option<f64>, x| Some(m.map_or(x, |m| m.max(x))))
    }

    /// Tuples lost outright.
    pub fn lost(&self) -> u64 {
        self.lost_tuples
    }

    /// Tuples delivered more than once.
    pub fn duplicates(&self) -> u64 {
        self.duplicate_tuples
    }

    /// Tuples dropped as late.
    pub fn late(&self) -> u64 {
        self.late_tuples
    }
}

/// Latency over time, bucketed by delivery timestamp: failures show up as a
/// spike in the buckets covering the outage and its drain.
///
/// Each time bucket holds a fixed-size streaming [`HistogramSnapshot`]
/// instead of raw samples, so memory is bounded by the number of buckets,
/// not the number of deliveries.
#[derive(Debug, Clone)]
pub struct LatencyTimeline {
    bucket_ms: f64,
    /// Latency distribution (nanoseconds) per bucket index.
    buckets: Vec<HistogramSnapshot>,
}

impl LatencyTimeline {
    /// Timeline with the given bucket width in milliseconds.
    pub fn new(bucket_ms: f64) -> Self {
        LatencyTimeline {
            bucket_ms: bucket_ms.max(1e-6),
            buckets: Vec::new(),
        }
    }

    /// Record a delivery at absolute time `at_ms` with latency `latency_ms`.
    pub fn record(&mut self, at_ms: f64, latency_ms: f64) {
        if !at_ms.is_finite() || at_ms < 0.0 {
            return;
        }
        let idx = (at_ms / self.bucket_ms) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, HistogramSnapshot::new());
        }
        self.buckets[idx].record((latency_ms * 1e6).max(0.0) as u64);
    }

    /// Number of buckets spanned so far.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Per-bucket `(bucket_start_ms, percentile_ms)` series; empty buckets
    /// are skipped.
    pub fn percentile_series(&self, p: f64) -> Vec<(f64, f64)> {
        let q = (p / 100.0).clamp(0.0, 1.0);
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.count > 0)
            .map(|(i, b)| (i as f64 * self.bucket_ms, b.quantile(q) as f64 / 1e6))
            .collect()
    }

    /// Detect the failure spike: the bucket whose median most exceeds the
    /// overall median. Returns `(bucket_start_ms, bucket_median, overall
    /// median)` when some bucket's median is at least `factor` times the
    /// overall one.
    pub fn spike(&self, factor: f64) -> Option<(f64, f64, f64)> {
        let series = self.percentile_series(50.0);
        let mut merged = HistogramSnapshot::new();
        for b in &self.buckets {
            merged.merge(b);
        }
        if merged.count == 0 {
            return None;
        }
        let overall = merged.quantile(0.5) as f64 / 1e6;
        series
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .filter(|&(_, m)| m >= factor * overall)
            .map(|(t, m)| (t, m, overall))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_aggregates_counters_and_times() {
        let mut r = RecoveryRecorder::new();
        assert_eq!(r.mean_recovery_ms(), None);
        r.record_recovery_ms(100.0);
        r.record_recovery_ms(300.0);
        r.add_lost(5);
        r.add_duplicates(7);
        r.add_late(3);
        assert_eq!(r.recoveries(), 2);
        assert_eq!(r.mean_recovery_ms(), Some(200.0));
        assert_eq!(r.max_recovery_ms(), Some(300.0));
        assert_eq!((r.lost(), r.duplicates(), r.late()), (5, 7, 3));
    }

    #[test]
    fn recorder_rebuilds_from_flight_events() {
        let ev = |t_ms, kind| FlightEvent {
            t_ms,
            kind,
            node: 0,
            instance: 0,
            detail: String::new(),
            trace: None,
        };
        let events = vec![
            ev(0, FlightEventKind::RunStarted),
            ev(100, FlightEventKind::FaultInjected),
            ev(100, FlightEventKind::RecoveryStarted),
            ev(150, FlightEventKind::RestartCompleted),
            ev(400, FlightEventKind::RecoveryStarted),
            ev(470, FlightEventKind::RestartCompleted),
            ev(900, FlightEventKind::RunFinished),
        ];
        let r = RecoveryRecorder::from_flight_events(&events);
        assert_eq!(r.recoveries(), 2);
        assert_eq!(r.mean_recovery_ms(), Some(60.0));
        assert_eq!(r.max_recovery_ms(), Some(70.0));
    }

    #[test]
    fn timeline_buckets_by_time() {
        let mut t = LatencyTimeline::new(100.0);
        t.record(10.0, 1.0);
        t.record(150.0, 2.0);
        t.record(160.0, 4.0);
        let series = t.percentile_series(50.0);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], (0.0, 1.0));
        // Histogram nearest-rank median of [2, 4] is the lower sample,
        // returned exactly (rank 1 hits the tracked minimum).
        assert_eq!(series[1], (100.0, 2.0));
    }

    #[test]
    fn timeline_detects_failure_spike() {
        let mut t = LatencyTimeline::new(100.0);
        // Steady 5 ms latency, then an outage bucket at 10x.
        for i in 0..50 {
            t.record(i as f64 * 10.0, 5.0);
        }
        for i in 0..10 {
            t.record(500.0 + i as f64 * 10.0, 50.0);
        }
        for i in 0..50 {
            t.record(600.0 + i as f64 * 10.0, 5.0);
        }
        let (at, spike, overall) = t.spike(3.0).unwrap();
        assert_eq!(at, 500.0);
        // Single-valued buckets stay exact (quantiles clamp to [min, max]).
        assert_eq!(spike, 50.0);
        assert!(overall < 10.0);
        assert!(t.spike(20.0).is_none(), "no 20x spike present");
    }

    #[test]
    fn timeline_memory_is_bounded_per_bucket() {
        let mut t = LatencyTimeline::new(100.0);
        for i in 0..100_000 {
            t.record((i % 100) as f64, i as f64 % 37.0);
        }
        assert_eq!(t.len(), 1, "all samples land in one fixed-size bucket");
        let series = t.percentile_series(99.0);
        assert_eq!(series.len(), 1);
        assert!(series[0].1 <= 37.0 * 1.07);
    }

    #[test]
    fn timeline_ignores_invalid_timestamps() {
        let mut t = LatencyTimeline::new(100.0);
        t.record(f64::NAN, 1.0);
        t.record(-5.0, 1.0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
