//! Run summaries and the paper's measurement protocol.
//!
//! PDSP-Bench executes each PQP "three times for N minutes each" and reports
//! the *mean of three runs of the median latency* (§4, Metrics).
//! [`MeasurementProtocol`] encodes exactly that so every experiment reports
//! the same statistic.

use serde::{Deserialize, Serialize};

/// Summary of one query execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Median (p50) end-to-end latency in ms.
    pub p50_latency_ms: f64,
    /// p90 latency in ms.
    pub p90_latency_ms: f64,
    /// p99 latency in ms.
    pub p99_latency_ms: f64,
    /// Mean latency in ms.
    pub mean_latency_ms: f64,
    /// Source throughput, tuples/second.
    pub throughput_in: f64,
    /// Sink throughput, tuples/second.
    pub throughput_out: f64,
    /// Tuples delivered at sinks.
    pub tuples_out: u64,
    /// Tuples emitted by sources.
    pub tuples_in: u64,
}

impl RunSummary {
    /// Build from a latency recorder plus counters.
    pub fn from_recorder(
        rec: &crate::latency::LatencyRecorder,
        tuples_in: u64,
        tuples_out: u64,
        elapsed_secs: f64,
    ) -> Self {
        let span = elapsed_secs.max(1e-9);
        RunSummary {
            p50_latency_ms: rec.median().unwrap_or(0.0),
            p90_latency_ms: rec.percentile(90.0).unwrap_or(0.0),
            p99_latency_ms: rec.percentile(99.0).unwrap_or(0.0),
            mean_latency_ms: rec.mean().unwrap_or(0.0),
            throughput_in: tuples_in as f64 / span,
            throughput_out: tuples_out as f64 / span,
            tuples_out,
            tuples_in,
        }
    }
}

/// The paper's protocol: run R times, report the mean of per-run medians.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasurementProtocol {
    /// Number of repeated runs (paper: 3).
    pub runs: usize,
}

impl Default for MeasurementProtocol {
    fn default() -> Self {
        MeasurementProtocol { runs: 3 }
    }
}

impl MeasurementProtocol {
    /// Mean of per-run median latencies.
    pub fn aggregate_latency_ms(&self, runs: &[RunSummary]) -> Option<f64> {
        if runs.is_empty() {
            return None;
        }
        Some(runs.iter().map(|r| r.p50_latency_ms).sum::<f64>() / runs.len() as f64)
    }

    /// Execute `run_fn` `self.runs` times and aggregate.
    pub fn measure(&self, mut run_fn: impl FnMut(usize) -> RunSummary) -> ProtocolResult {
        let runs: Vec<RunSummary> = (0..self.runs.max(1)).map(&mut run_fn).collect();
        let latency = self.aggregate_latency_ms(&runs).unwrap_or(0.0);
        ProtocolResult {
            mean_of_median_latency_ms: latency,
            runs,
        }
    }
}

/// Aggregated result of a repeated measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolResult {
    /// Mean of per-run median latencies (the paper's headline number).
    pub mean_of_median_latency_ms: f64,
    /// Individual run summaries.
    pub runs: Vec<RunSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyRecorder;

    fn summary(p50: f64) -> RunSummary {
        RunSummary {
            p50_latency_ms: p50,
            p90_latency_ms: p50 * 2.0,
            p99_latency_ms: p50 * 3.0,
            mean_latency_ms: p50 * 1.2,
            throughput_in: 1000.0,
            throughput_out: 900.0,
            tuples_out: 900,
            tuples_in: 1000,
        }
    }

    #[test]
    fn mean_of_medians() {
        let proto = MeasurementProtocol::default();
        let agg = proto
            .aggregate_latency_ms(&[summary(10.0), summary(20.0), summary(30.0)])
            .unwrap();
        assert!((agg - 20.0).abs() < 1e-12);
    }

    #[test]
    fn measure_invokes_run_fn_thrice() {
        let proto = MeasurementProtocol::default();
        let mut calls = 0;
        let result = proto.measure(|i| {
            calls += 1;
            summary((i + 1) as f64 * 10.0)
        });
        assert_eq!(calls, 3);
        assert_eq!(result.runs.len(), 3);
        assert!((result.mean_of_median_latency_ms - 20.0).abs() < 1e-12);
    }

    #[test]
    fn from_recorder_computes_throughput() {
        let mut rec = LatencyRecorder::default();
        for v in [1.0, 2.0, 3.0] {
            rec.record_ms(v);
        }
        let s = RunSummary::from_recorder(&rec, 100, 50, 2.0);
        assert_eq!(s.throughput_in, 50.0);
        assert_eq!(s.throughput_out, 25.0);
        assert_eq!(s.p50_latency_ms, 2.0);
    }

    #[test]
    fn empty_runs_aggregate_to_none() {
        assert_eq!(
            MeasurementProtocol::default().aggregate_latency_ms(&[]),
            None
        );
    }

    #[test]
    fn summary_serializes() {
        let s = summary(5.0);
        let json = serde_json::to_string(&s).unwrap();
        let back: RunSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
