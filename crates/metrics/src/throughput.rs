//! Throughput measurement over fixed windows.

/// Counts events against a (possibly simulated) clock and reports
/// tuples/second, both overall and per fixed-size window.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    window_ns: u64,
    total: u64,
    start_ns: Option<u64>,
    last_ns: u64,
    window_start_ns: u64,
    window_count: u64,
    window_rates: Vec<f64>,
}

impl ThroughputMeter {
    /// Meter with the given window size in nanoseconds.
    pub fn new(window_ns: u64) -> Self {
        ThroughputMeter {
            window_ns: window_ns.max(1),
            total: 0,
            start_ns: None,
            last_ns: 0,
            window_start_ns: 0,
            window_count: 0,
            window_rates: Vec::new(),
        }
    }

    /// Record `n` events at clock `now_ns`.
    pub fn record(&mut self, now_ns: u64, n: u64) {
        if self.start_ns.is_none() {
            self.start_ns = Some(now_ns);
            self.window_start_ns = now_ns;
        }
        self.last_ns = self.last_ns.max(now_ns);
        self.total += n;
        // Close windows that passed.
        while now_ns >= self.window_start_ns + self.window_ns {
            let rate = self.window_count as f64 / (self.window_ns as f64 / 1e9);
            self.window_rates.push(rate);
            self.window_count = 0;
            self.window_start_ns += self.window_ns;
        }
        self.window_count += n;
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Overall rate in events/second.
    pub fn overall_rate(&self) -> Option<f64> {
        let start = self.start_ns?;
        let span = (self.last_ns.saturating_sub(start)) as f64 / 1e9;
        if span <= 0.0 {
            return None;
        }
        Some(self.total as f64 / span)
    }

    /// Per-window rates observed so far (closed windows only).
    pub fn window_rates(&self) -> &[f64] {
        &self.window_rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn overall_rate_spans_first_to_last() {
        let mut m = ThroughputMeter::new(SEC);
        m.record(0, 100);
        m.record(2 * SEC, 100);
        let r = m.overall_rate().unwrap();
        assert!((r - 100.0).abs() < 1e-6, "200 events over 2s = {r}");
    }

    #[test]
    fn window_rates_close_on_boundary() {
        let mut m = ThroughputMeter::new(SEC);
        for i in 0..10 {
            m.record(i * SEC / 10, 50); // 500 events in first second
        }
        m.record(SEC + 1, 1); // crosses boundary
        assert_eq!(m.window_rates().len(), 1);
        assert!((m.window_rates()[0] - 500.0).abs() < 1e-6);
    }

    #[test]
    fn empty_meter_has_no_rate() {
        let m = ThroughputMeter::new(SEC);
        assert_eq!(m.overall_rate(), None);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn gaps_produce_zero_windows() {
        let mut m = ThroughputMeter::new(SEC);
        m.record(0, 10);
        m.record(3 * SEC, 10); // two empty windows in between
        assert_eq!(m.window_rates().len(), 3);
        assert_eq!(m.window_rates()[1], 0.0);
        assert_eq!(m.window_rates()[2], 0.0);
    }
}
