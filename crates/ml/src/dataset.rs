//! Training data containers shared by all four cost models.

use serde::{Deserialize, Serialize};

/// Graph encoding of a PQP for the GNN: per-node feature vectors plus
/// directed edges (upstream -> downstream).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSample {
    /// One feature vector per plan node (equal lengths).
    pub node_features: Vec<Vec<f64>>,
    /// Directed edges as (from, to) node indices.
    pub edges: Vec<(usize, usize)>,
}

impl GraphSample {
    /// Node-feature dimensionality (0 for an empty graph).
    pub fn feature_dim(&self) -> usize {
        self.node_features.first().map_or(0, Vec::len)
    }
}

/// One training example: flat features for tabular models, graph encoding
/// for the GNN, and the measured latency label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Flat feature vector.
    pub flat: Vec<f64>,
    /// Graph encoding.
    pub graph: GraphSample,
    /// Label: measured end-to-end latency (ms), strictly positive.
    pub latency_ms: f64,
}

/// A labeled dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Examples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Build from samples.
    pub fn new(samples: Vec<Sample>) -> Self {
        Dataset { samples }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Flat feature dimensionality.
    pub fn flat_dim(&self) -> usize {
        self.samples.first().map_or(0, |s| s.flat.len())
    }

    /// Deterministic train/validation split: every `k`-th example goes to
    /// validation (k = round(1/fraction)), so callers need no RNG and
    /// repeated calls agree.
    pub fn split(&self, val_fraction: f64) -> (Dataset, Dataset) {
        let k = (1.0 / val_fraction.clamp(0.05, 0.5)).round() as usize;
        let mut train = Vec::new();
        let mut val = Vec::new();
        for (i, s) in self.samples.iter().enumerate() {
            if (i + 1) % k == 0 {
                val.push(s.clone());
            } else {
                train.push(s.clone());
            }
        }
        if val.is_empty() && !train.is_empty() {
            val.push(train.pop().unwrap());
        }
        (Dataset::new(train), Dataset::new(val))
    }

    /// Labels in log space (what the models regress on).
    pub fn log_labels(&self) -> Vec<f64> {
        self.samples
            .iter()
            .map(|s| s.latency_ms.max(1e-6).ln())
            .collect()
    }

    /// Per-dimension mean/std of the flat features (std floored at 1e-9),
    /// for normalization inside the neural models.
    pub fn flat_stats(&self) -> (Vec<f64>, Vec<f64>) {
        let d = self.flat_dim();
        let n = self.len().max(1) as f64;
        let mut mean = vec![0.0; d];
        for s in &self.samples {
            for (m, &x) in mean.iter_mut().zip(&s.flat) {
                *m += x / n;
            }
        }
        let mut std = vec![0.0; d];
        for s in &self.samples {
            for ((sd, &x), m) in std.iter_mut().zip(&s.flat).zip(&mean) {
                *sd += (x - m) * (x - m) / n;
            }
        }
        for sd in &mut std {
            *sd = sd.sqrt().max(1e-9);
        }
        (mean, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(x: f64, y: f64) -> Sample {
        Sample {
            flat: vec![x, 2.0 * x],
            graph: GraphSample {
                node_features: vec![vec![x]],
                edges: vec![],
            },
            latency_ms: y,
        }
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let d = Dataset::new((0..100).map(|i| sample(i as f64, 1.0 + i as f64)).collect());
        let (t1, v1) = d.split(0.2);
        let (t2, v2) = d.split(0.2);
        assert_eq!(t1.len(), t2.len());
        assert_eq!(v1.len(), v2.len());
        assert_eq!(t1.len() + v1.len(), 100);
        assert_eq!(v1.len(), 20);
    }

    #[test]
    fn split_never_leaves_validation_empty() {
        let d = Dataset::new(vec![sample(1.0, 2.0), sample(2.0, 3.0)]);
        let (_, v) = d.split(0.2);
        assert!(!v.is_empty());
    }

    #[test]
    fn log_labels_are_finite_for_tiny_latencies() {
        let d = Dataset::new(vec![sample(1.0, 0.0)]);
        assert!(d.log_labels()[0].is_finite());
    }

    #[test]
    fn flat_stats_normalize_correctly() {
        let d = Dataset::new(vec![sample(0.0, 1.0), sample(2.0, 1.0)]);
        let (mean, std) = d.flat_stats();
        assert_eq!(mean[0], 1.0);
        assert_eq!(std[0], 1.0);
        assert_eq!(mean[1], 2.0);
    }
}
