//! Featurization: PQP descriptor + execution context -> model inputs.
//!
//! The flat encoding feeds LR/MLP/RF; the graph encoding (one feature
//! vector per plan node + the DAG's edges) feeds the GNN, following the
//! ZeroTune-style "operators as nodes, dataflow as edges" representation
//! the paper cites for its GNN cost model.

use crate::dataset::{GraphSample, Sample};
use pdsp_engine::operator::OpTag;
use pdsp_engine::plan::PlanDescriptor;
use serde::{Deserialize, Serialize};

/// Execution context of a measured run (everything that is not plan
/// structure but affects cost).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleContext {
    /// Event rate per source, tuples/second.
    pub event_rate: f64,
    /// Total cores in the cluster.
    pub total_cores: usize,
    /// Mean node clock, GHz.
    pub mean_clock_ghz: f64,
    /// Whether the cluster mixes node types.
    pub heterogeneous: bool,
}

/// Per-node graph feature dimensionality.
pub const NODE_FEATURE_DIM: usize = OpTag::ALL.len() + 7;

/// Encode one plan node.
fn node_features(node: &pdsp_engine::plan::NodeDescriptor, ctx: &SampleContext) -> Vec<f64> {
    let mut f = vec![0.0; NODE_FEATURE_DIM];
    f[node.op.tag.index()] = 1.0;
    let base = OpTag::ALL.len();
    f[base] = (node.parallelism as f64).ln_1p();
    f[base + 1] = node.op.cpu_ns_per_tuple.ln_1p();
    f[base + 2] = node.op.selectivity.min(64.0);
    f[base + 3] = node.op.state_factor;
    f[base + 4] = node.op.window.map_or(0.0, |w| (w.length as f64).ln_1p());
    f[base + 5] = node.op.window.map_or(0.0, |w| (w.slide as f64).ln_1p());
    f[base + 6] = ctx.event_rate.ln_1p();
    f
}

/// Flat feature dimensionality.
pub const FLAT_FEATURE_DIM: usize = OpTag::ALL.len() + 14;

/// Build the flat feature vector for tabular models.
pub fn flat_features(plan: &PlanDescriptor, ctx: &SampleContext) -> Vec<f64> {
    let mut f = vec![0.0; FLAT_FEATURE_DIM];
    // Operator-family counts.
    for node in &plan.nodes {
        f[node.op.tag.index()] += 1.0;
    }
    let base = OpTag::ALL.len();
    let degrees: Vec<f64> = plan.nodes.iter().map(|n| n.parallelism as f64).collect();
    let total: f64 = degrees.iter().sum();
    let max = degrees.iter().copied().fold(0.0, f64::max);
    let mean = total / degrees.len().max(1) as f64;
    f[base] = total.ln_1p();
    f[base + 1] = max.ln_1p();
    f[base + 2] = mean.ln_1p();
    // Aggregate cost/selectivity structure.
    f[base + 3] = plan
        .nodes
        .iter()
        .map(|n| n.op.cpu_ns_per_tuple)
        .sum::<f64>()
        .ln_1p();
    f[base + 4] = plan.nodes.iter().map(|n| n.op.state_factor).sum();
    f[base + 5] = plan
        .nodes
        .iter()
        .filter(|n| n.op.selectivity < 1.0)
        .map(|n| n.op.selectivity)
        .product::<f64>();
    f[base + 6] = plan
        .nodes
        .iter()
        .filter_map(|n| n.op.window)
        .map(|w| (w.length as f64).ln_1p())
        .sum::<f64>();
    f[base + 7] = plan.edges.len() as f64;
    // Context.
    f[base + 8] = ctx.event_rate.ln_1p();
    f[base + 9] = (ctx.total_cores as f64).ln_1p();
    f[base + 10] = ctx.mean_clock_ghz;
    f[base + 11] = ctx.heterogeneous as u8 as f64;
    // Interaction terms the paper's trends hinge on: demand vs capacity and
    // coordination pressure (joins x parallelism).
    let joins = f[OpTag::Join.index()];
    f[base + 12] = ctx.event_rate.ln_1p() - (ctx.total_cores as f64).ln_1p();
    f[base + 13] = joins * max.ln_1p();
    f
}

/// Build a full [`Sample`] (flat + graph) from a plan descriptor, its
/// context, and the measured latency label.
pub fn featurize(plan: &PlanDescriptor, ctx: &SampleContext, latency_ms: f64) -> Sample {
    let graph = GraphSample {
        node_features: plan.nodes.iter().map(|n| node_features(n, ctx)).collect(),
        edges: plan.edges.iter().map(|e| (e.from, e.to)).collect(),
    };
    Sample {
        flat: flat_features(plan, ctx),
        graph,
        latency_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsp_engine::expr::Predicate;
    use pdsp_engine::value::{FieldType, Schema};
    use pdsp_engine::PlanBuilder;

    fn ctx() -> SampleContext {
        SampleContext {
            event_rate: 100_000.0,
            total_cores: 80,
            mean_clock_ghz: 2.0,
            heterogeneous: false,
        }
    }

    fn descriptor(parallelism: usize) -> PlanDescriptor {
        PlanBuilder::new()
            .source("s", Schema::of(&[FieldType::Int]), 1)
            .filter("f", Predicate::True, 0.5)
            .set_parallelism(1, parallelism)
            .sink("k")
            .build()
            .unwrap()
            .descriptor()
    }

    #[test]
    fn dimensions_are_consistent() {
        let s = featurize(&descriptor(4), &ctx(), 12.0);
        assert_eq!(s.flat.len(), FLAT_FEATURE_DIM);
        assert_eq!(s.graph.feature_dim(), NODE_FEATURE_DIM);
        assert_eq!(s.graph.node_features.len(), 3);
        assert_eq!(s.graph.edges.len(), 2);
    }

    #[test]
    fn parallelism_moves_features() {
        let a = featurize(&descriptor(1), &ctx(), 1.0);
        let b = featurize(&descriptor(64), &ctx(), 1.0);
        assert_ne!(a.flat, b.flat);
        assert_ne!(a.graph.node_features[1], b.graph.node_features[1]);
        // Source node features are unaffected by filter parallelism.
        assert_eq!(a.graph.node_features[0], b.graph.node_features[0]);
    }

    #[test]
    fn one_hot_tags_are_set() {
        let s = featurize(&descriptor(2), &ctx(), 1.0);
        // flat: 1 source + 1 filter + 1 sink counted.
        assert_eq!(s.flat[OpTag::Source.index()], 1.0);
        assert_eq!(s.flat[OpTag::Filter.index()], 1.0);
        assert_eq!(s.flat[OpTag::Sink.index()], 1.0);
        assert_eq!(s.flat[OpTag::Join.index()], 0.0);
        // graph: node 1 is the filter.
        assert_eq!(s.graph.node_features[1][OpTag::Filter.index()], 1.0);
    }

    #[test]
    fn features_are_finite() {
        let s = featurize(
            &descriptor(128),
            &SampleContext {
                event_rate: 4_000_000.0,
                total_cores: 280,
                mean_clock_ghz: 2.2,
                heterogeneous: true,
            },
            50_000.0,
        );
        assert!(s.flat.iter().all(|x| x.is_finite()));
        assert!(s
            .graph
            .node_features
            .iter()
            .flatten()
            .all(|x| x.is_finite()));
    }
}
