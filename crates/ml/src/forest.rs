//! Random forest regression: bagged CART trees with variance-reduction
//! splits and per-split feature subsampling.

use crate::dataset::{Dataset, Sample};
use crate::trainer::{mse_log, CostModel, TrainOptions, TrainReport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A regression tree node.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// One CART tree stored as a node arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// The random forest cost model. Serializable once trained.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    trees: Vec<Tree>,
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest {
            n_trees: 50,
            max_depth: 12,
            min_samples_split: 4,
            trees: Vec::new(),
        }
    }
}

impl RandomForest {
    /// Forest with explicit hyperparameters.
    pub fn new(n_trees: usize, max_depth: usize, min_samples_split: usize) -> Self {
        RandomForest {
            n_trees,
            max_depth,
            min_samples_split,
            trees: Vec::new(),
        }
    }

    fn build_tree(
        &self,
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: Vec<usize>,
        rng: &mut ChaCha8Rng,
    ) -> Tree {
        let mut nodes = Vec::new();
        self.grow(xs, ys, idx, 0, &mut nodes, rng);
        Tree { nodes }
    }

    /// Grow a subtree; returns its root index in `nodes`.
    fn grow(
        &self,
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: Vec<usize>,
        depth: usize,
        nodes: &mut Vec<Node>,
        rng: &mut ChaCha8Rng,
    ) -> usize {
        let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len().max(1) as f64;
        if depth >= self.max_depth || idx.len() < self.min_samples_split {
            nodes.push(Node::Leaf { value: mean });
            return nodes.len() - 1;
        }
        let d = xs.first().map_or(0, Vec::len);
        let n_try = ((d as f64).sqrt().ceil() as usize).max(1);
        // Best split by SSE reduction over a random feature subset.
        let mut best: Option<(f64, usize, f64)> = None; // (sse, feature, threshold)
        for _ in 0..n_try {
            let f = rng.gen_range(0..d);
            let mut vals: Vec<f64> = idx.iter().map(|&i| xs[i][f]).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            // Candidate thresholds: quartile midpoints (cheap, effective).
            for q in [0.25, 0.5, 0.75] {
                let t = vals[((vals.len() - 1) as f64 * q) as usize];
                let (mut ls, mut lc, mut rs, mut rc) = (0.0, 0usize, 0.0, 0usize);
                for &i in &idx {
                    if xs[i][f] <= t {
                        ls += ys[i];
                        lc += 1;
                    } else {
                        rs += ys[i];
                        rc += 1;
                    }
                }
                if lc == 0 || rc == 0 {
                    continue;
                }
                let (lm, rm) = (ls / lc as f64, rs / rc as f64);
                let sse: f64 = idx
                    .iter()
                    .map(|&i| {
                        let m = if xs[i][f] <= t { lm } else { rm };
                        (ys[i] - m) * (ys[i] - m)
                    })
                    .sum();
                if best.is_none_or(|(b, _, _)| sse < b) {
                    best = Some((sse, f, t));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            nodes.push(Node::Leaf { value: mean });
            return nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| xs[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            nodes.push(Node::Leaf { value: mean });
            return nodes.len() - 1;
        }
        let slot = nodes.len();
        nodes.push(Node::Leaf { value: mean }); // placeholder
        let left = self.grow(xs, ys, left_idx, depth + 1, nodes, rng);
        let right = self.grow(xs, ys, right_idx, depth + 1, nodes, rng);
        nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }
}

impl CostModel for RandomForest {
    fn name(&self) -> &str {
        "RF"
    }

    fn fit(&mut self, data: &Dataset, opts: &TrainOptions) -> TrainReport {
        let start = Instant::now();
        let (train, val) = data.split(opts.val_fraction);
        let xs: Vec<Vec<f64>> = train.samples.iter().map(|s| s.flat.clone()).collect();
        let ys = train.log_labels();
        let n = xs.len();
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
        self.trees = (0..self.n_trees)
            .map(|_| {
                // Bootstrap sample.
                let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n.max(1))).collect();
                self.build_tree(&xs, &ys, idx, &mut rng)
            })
            .collect();
        TrainReport {
            train_time: start.elapsed(),
            epochs: 1,
            early_stopped: false,
            train_loss: mse_log(self, &train),
            val_loss: mse_log(self, &val),
            train_examples: train.len(),
        }
    }

    fn predict(&self, sample: &Sample) -> f64 {
        if self.trees.is_empty() {
            return 1.0;
        }
        let log_pred = self
            .trees
            .iter()
            .map(|t| t.predict(&sample.flat))
            .sum::<f64>()
            / self.trees.len() as f64;
        log_pred.clamp(-20.0, 30.0).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GraphSample;

    fn step_dataset(n: usize) -> Dataset {
        // Piecewise-constant target: trees should nail this. Feature
        // patterns use multipliers coprime with the deterministic 1-in-5
        // validation split so train and validation cover the same values.
        let samples = (0..n)
            .map(|i| {
                let x0 = ((i * 37) % 101 % 20) as f64;
                let x1 = ((i * 53) % 103 % 11) as f64;
                let log_lat: f64 =
                    if x0 < 10.0 { 1.0 } else { 3.0 } + if x1 < 5.0 { 0.0 } else { 0.5 };
                Sample {
                    flat: vec![x0, x1],
                    graph: GraphSample {
                        node_features: vec![],
                        edges: vec![],
                    },
                    latency_ms: log_lat.exp(),
                }
            })
            .collect();
        Dataset::new(samples)
    }

    #[test]
    fn fits_piecewise_constant_target() {
        let data = step_dataset(300);
        let mut m = RandomForest::default();
        let report = m.fit(&data, &TrainOptions::default());
        assert!(report.val_loss < 0.05, "val loss {}", report.val_loss);
        let q = m.evaluate(&data).unwrap();
        assert!(q.median < 1.2, "median q-error {}", q.median);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = step_dataset(100);
        let mut a = RandomForest::default();
        let mut b = RandomForest::default();
        a.fit(&data, &TrainOptions::default());
        b.fit(&data, &TrainOptions::default());
        assert_eq!(a.predict(&data.samples[3]), b.predict(&data.samples[3]));
    }

    #[test]
    fn more_trees_do_not_hurt() {
        let data = step_dataset(200);
        let mut small = RandomForest::new(5, 12, 4);
        let mut large = RandomForest::new(80, 12, 4);
        let s = small.fit(&data, &TrainOptions::default());
        let l = large.fit(&data, &TrainOptions::default());
        assert!(l.val_loss <= s.val_loss * 1.5);
    }

    #[test]
    fn depth_limit_is_respected_via_generalization() {
        // A depth-1 forest on a 4-region target cannot be perfect.
        let data = step_dataset(200);
        let mut shallow = RandomForest::new(20, 1, 2);
        let report = shallow.fit(&data, &TrainOptions::default());
        assert!(report.train_loss > 1e-4);
    }

    #[test]
    fn unfit_model_predicts_fallback() {
        let m = RandomForest::default();
        assert_eq!(m.predict(&step_dataset(1).samples[0]), 1.0);
    }
}
