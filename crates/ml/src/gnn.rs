//! Graph neural network cost model.
//!
//! Encodes a PQP as a DAG — operators as nodes, dataflow edges as edges —
//! and runs message passing: each layer combines a node's own state with
//! the mean of its upstream and downstream neighbours. A mean-pooled
//! readout feeds a linear head predicting log-latency. This mirrors the
//! ZeroTune/COSTREAM-style graph cost models the paper integrates, with
//! gradients derived by hand (no autodiff dependency).

// Index-based loops are intentional in the numeric kernels: they mirror
// the mathematical notation and keep strides explicit.
#![allow(clippy::needless_range_loop)]
use crate::dataset::{Dataset, GraphSample, Sample};
use crate::trainer::{mse_log, CostModel, EarlyStopper, TrainOptions, TrainReport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A parameter tensor with Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Param {
    v: Vec<f64>,
    m: Vec<f64>,
    s: Vec<f64>,
}

impl Param {
    fn new(len: usize, scale: f64, rng: &mut ChaCha8Rng) -> Self {
        Param {
            v: (0..len)
                .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
                .collect(),
            m: vec![0.0; len],
            s: vec![0.0; len],
        }
    }

    fn zeros(len: usize) -> Self {
        Param {
            v: vec![0.0; len],
            m: vec![0.0; len],
            s: vec![0.0; len],
        }
    }

    fn adam(&mut self, grad: &[f64], lr: f64, t: f64) {
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let (c1, c2) = (1.0 - b1.powf(t), 1.0 - b2.powf(t));
        for i in 0..self.v.len() {
            let g = grad[i];
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * g;
            self.s[i] = b2 * self.s[i] + (1.0 - b2) * g * g;
            self.v[i] -= lr * (self.m[i] / c1) / ((self.s[i] / c2).sqrt() + eps);
        }
    }
}

/// One message-passing layer: W_self, W_in, W_out (out x in) and bias.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GnnLayer {
    ws: Param,
    wi: Param,
    wo: Param,
    b: Param,
    n_in: usize,
    n_out: usize,
}

impl GnnLayer {
    fn new(n_in: usize, n_out: usize, rng: &mut ChaCha8Rng) -> Self {
        let scale = (2.0 / n_in as f64).sqrt();
        GnnLayer {
            ws: Param::new(n_in * n_out, scale, rng),
            wi: Param::new(n_in * n_out, scale * 0.5, rng),
            wo: Param::new(n_in * n_out, scale * 0.5, rng),
            b: Param::zeros(n_out),
            n_in,
            n_out,
        }
    }
}

/// Zero-initialized gradient buffers mirroring a layer.
struct LayerGrad {
    ws: Vec<f64>,
    wi: Vec<f64>,
    wo: Vec<f64>,
    b: Vec<f64>,
}

impl LayerGrad {
    fn zeros(layer: &GnnLayer) -> Self {
        LayerGrad {
            ws: vec![0.0; layer.ws.v.len()],
            wi: vec![0.0; layer.wi.v.len()],
            wo: vec![0.0; layer.wo.v.len()],
            b: vec![0.0; layer.b.v.len()],
        }
    }
}

/// Stored forward state for one layer of one graph.
struct LayerTrace {
    /// Input activations per node.
    h_prev: Vec<Vec<f64>>,
    /// Mean of in-neighbour inputs per node.
    agg_in: Vec<Vec<f64>>,
    /// Mean of out-neighbour inputs per node.
    agg_out: Vec<Vec<f64>>,
    /// Post-ReLU outputs per node.
    h: Vec<Vec<f64>>,
}

/// The GNN cost model. Serializable once trained.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gnn {
    /// Hidden width per message-passing layer.
    pub hidden: usize,
    /// Number of message-passing layers.
    pub layers_count: usize,
    layers: Vec<GnnLayer>,
    head_w: Param,
    head_c: Param,
    feat_mean: Vec<f64>,
    feat_std: Vec<f64>,
    adam_t: u64,
}

impl Default for Gnn {
    fn default() -> Self {
        // Three message-passing rounds: the deepest synthetic PQPs (6-way
        // joins) span 8+ dataflow hops, and a third round measurably
        // improves held-out q-error over two (1.54 vs 1.80 median at
        // paper scale) at ~2x the fit time.
        Gnn::new(32, 3)
    }
}

impl Gnn {
    /// GNN with `hidden` units and `layers` message-passing rounds.
    pub fn new(hidden: usize, layers: usize) -> Self {
        Gnn {
            hidden,
            layers_count: layers.max(1),
            layers: Vec::new(),
            head_w: Param::zeros(0),
            head_c: Param::zeros(1),
            feat_mean: Vec::new(),
            feat_std: Vec::new(),
            adam_t: 0,
        }
    }

    fn normalize(&self, graph: &GraphSample) -> Vec<Vec<f64>> {
        graph
            .node_features
            .iter()
            .map(|f| {
                f.iter()
                    .zip(&self.feat_mean)
                    .zip(&self.feat_std)
                    .map(|((x, m), s)| (x - m) / s)
                    .collect()
            })
            .collect()
    }

    fn adjacency(graph: &GraphSample) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let n = graph.node_features.len();
        let mut ins = vec![Vec::new(); n];
        let mut outs = vec![Vec::new(); n];
        for &(from, to) in &graph.edges {
            if from < n && to < n {
                ins[to].push(from);
                outs[from].push(to);
            }
        }
        (ins, outs)
    }

    fn matvec(w: &[f64], n_out: usize, n_in: usize, x: &[f64], out: &mut [f64]) {
        for o in 0..n_out {
            let row = &w[o * n_in..(o + 1) * n_in];
            out[o] += row.iter().zip(x).map(|(a, b)| a * b).sum::<f64>();
        }
    }

    /// `x += W^T d`.
    fn tmatvec_add(w: &[f64], n_out: usize, n_in: usize, d: &[f64], x: &mut [f64]) {
        for o in 0..n_out {
            let row = &w[o * n_in..(o + 1) * n_in];
            let dv = d[o];
            for (xi, &wv) in x.iter_mut().zip(row) {
                *xi += wv * dv;
            }
        }
    }

    /// Forward pass over one graph; returns traces and the prediction (log
    /// space) plus the pooled readout vector.
    fn forward(&self, graph: &GraphSample) -> Option<(Vec<LayerTrace>, Vec<f64>, f64)> {
        let n = graph.node_features.len();
        if n == 0 || self.layers.is_empty() {
            return None;
        }
        let (ins, outs) = Self::adjacency(graph);
        let mut h = self.normalize(graph);
        let mut traces = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let mean_of = |nodes: &[usize]| -> Vec<f64> {
                let mut acc = vec![0.0; layer.n_in];
                if nodes.is_empty() {
                    return acc;
                }
                for &j in nodes {
                    for (a, &v) in acc.iter_mut().zip(&h[j]) {
                        *a += v;
                    }
                }
                let k = nodes.len() as f64;
                for a in &mut acc {
                    *a /= k;
                }
                acc
            };
            let agg_in: Vec<Vec<f64>> = (0..n).map(|i| mean_of(&ins[i])).collect();
            let agg_out: Vec<Vec<f64>> = (0..n).map(|i| mean_of(&outs[i])).collect();
            let mut next: Vec<Vec<f64>> = Vec::with_capacity(n);
            for i in 0..n {
                let mut z = layer.b.v.clone();
                Self::matvec(&layer.ws.v, layer.n_out, layer.n_in, &h[i], &mut z);
                Self::matvec(&layer.wi.v, layer.n_out, layer.n_in, &agg_in[i], &mut z);
                Self::matvec(&layer.wo.v, layer.n_out, layer.n_in, &agg_out[i], &mut z);
                for v in &mut z {
                    *v = v.max(0.0);
                }
                next.push(z);
            }
            traces.push(LayerTrace {
                h_prev: h,
                agg_in,
                agg_out,
                h: next.clone(),
            });
            h = next;
        }
        // Mean-pool readout.
        let mut g = vec![0.0; self.hidden];
        for hi in &h {
            for (gv, &v) in g.iter_mut().zip(hi) {
                *gv += v / n as f64;
            }
        }
        let y = g
            .iter()
            .zip(&self.head_w.v)
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + self.head_c.v[0];
        Some((traces, g, y))
    }

    /// Backward pass for one graph; accumulates gradients.
    #[allow(clippy::too_many_arguments)]
    fn backward(
        &self,
        graph: &GraphSample,
        traces: &[LayerTrace],
        pooled: &[f64],
        dy: f64,
        layer_grads: &mut [LayerGrad],
        head_w_grad: &mut [f64],
        head_c_grad: &mut [f64],
    ) {
        let n = graph.node_features.len();
        let (ins, outs) = Self::adjacency(graph);
        // Head gradients.
        for (g, &p) in head_w_grad.iter_mut().zip(pooled) {
            *g += dy * p;
        }
        head_c_grad[0] += dy;
        // dL/dh for the last layer's outputs.
        let mut dh: Vec<Vec<f64>> = (0..n)
            .map(|_| self.head_w.v.iter().map(|&w| dy * w / n as f64).collect())
            .collect();
        for (li, layer) in self.layers.iter().enumerate().rev() {
            let trace = &traces[li];
            let grad = &mut layer_grads[li];
            let mut dh_prev: Vec<Vec<f64>> = (0..n).map(|_| vec![0.0; layer.n_in]).collect();
            for i in 0..n {
                // ReLU gate.
                let dz: Vec<f64> = dh[i]
                    .iter()
                    .zip(&trace.h[i])
                    .map(|(&d, &a)| if a > 0.0 { d } else { 0.0 })
                    .collect();
                // Parameter gradients.
                for o in 0..layer.n_out {
                    let d = dz[o];
                    if d == 0.0 {
                        continue;
                    }
                    grad.b[o] += d;
                    let row_s = &mut grad.ws[o * layer.n_in..(o + 1) * layer.n_in];
                    for (g, &x) in row_s.iter_mut().zip(&trace.h_prev[i]) {
                        *g += d * x;
                    }
                    let row_i = &mut grad.wi[o * layer.n_in..(o + 1) * layer.n_in];
                    for (g, &x) in row_i.iter_mut().zip(&trace.agg_in[i]) {
                        *g += d * x;
                    }
                    let row_o = &mut grad.wo[o * layer.n_in..(o + 1) * layer.n_in];
                    for (g, &x) in row_o.iter_mut().zip(&trace.agg_out[i]) {
                        *g += d * x;
                    }
                }
                // Input gradients: self path.
                Self::tmatvec_add(&layer.ws.v, layer.n_out, layer.n_in, &dz, &mut dh_prev[i]);
                // In-aggregation path: agg_in_i averages in-neighbours j.
                if !ins[i].is_empty() {
                    let k = ins[i].len() as f64;
                    let mut d_agg = vec![0.0; layer.n_in];
                    Self::tmatvec_add(&layer.wi.v, layer.n_out, layer.n_in, &dz, &mut d_agg);
                    for &j in &ins[i] {
                        for (p, &v) in dh_prev[j].iter_mut().zip(&d_agg) {
                            *p += v / k;
                        }
                    }
                }
                // Out-aggregation path.
                if !outs[i].is_empty() {
                    let k = outs[i].len() as f64;
                    let mut d_agg = vec![0.0; layer.n_in];
                    Self::tmatvec_add(&layer.wo.v, layer.n_out, layer.n_in, &dz, &mut d_agg);
                    for &j in &outs[i] {
                        for (p, &v) in dh_prev[j].iter_mut().zip(&d_agg) {
                            *p += v / k;
                        }
                    }
                }
            }
            dh = dh_prev;
        }
    }

    fn graph_stats(data: &Dataset) -> (Vec<f64>, Vec<f64>) {
        let d = data
            .samples
            .iter()
            .find_map(|s| s.graph.node_features.first().map(Vec::len))
            .unwrap_or(0);
        let mut mean = vec![0.0; d];
        let mut count: f64 = 0.0;
        for s in &data.samples {
            for f in &s.graph.node_features {
                for (m, &x) in mean.iter_mut().zip(f) {
                    *m += x;
                }
                count += 1.0;
            }
        }
        for m in &mut mean {
            *m /= count.max(1.0);
        }
        let mut std = vec![0.0; d];
        for s in &data.samples {
            for f in &s.graph.node_features {
                for ((sd, &x), m) in std.iter_mut().zip(f).zip(&mean) {
                    *sd += (x - m) * (x - m);
                }
            }
        }
        for sd in &mut std {
            *sd = (*sd / count.max(1.0)).sqrt().max(1e-9);
        }
        (mean, std)
    }
}

impl CostModel for Gnn {
    fn name(&self) -> &str {
        "GNN"
    }

    fn fit(&mut self, data: &Dataset, opts: &TrainOptions) -> TrainReport {
        let start = Instant::now();
        let (train, val) = data.split(opts.val_fraction);
        let (mean, std) = Self::graph_stats(&train);
        let d_in = mean.len();
        self.feat_mean = mean;
        self.feat_std = std;
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
        self.layers = (0..self.layers_count)
            .map(|l| {
                let n_in = if l == 0 { d_in } else { self.hidden };
                GnnLayer::new(n_in, self.hidden, &mut rng)
            })
            .collect();
        self.head_w = Param::new(self.hidden, (1.0 / self.hidden as f64).sqrt(), &mut rng);
        self.head_c = Param::zeros(1);
        self.adam_t = 0;

        let ys = train.log_labels();
        let n = train.len();
        let batch = 16.min(n.max(1));
        let mut stopper = EarlyStopper::new(opts.patience);
        let mut order: Vec<usize> = (0..n).collect();
        let mut epochs = 0;
        let mut early = false;

        for _ in 0..opts.max_epochs {
            epochs += 1;
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(batch) {
                let mut layer_grads: Vec<LayerGrad> =
                    self.layers.iter().map(LayerGrad::zeros).collect();
                let mut head_w_grad = vec![0.0; self.head_w.v.len()];
                let mut head_c_grad = vec![0.0; 1];
                let mut used = 0.0;
                for &i in chunk {
                    let graph = &train.samples[i].graph;
                    let Some((traces, pooled, pred)) = self.forward(graph) else {
                        continue;
                    };
                    used += 1.0;
                    let dy = 2.0 * (pred - ys[i]);
                    self.backward(
                        graph,
                        &traces,
                        &pooled,
                        dy,
                        &mut layer_grads,
                        &mut head_w_grad,
                        &mut head_c_grad,
                    );
                }
                if used == 0.0 {
                    continue;
                }
                self.adam_t += 1;
                let t = self.adam_t as f64;
                let lr = opts.learning_rate;
                for (layer, grad) in self.layers.iter_mut().zip(&layer_grads) {
                    let scale = |g: &[f64]| -> Vec<f64> { g.iter().map(|x| x / used).collect() };
                    layer.ws.adam(&scale(&grad.ws), lr, t);
                    layer.wi.adam(&scale(&grad.wi), lr, t);
                    layer.wo.adam(&scale(&grad.wo), lr, t);
                    layer.b.adam(&scale(&grad.b), lr, t);
                }
                let hw: Vec<f64> = head_w_grad.iter().map(|x| x / used).collect();
                let hc: Vec<f64> = head_c_grad.iter().map(|x| x / used).collect();
                self.head_w.adam(&hw, lr, t);
                self.head_c.adam(&hc, lr, t);
            }
            let val_loss = mse_log(self, &val);
            if stopper.observe(val_loss) {
                early = true;
                break;
            }
        }

        TrainReport {
            train_time: start.elapsed(),
            epochs,
            early_stopped: early,
            train_loss: mse_log(self, &train),
            val_loss: mse_log(self, &val),
            train_examples: train.len(),
        }
    }

    fn predict(&self, sample: &Sample) -> f64 {
        match self.forward(&sample.graph) {
            Some((_, _, y)) => y.clamp(-20.0, 30.0).exp(),
            None => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GraphSample;

    /// Chain graphs whose latency depends on node count and a per-node
    /// "parallelism" feature — structure the GNN must exploit.
    fn graph_dataset(n: usize) -> Dataset {
        let samples = (0..n)
            .map(|i| {
                let chain_len = 2 + i % 4;
                let p = 1.0 + (i % 8) as f64;
                let node_features: Vec<Vec<f64>> = (0..chain_len)
                    .map(|k| vec![k as f64 / 4.0, p.ln(), (k == chain_len - 1) as u8 as f64])
                    .collect();
                let edges = (0..chain_len - 1).map(|k| (k, k + 1)).collect();
                // Latency grows with chain length, shrinks with parallelism.
                let log_lat = chain_len as f64 * 0.8 - p.ln() * 0.6;
                Sample {
                    flat: vec![chain_len as f64, p],
                    graph: GraphSample {
                        node_features,
                        edges,
                    },
                    latency_ms: log_lat.exp(),
                }
            })
            .collect();
        Dataset::new(samples)
    }

    #[test]
    fn learns_structure_dependent_latency() {
        let data = graph_dataset(240);
        let mut m = Gnn::new(16, 2);
        let opts = TrainOptions {
            max_epochs: 400,
            patience: 60,
            learning_rate: 5e-3,
            ..TrainOptions::default()
        };
        let report = m.fit(&data, &opts);
        assert!(
            report.val_loss < 0.1,
            "GNN should fit chain-structured costs, val loss {}",
            report.val_loss
        );
        let q = m.evaluate(&data).unwrap();
        assert!(q.median < 1.4, "median q-error {}", q.median);
    }

    #[test]
    fn gradient_check_single_example() {
        // Numerical vs analytic gradient on one weight.
        let data = graph_dataset(8);
        let mut m = Gnn::new(4, 1);
        let opts = TrainOptions {
            max_epochs: 1,
            ..TrainOptions::default()
        };
        m.fit(&data, &opts); // initialize weights/normalization
        let sample = &data.samples[0];
        let y = sample.latency_ms.ln();

        let loss = |m: &Gnn| -> f64 {
            let (_, _, pred) = m.forward(&sample.graph).unwrap();
            (pred - y) * (pred - y)
        };
        // Analytic gradient for layer 0 ws[0].
        let (traces, pooled, pred) = m.forward(&sample.graph).unwrap();
        let mut grads: Vec<LayerGrad> = m.layers.iter().map(LayerGrad::zeros).collect();
        let mut hw = vec![0.0; m.head_w.v.len()];
        let mut hc = vec![0.0; 1];
        m.backward(
            &sample.graph,
            &traces,
            &pooled,
            2.0 * (pred - y),
            &mut grads,
            &mut hw,
            &mut hc,
        );
        let analytic = grads[0].ws[0];
        // Numerical.
        let eps = 1e-5;
        let mut m2 = m;
        m2.layers[0].ws.v[0] += eps;
        let up = loss(&m2);
        m2.layers[0].ws.v[0] -= 2.0 * eps;
        let down = loss(&m2);
        let numeric = (up - down) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn empty_graph_predicts_fallback() {
        let mut m = Gnn::new(8, 2);
        let data = graph_dataset(20);
        m.fit(
            &data,
            &TrainOptions {
                max_epochs: 2,
                ..TrainOptions::default()
            },
        );
        let empty = Sample {
            flat: vec![],
            graph: GraphSample {
                node_features: vec![],
                edges: vec![],
            },
            latency_ms: 1.0,
        };
        assert_eq!(m.predict(&empty), 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = graph_dataset(40);
        let opts = TrainOptions {
            max_epochs: 10,
            ..TrainOptions::default()
        };
        let mut a = Gnn::new(8, 2);
        let mut b = Gnn::new(8, 2);
        a.fit(&data, &opts);
        b.fit(&data, &opts);
        assert_eq!(a.predict(&data.samples[5]), b.predict(&data.samples[5]));
    }

    #[test]
    fn out_of_bounds_edges_are_ignored() {
        let mut m = Gnn::new(4, 1);
        let data = graph_dataset(10);
        m.fit(
            &data,
            &TrainOptions {
                max_epochs: 2,
                ..TrainOptions::default()
            },
        );
        let mut s = data.samples[0].clone();
        s.graph.edges.push((0, 999));
        let p = m.predict(&s);
        assert!(p.is_finite() && p > 0.0);
    }
}
