//! # pdsp-ml
//!
//! Learned cost models for parallel stream processing, from scratch:
//!
//! * [`linreg::LinearRegression`] — ridge regression, closed form;
//! * [`mlp::Mlp`] — multi-layer perceptron with Adam and early stopping;
//! * [`forest::RandomForest`] — bagged CART regression trees;
//! * [`gnn::Gnn`] — message-passing graph neural network over the PQP DAG
//!   (ZeroTune-style encoding), hand-derived gradients.
//!
//! All four implement [`trainer::CostModel`] so the benchmark's ML manager
//! trains and evaluates them on identical data with identical metrics
//! (q-error, training time) — the paper's "fair comparison" requirement
//! (C3). Labels are end-to-end latencies; models fit `ln(latency)` and
//! report q-error on the raw scale.

pub mod dataset;
pub mod features;
pub mod forest;
pub mod gnn;
pub mod linalg;
pub mod linreg;
pub mod mlp;
pub mod qerror;
pub mod trainer;

pub use dataset::{Dataset, GraphSample, Sample};
pub use features::{featurize, SampleContext};
pub use forest::RandomForest;
pub use gnn::Gnn;
pub use linreg::LinearRegression;
pub use mlp::Mlp;
pub use qerror::{qerror, QErrorStats};
pub use trainer::{CostModel, TrainOptions, TrainReport};
