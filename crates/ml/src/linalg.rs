//! Minimal dense linear algebra: just what ridge regression and the neural
//! models need — row-major matrices, mat-vec/mat-mat products, and a
//! Cholesky solver for symmetric positive-definite systems.

// Index-based loops are intentional in the numeric kernels: they mirror
// the mathematical notation and keep strides explicit.
#![allow(clippy::needless_range_loop)]
/// Row-major dense matrix of f64.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` entries.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// From row-major data.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// In-place add.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }

    /// Matrix-vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            out[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Transposed matrix-vector product: `A^T x`.
    pub fn tmatvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let xr = x[r];
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * xr;
            }
        }
        out
    }

    /// `A^T A` (used by the normal equations).
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..n {
                    g.data[i * n + j] += ri * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                g.data[i * n + j] = g.data[j * n + i];
            }
        }
        g
    }

    /// Solve `A x = b` for symmetric positive-definite `A` via Cholesky.
    /// Returns `None` if the factorization fails (not SPD).
    pub fn cholesky_solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        // Factor A = L L^T.
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // Forward solve L y = b.
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        // Back solve L^T x = y.
        let mut x = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[k * n + i] * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        Some(x)
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        assert_eq!(a.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn tmatvec_is_transpose() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // A^T [1, 1] = column sums.
        assert_eq!(a.tmatvec(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gram_matches_manual() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 0.0, 1.0, 1.0, 0.0, 2.0]);
        let g = a.gram();
        assert_eq!(g.get(0, 0), 2.0);
        assert_eq!(g.get(0, 1), 1.0);
        assert_eq!(g.get(1, 0), 1.0);
        assert_eq!(g.get(1, 1), 5.0);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4, 2], [2, 3]], b = [10, 9] => x = [1.5, 2].
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let x = a.cholesky_solve(&[10.0, 9.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        assert!(a.cholesky_solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }
}
