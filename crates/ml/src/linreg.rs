//! Ridge linear regression on log-latency — the simplest cost model
//! (Ganapathi et al.'s approach in the paper's lineage).

use crate::dataset::{Dataset, Sample};
use crate::linalg::Matrix;
use crate::trainer::{mse_log, CostModel, TrainOptions, TrainReport};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Closed-form ridge regression: `w = (X^T X + lambda I)^-1 X^T y` with an
/// intercept column, fit in log-latency space.
///
/// Serializable: a trained model round-trips through serde (the ML
/// manager persists trained models in the document store).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearRegression {
    /// L2 regularization strength.
    pub lambda: f64,
    weights: Vec<f64>,
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Default for LinearRegression {
    fn default() -> Self {
        Self::new(1e-2)
    }
}

impl LinearRegression {
    /// Ridge model with regularization `lambda`.
    pub fn new(lambda: f64) -> Self {
        LinearRegression {
            lambda,
            weights: Vec::new(),
            mean: Vec::new(),
            std: Vec::new(),
        }
    }

    fn design_row(&self, flat: &[f64]) -> Vec<f64> {
        let mut row = Vec::with_capacity(flat.len() + 1);
        row.push(1.0);
        for ((x, m), s) in flat.iter().zip(&self.mean).zip(&self.std) {
            row.push((x - m) / s);
        }
        row
    }
}

impl CostModel for LinearRegression {
    fn name(&self) -> &str {
        "LR"
    }

    fn fit(&mut self, data: &Dataset, opts: &TrainOptions) -> TrainReport {
        let start = Instant::now();
        let (train, val) = data.split(opts.val_fraction);
        let (mean, std) = train.flat_stats();
        self.mean = mean;
        self.std = std;
        let d = train.flat_dim() + 1;
        let mut x = Matrix::zeros(train.len(), d);
        for (i, s) in train.samples.iter().enumerate() {
            for (j, v) in self.design_row(&s.flat).into_iter().enumerate() {
                x.set(i, j, v);
            }
        }
        let y = train.log_labels();
        let mut gram = x.gram();
        for i in 0..d {
            gram.add_at(i, i, self.lambda * train.len().max(1) as f64);
        }
        let xty = x.tmatvec(&y);
        self.weights = gram.cholesky_solve(&xty).unwrap_or_else(|| vec![0.0; d]);
        TrainReport {
            train_time: start.elapsed(),
            epochs: 1,
            early_stopped: false,
            train_loss: mse_log(self, &train),
            val_loss: mse_log(self, &val),
            train_examples: train.len(),
        }
    }

    fn predict(&self, sample: &Sample) -> f64 {
        if self.weights.is_empty() {
            return 1.0;
        }
        let row = self.design_row(&sample.flat);
        let log_pred: f64 = row.iter().zip(&self.weights).map(|(a, b)| a * b).sum();
        log_pred.clamp(-20.0, 30.0).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GraphSample;

    fn linear_dataset(n: usize) -> Dataset {
        // latency = exp(0.5 + 2*x0 - x1): exactly log-linear.
        let samples = (0..n)
            .map(|i| {
                let x0 = (i % 10) as f64 / 10.0;
                let x1 = (i % 7) as f64 / 7.0;
                Sample {
                    flat: vec![x0, x1],
                    graph: GraphSample {
                        node_features: vec![],
                        edges: vec![],
                    },
                    latency_ms: (0.5 + 2.0 * x0 - x1).exp(),
                }
            })
            .collect();
        Dataset::new(samples)
    }

    #[test]
    fn recovers_log_linear_relationship() {
        let data = linear_dataset(200);
        let mut m = LinearRegression::new(1e-6);
        let report = m.fit(&data, &TrainOptions::default());
        assert!(report.val_loss < 1e-3, "val loss {}", report.val_loss);
        let q = m.evaluate(&data).unwrap();
        assert!(q.median < 1.05, "median q-error {}", q.median);
    }

    #[test]
    fn unfit_model_predicts_fallback() {
        let m = LinearRegression::default();
        let s = linear_dataset(1).samples[0].clone();
        assert_eq!(m.predict(&s), 1.0);
    }

    #[test]
    fn predictions_are_positive_and_finite() {
        let data = linear_dataset(50);
        let mut m = LinearRegression::default();
        m.fit(&data, &TrainOptions::default());
        for s in &data.samples {
            let p = m.predict(s);
            assert!(p > 0.0 && p.is_finite());
        }
    }

    #[test]
    fn regularization_shrinks_extrapolation() {
        let data = linear_dataset(50);
        let mut strong = LinearRegression::new(100.0);
        let mut weak = LinearRegression::new(1e-9);
        strong.fit(&data, &TrainOptions::default());
        weak.fit(&data, &TrainOptions::default());
        let mut far = data.samples[0].clone();
        far.flat = vec![100.0, -100.0];
        // Heavy ridge keeps the extreme prediction closer to the mean label.
        let mean_label =
            (data.samples.iter().map(|s| s.latency_ms.ln()).sum::<f64>() / data.len() as f64).exp();
        let ds = (strong.predict(&far).ln() - mean_label.ln()).abs();
        let dw = (weak.predict(&far).ln() - mean_label.ln()).abs();
        assert!(ds < dw);
    }
}
