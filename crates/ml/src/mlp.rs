//! Multi-layer perceptron cost model: ReLU hidden layers, Adam, early
//! stopping on validation loss. Regresses log-latency on normalized flat
//! features.

// Index-based loops are intentional in the numeric kernels: they mirror
// the mathematical notation and keep strides explicit.
#![allow(clippy::needless_range_loop)]
use crate::dataset::{Dataset, Sample};
use crate::trainer::{mse_log, CostModel, EarlyStopper, TrainOptions, TrainReport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One dense layer's parameters and Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Layer {
    w: Vec<f64>, // out x in, row-major
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut ChaCha8Rng) -> Self {
        // He initialization.
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Layer {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut out = self.b.clone();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            out[o] += row.iter().zip(x).map(|(a, b)| a * b).sum::<f64>();
        }
        out
    }
}

/// Gradient accumulators for one layer.
#[derive(Debug, Clone)]
struct LayerGrad {
    dw: Vec<f64>,
    db: Vec<f64>,
}

/// The MLP cost model. Serializable once trained.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    layers: Vec<Layer>,
    mean: Vec<f64>,
    std: Vec<f64>,
    adam_t: u64,
}

impl Default for Mlp {
    fn default() -> Self {
        Mlp::new(vec![64, 32])
    }
}

impl Mlp {
    /// MLP with the given hidden widths.
    pub fn new(hidden: Vec<usize>) -> Self {
        Mlp {
            hidden,
            layers: Vec::new(),
            mean: Vec::new(),
            std: Vec::new(),
            adam_t: 0,
        }
    }

    fn normalize(&self, flat: &[f64]) -> Vec<f64> {
        flat.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((x, m), s)| (x - m) / s)
            .collect()
    }

    /// Forward pass storing activations (post-ReLU per layer, input first).
    fn forward_full(&self, x: &[f64]) -> (Vec<Vec<f64>>, f64) {
        let mut acts: Vec<Vec<f64>> = vec![x.to_vec()];
        let mut h = x.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward(&h);
            let last = li == self.layers.len() - 1;
            if !last {
                for v in &mut z {
                    *v = v.max(0.0);
                }
            }
            acts.push(z.clone());
            h = z;
        }
        let y = h[0];
        (acts, y)
    }

    /// Backward pass for one example; returns per-layer gradients.
    fn backward(&self, acts: &[Vec<f64>], dy: f64) -> Vec<LayerGrad> {
        let n = self.layers.len();
        let mut grads: Vec<LayerGrad> = self
            .layers
            .iter()
            .map(|l| LayerGrad {
                dw: vec![0.0; l.w.len()],
                db: vec![0.0; l.b.len()],
            })
            .collect();
        // Delta at the output layer (linear).
        let mut delta = vec![dy];
        for li in (0..n).rev() {
            let layer = &self.layers[li];
            let input = &acts[li];
            let grad = &mut grads[li];
            for o in 0..layer.n_out {
                let d = delta[o];
                grad.db[o] += d;
                let row = &mut grad.dw[o * layer.n_in..(o + 1) * layer.n_in];
                for (g, &xi) in row.iter_mut().zip(input) {
                    *g += d * xi;
                }
            }
            if li > 0 {
                // Propagate through the previous ReLU.
                let mut prev = vec![0.0; layer.n_in];
                for o in 0..layer.n_out {
                    let d = delta[o];
                    let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                    for (p, &w) in prev.iter_mut().zip(row) {
                        *p += d * w;
                    }
                }
                // ReLU derivative uses the stored post-activation (>0 iff
                // pre-activation > 0 for ReLU).
                for (p, &a) in prev.iter_mut().zip(&acts[li]) {
                    if a <= 0.0 {
                        *p = 0.0;
                    }
                }
                delta = prev;
            }
        }
        grads
    }

    fn adam_step(&mut self, grads: &[LayerGrad], lr: f64, batch: f64) {
        self.adam_t += 1;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let t = self.adam_t as f64;
        let corr1 = 1.0 - b1.powf(t);
        let corr2 = 1.0 - b2.powf(t);
        for (layer, grad) in self.layers.iter_mut().zip(grads) {
            for (i, &g) in grad.dw.iter().enumerate() {
                let g = g / batch;
                layer.mw[i] = b1 * layer.mw[i] + (1.0 - b1) * g;
                layer.vw[i] = b2 * layer.vw[i] + (1.0 - b2) * g * g;
                layer.w[i] -= lr * (layer.mw[i] / corr1) / ((layer.vw[i] / corr2).sqrt() + eps);
            }
            for (i, &g) in grad.db.iter().enumerate() {
                let g = g / batch;
                layer.mb[i] = b1 * layer.mb[i] + (1.0 - b1) * g;
                layer.vb[i] = b2 * layer.vb[i] + (1.0 - b2) * g * g;
                layer.b[i] -= lr * (layer.mb[i] / corr1) / ((layer.vb[i] / corr2).sqrt() + eps);
            }
        }
    }
}

impl CostModel for Mlp {
    fn name(&self) -> &str {
        "MLP"
    }

    fn fit(&mut self, data: &Dataset, opts: &TrainOptions) -> TrainReport {
        let start = Instant::now();
        let (train, val) = data.split(opts.val_fraction);
        let (mean, std) = train.flat_stats();
        self.mean = mean;
        self.std = std;
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
        // Build layers: input -> hidden* -> 1.
        let mut dims = vec![train.flat_dim()];
        dims.extend(&self.hidden);
        dims.push(1);
        self.layers = dims
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        self.adam_t = 0;

        let xs: Vec<Vec<f64>> = train
            .samples
            .iter()
            .map(|s| self.normalize(&s.flat))
            .collect();
        let ys = train.log_labels();
        let n = xs.len();
        let batch_size = 32.min(n.max(1));
        let mut stopper = EarlyStopper::new(opts.patience);
        let mut epochs = 0;
        let mut early = false;
        let mut order: Vec<usize> = (0..n).collect();

        for _epoch in 0..opts.max_epochs {
            epochs += 1;
            // Shuffle.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(batch_size) {
                let mut grads: Option<Vec<LayerGrad>> = None;
                for &i in chunk {
                    let (acts, pred) = self.forward_full(&xs[i]);
                    let dy = 2.0 * (pred - ys[i]);
                    let g = self.backward(&acts, dy);
                    match &mut grads {
                        None => grads = Some(g),
                        Some(acc) => {
                            for (a, b) in acc.iter_mut().zip(g) {
                                for (x, y) in a.dw.iter_mut().zip(b.dw) {
                                    *x += y;
                                }
                                for (x, y) in a.db.iter_mut().zip(b.db) {
                                    *x += y;
                                }
                            }
                        }
                    }
                }
                if let Some(g) = grads {
                    self.adam_step(&g, opts.learning_rate, chunk.len() as f64);
                }
            }
            let val_loss = mse_log(self, &val);
            if stopper.observe(val_loss) {
                early = true;
                break;
            }
        }

        TrainReport {
            train_time: start.elapsed(),
            epochs,
            early_stopped: early,
            train_loss: mse_log(self, &train),
            val_loss: mse_log(self, &val),
            train_examples: train.len(),
        }
    }

    fn predict(&self, sample: &Sample) -> f64 {
        if self.layers.is_empty() {
            return 1.0;
        }
        let x = self.normalize(&sample.flat);
        let (_, y) = self.forward_full(&x);
        y.clamp(-20.0, 30.0).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GraphSample;

    fn nonlinear_dataset(n: usize) -> Dataset {
        // latency = exp(sin-free nonlinearity): |x0 - 0.5| * 4 + x1^2.
        let samples = (0..n)
            .map(|i| {
                let x0 = (i % 13) as f64 / 13.0;
                let x1 = (i % 29) as f64 / 29.0;
                let log_lat = (x0 - 0.5).abs() * 4.0 + x1 * x1;
                Sample {
                    flat: vec![x0, x1],
                    graph: GraphSample {
                        node_features: vec![],
                        edges: vec![],
                    },
                    latency_ms: log_lat.exp(),
                }
            })
            .collect();
        Dataset::new(samples)
    }

    #[test]
    fn learns_nonlinear_function() {
        let data = nonlinear_dataset(400);
        let mut m = Mlp::new(vec![32, 16]);
        let opts = TrainOptions {
            max_epochs: 300,
            patience: 40,
            ..TrainOptions::default()
        };
        let report = m.fit(&data, &opts);
        assert!(
            report.val_loss < 0.05,
            "MLP should fit |x|-shaped target, val loss {}",
            report.val_loss
        );
        let q = m.evaluate(&data).unwrap();
        assert!(q.median < 1.3, "median q-error {}", q.median);
    }

    #[test]
    fn early_stopping_triggers_on_plateau() {
        let data = nonlinear_dataset(100);
        let mut m = Mlp::new(vec![8]);
        let opts = TrainOptions {
            max_epochs: 10_000,
            patience: 5,
            ..TrainOptions::default()
        };
        let report = m.fit(&data, &opts);
        assert!(report.epochs < 10_000, "must stop early");
        assert!(report.early_stopped);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = nonlinear_dataset(60);
        let opts = TrainOptions {
            max_epochs: 20,
            ..TrainOptions::default()
        };
        let mut a = Mlp::default();
        let mut b = Mlp::default();
        a.fit(&data, &opts);
        b.fit(&data, &opts);
        let s = &data.samples[7];
        assert_eq!(a.predict(s), b.predict(s));
    }

    #[test]
    fn unfit_model_predicts_fallback() {
        let m = Mlp::default();
        assert_eq!(m.predict(&nonlinear_dataset(1).samples[0]), 1.0);
    }
}
