//! Q-error: the standard accuracy metric for learned cost models
//! (Leis et al., "How good are query optimizers, really?"). For true cost
//! `c` and prediction `c'`, `q(c, c') = max(c/c', c'/c) >= 1`; 1 is a
//! perfect prediction.

use serde::{Deserialize, Serialize};

/// Q-error of one prediction. Non-positive inputs are clamped to a small
/// epsilon (latencies are strictly positive by construction).
pub fn qerror(truth: f64, prediction: f64) -> f64 {
    let t = truth.max(1e-9);
    let p = prediction.max(1e-9);
    (t / p).max(p / t)
}

/// Aggregate q-error statistics over an evaluation set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QErrorStats {
    /// Median q-error.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Geometric mean.
    pub gmean: f64,
    /// Number of evaluated pairs.
    pub count: usize,
}

impl QErrorStats {
    /// Compute over (truth, prediction) pairs; `None` when empty.
    pub fn compute(pairs: &[(f64, f64)]) -> Option<QErrorStats> {
        if pairs.is_empty() {
            return None;
        }
        let mut qs: Vec<f64> = pairs.iter().map(|&(t, p)| qerror(t, p)).collect();
        qs.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| -> f64 {
            let rank = (p * (qs.len() - 1) as f64).round() as usize;
            qs[rank.min(qs.len() - 1)]
        };
        let gmean = (qs.iter().map(|q| q.ln()).sum::<f64>() / qs.len() as f64).exp();
        Some(QErrorStats {
            median: pct(0.5),
            p90: pct(0.9),
            p99: pct(0.99),
            max: *qs.last().unwrap(),
            gmean,
            count: qs.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_one() {
        assert_eq!(qerror(5.0, 5.0), 1.0);
    }

    #[test]
    fn qerror_is_symmetric_in_ratio() {
        assert_eq!(qerror(10.0, 5.0), 2.0);
        assert_eq!(qerror(5.0, 10.0), 2.0);
    }

    #[test]
    fn qerror_is_at_least_one() {
        for (t, p) in [(1.0, 3.0), (100.0, 0.1), (7.0, 7.0)] {
            assert!(qerror(t, p) >= 1.0);
        }
    }

    #[test]
    fn non_positive_inputs_are_clamped() {
        assert!(qerror(0.0, 1.0).is_finite());
        assert!(qerror(1.0, -5.0).is_finite());
    }

    #[test]
    fn stats_on_known_set() {
        let pairs = [(10.0, 10.0), (10.0, 20.0), (10.0, 40.0)];
        let s = QErrorStats::compute(&pairs).unwrap();
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.count, 3);
        // gmean of {1, 2, 4} = 2.
        assert!((s.gmean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_set_is_none() {
        assert_eq!(QErrorStats::compute(&[]), None);
    }
}
