//! The uniform training interface: every cost model trains on the same
//! [`Dataset`] under the same [`TrainOptions`] and reports the same
//! [`TrainReport`] — the "fair comparison" plumbing of the paper's ML
//! manager (C3).

use crate::dataset::{Dataset, Sample};
use crate::qerror::QErrorStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Shared training options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Maximum epochs for iterative models.
    pub max_epochs: usize,
    /// Early stopping: halt when validation loss has not improved for this
    /// many consecutive epochs (the paper applies this uniformly).
    pub patience: usize,
    /// Validation fraction.
    pub val_fraction: f64,
    /// Learning rate for gradient-based models.
    pub learning_rate: f64,
    /// RNG seed (initialization, bagging).
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            max_epochs: 400,
            patience: 20,
            val_fraction: 0.2,
            learning_rate: 3e-3,
            seed: 17,
        }
    }
}

/// What a training run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Wall-clock training time.
    pub train_time: Duration,
    /// Epochs actually run (1 for closed-form / tree models).
    pub epochs: usize,
    /// Whether early stopping triggered.
    pub early_stopped: bool,
    /// Final training loss (MSE in log space).
    pub train_loss: f64,
    /// Final validation loss.
    pub val_loss: f64,
    /// Training examples used.
    pub train_examples: usize,
}

/// A learned cost model predicting end-to-end latency.
pub trait CostModel: Send {
    /// Model name for reports ("LR", "MLP", "RF", "GNN").
    fn name(&self) -> &str;

    /// Fit on the dataset.
    fn fit(&mut self, data: &Dataset, opts: &TrainOptions) -> TrainReport;

    /// Predict latency in ms for one sample (its label field is ignored).
    fn predict(&self, sample: &Sample) -> f64;

    /// Evaluate q-error over a dataset.
    fn evaluate(&self, data: &Dataset) -> Option<QErrorStats> {
        let pairs: Vec<(f64, f64)> = data
            .samples
            .iter()
            .map(|s| (s.latency_ms, self.predict(s)))
            .collect();
        QErrorStats::compute(&pairs)
    }
}

/// Early-stopping state machine shared by the iterative models.
#[derive(Debug, Clone)]
pub struct EarlyStopper {
    patience: usize,
    best: f64,
    since_best: usize,
}

impl EarlyStopper {
    /// Stopper with the given patience.
    pub fn new(patience: usize) -> Self {
        EarlyStopper {
            patience,
            best: f64::INFINITY,
            since_best: 0,
        }
    }

    /// Observe a validation loss; returns true when training should halt.
    pub fn observe(&mut self, val_loss: f64) -> bool {
        if val_loss < self.best - 1e-12 {
            self.best = val_loss;
            self.since_best = 0;
            false
        } else {
            self.since_best += 1;
            self.since_best >= self.patience
        }
    }

    /// Best validation loss seen.
    pub fn best(&self) -> f64 {
        self.best
    }
}

/// Mean squared error between predictions (log space) and log labels.
pub fn mse_log(model: &dyn CostModel, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.samples
        .iter()
        .map(|s| {
            let pred = model.predict(s).max(1e-6).ln();
            let truth = s.latency_ms.max(1e-6).ln();
            (pred - truth) * (pred - truth)
        })
        .sum::<f64>()
        / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_stopper_waits_for_patience() {
        let mut s = EarlyStopper::new(3);
        assert!(!s.observe(1.0));
        assert!(!s.observe(0.5)); // improvement resets
        assert!(!s.observe(0.6));
        assert!(!s.observe(0.6));
        assert!(s.observe(0.7)); // third non-improvement
        assert_eq!(s.best(), 0.5);
    }

    #[test]
    fn improvement_resets_counter() {
        let mut s = EarlyStopper::new(2);
        assert!(!s.observe(1.0));
        assert!(!s.observe(1.1));
        assert!(!s.observe(0.9)); // reset
        assert!(!s.observe(1.0));
        assert!(s.observe(1.0));
    }

    #[test]
    fn default_options_are_sane() {
        let o = TrainOptions::default();
        assert!(o.patience < o.max_epochs);
        assert!(o.val_fraction > 0.0 && o.val_fraction < 0.5);
    }
}
