//! Trained models round-trip through serde: predictions after
//! deserialization match the original exactly.

use pdsp_ml::dataset::{Dataset, GraphSample, Sample};
use pdsp_ml::trainer::{CostModel, TrainOptions};
use pdsp_ml::{Gnn, LinearRegression, Mlp, RandomForest};

fn dataset(n: usize) -> Dataset {
    let samples = (0..n)
        .map(|i| {
            let x0 = ((i * 37) % 101) as f64 / 100.0;
            let x1 = ((i * 53) % 103) as f64 / 100.0;
            let chain = 2 + i % 3;
            let node_features = (0..chain)
                .map(|k| vec![k as f64, x0, x1])
                .collect::<Vec<_>>();
            let edges = (0..chain - 1).map(|k| (k, k + 1)).collect();
            Sample {
                flat: vec![x0, x1, chain as f64],
                graph: GraphSample {
                    node_features,
                    edges,
                },
                latency_ms: (1.0 + 2.0 * x0 + x1 + chain as f64 * 0.3).exp(),
            }
        })
        .collect();
    Dataset::new(samples)
}

fn opts() -> TrainOptions {
    TrainOptions {
        max_epochs: 25,
        patience: 10,
        ..TrainOptions::default()
    }
}

fn assert_roundtrip<M>(mut model: M)
where
    M: CostModel + serde::Serialize + serde::de::DeserializeOwned,
{
    let data = dataset(80);
    model.fit(&data, &opts());
    let json = serde_json::to_string(&model).expect("serialize");
    let restored: M = serde_json::from_str(&json).expect("deserialize");
    for s in data.samples.iter().take(20) {
        assert_eq!(
            model.predict(s),
            restored.predict(s),
            "{} prediction must survive the round trip",
            model.name()
        );
    }
}

#[test]
fn linear_regression_roundtrips() {
    assert_roundtrip(LinearRegression::default());
}

#[test]
fn mlp_roundtrips() {
    assert_roundtrip(Mlp::default());
}

#[test]
fn random_forest_roundtrips() {
    assert_roundtrip(RandomForest::new(10, 8, 4));
}

#[test]
fn gnn_roundtrips() {
    assert_roundtrip(Gnn::new(8, 2));
}

#[test]
fn trained_model_persists_in_document_store() {
    // The full ML-manager persistence path: train -> store -> reload ->
    // identical predictions.
    use pdsp_store::{Filter, Store};
    let data = dataset(60);
    let mut model = LinearRegression::default();
    model.fit(&data, &opts());

    let store = Store::in_memory();
    store.with_mut("models", |c| {
        c.insert(serde_json::json!({
            "name": "LR",
            "params": serde_json::to_value(&model).unwrap(),
        }));
    });
    let restored: LinearRegression = store.with("models", |c| {
        let doc = c.find_one(&Filter::eq("name", "LR")).expect("stored");
        serde_json::from_value(doc.body["params"].clone()).expect("valid params")
    });
    let s = &data.samples[7];
    assert_eq!(model.predict(s), restored.predict(s));
}
