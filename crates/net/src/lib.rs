//! # pdsp-net — wire substrate for the distributed runtime
//!
//! The smallest set of networking primitives the process-per-worker runtime
//! needs, built on `std::net` only:
//!
//! * [`write_frame`] / [`read_frame`] — length-prefixed binary framing over
//!   any `Read`/`Write` pair. Frames are `u32` little-endian length followed
//!   by the payload; reads and writes go through `read_exact`/`write_all`,
//!   so partial reads and partial writes (short `write` returns, half-open
//!   peers) can never tear a frame. A clean EOF *between* frames is a normal
//!   end-of-stream (`Ok(None)`); an EOF *inside* a frame is an error — the
//!   signature of a peer that died mid-send.
//! * [`send_json`] / [`recv_json`] — serde JSON payloads over the framing.
//! * [`BackoffPolicy`] — the decorrelated-jitter backoff generator
//!   (SplitMix64-seeded, deterministic per seed) shared by every reconnect
//!   path and by the controller's sweep retries.
//! * [`connect_with_backoff`] — TCP dial that walks a backoff schedule
//!   until the peer accepts or the attempt budget runs out.
//! * [`LeaseTable`] — coordinator-side heartbeat leases: each renewal
//!   extends a worker's lease; a worker silent past the timeout is expired,
//!   which is how real process death (SIGKILL included) is detected without
//!   any in-band signal.
//! * [`measure_loopback_rtt`] — measured loopback TCP round-trip for a
//!   frame, used to cross-check the simulator's network cost constants
//!   against reality.
//! * [`epoch_ns_now`] / [`wire_now_ns`] — the shared wire clock: every
//!   process in a distributed run measures against one coordinator-chosen
//!   UNIX-epoch origin, so latency stamps and trace spans compose across
//!   workers.

#![warn(missing_docs)]

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Nanoseconds since the UNIX epoch — the raw stamp distributed runs use as
/// their shared clock origin.
pub fn epoch_ns_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Nanoseconds since `origin_ns` (a [`epoch_ns_now`] stamp chosen by the
/// coordinator and shipped in the deploy message). Every process in a
/// distributed run stamps latencies, spans, and wire-crossing times against
/// the same origin, so intervals composed across processes stay meaningful
/// up to host clock skew — the forwarder stamps a frame's wire-entry time
/// with this and the receiving acceptor stamps its arrival, splitting a
/// cross-worker hop into serialize and network spans.
pub fn wire_now_ns(origin_ns: u64) -> u64 {
    epoch_ns_now().saturating_sub(origin_ns)
}

/// Upper bound on a single frame; a length prefix beyond this is treated as
/// a corrupt stream rather than an allocation request.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// Write one length-prefixed frame. `write_all` underneath, so a short
/// write can never emit a torn frame — either the whole frame reaches the
/// kernel buffer or an error surfaces.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large for u32"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (peer closed after its last frame); an EOF in the middle
/// of a frame is an `UnexpectedEof` error — a half-open or killed peer.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    // Hand-rolled first read so EOF-before-any-byte is distinguishable
    // from EOF-inside-the-prefix.
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES} byte bound"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Serialize `msg` into the JSON payload [`send_json`] would frame, without
/// sending it. Pair with [`write_frame`] when serialization must happen
/// outside a stream lock: encoding a bulk message while holding the lock
/// starves every other sender sharing that stream (in the distributed
/// runtime, checkpoint parts starving heartbeats).
pub fn encode_json<T: Serialize>(msg: &T) -> io::Result<Vec<u8>> {
    serde_json::to_string(msg)
        .map(String::into_bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode: {e}")))
}

/// Serialize `msg` as JSON and send it as one frame.
pub fn send_json<W: Write, T: Serialize>(w: &mut W, msg: &T) -> io::Result<()> {
    let payload = encode_json(msg)?;
    write_frame(w, &payload)
}

/// Receive one frame and parse it as JSON. `Ok(None)` on clean EOF.
pub fn recv_json<R: Read, T: DeserializeOwned>(r: &mut R) -> io::Result<Option<T>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("frame not utf-8: {e}")))?;
    serde_json::from_str(text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("decode: {e}")))
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decorrelated-jitter backoff: each delay is drawn uniformly from
/// `[base, 3 * previous]` and capped at `cap`. A fixed backoff synchronizes
/// retries across concurrent clients — every connection that failed together
/// redials together, hammering the same endpoint in lockstep; decorrelating
/// the delays spreads the retry front out. Deterministic given `seed`, so a
/// recorded schedule replays exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Base (minimum) delay.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(250),
            seed: 0x5eed,
        }
    }
}

impl BackoffPolicy {
    /// The first `n` delays of the schedule.
    pub fn sequence(&self, n: usize) -> Vec<Duration> {
        self.iter().take(n).collect()
    }

    /// Infinite iterator over the schedule.
    pub fn iter(&self) -> BackoffIter {
        let base = self.base.as_nanos() as u64;
        BackoffIter {
            base,
            cap: (self.cap.as_nanos() as u64).max(base),
            state: self.seed,
            prev: base,
        }
    }
}

/// Iterator side of [`BackoffPolicy`]; see the policy docs for the
/// distribution.
#[derive(Debug, Clone)]
pub struct BackoffIter {
    base: u64,
    cap: u64,
    state: u64,
    prev: u64,
}

impl Iterator for BackoffIter {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        let upper = self.prev.saturating_mul(3).clamp(self.base, self.cap);
        let span = upper - self.base;
        let draw = if span == 0 {
            self.base
        } else {
            self.base + splitmix64(&mut self.state) % (span + 1)
        };
        self.prev = draw;
        Some(Duration::from_nanos(draw))
    }
}

/// Dial `addr`, retrying up to `max_attempts` times with the policy's
/// backoff schedule between attempts. Every reconnect path in the
/// distributed runtime goes through here, so a flapping endpoint always
/// sees bounded, seed-deterministic delays.
pub fn connect_with_backoff(
    addr: &str,
    policy: &BackoffPolicy,
    max_attempts: usize,
) -> io::Result<TcpStream> {
    let mut delays = policy.iter();
    let mut last_err = None;
    for attempt in 0..max_attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true).ok();
                return Ok(s);
            }
            Err(e) => last_err = Some(e),
        }
        if attempt + 1 < max_attempts {
            std::thread::sleep(delays.next().unwrap_or(policy.base));
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("no connection attempt made")))
}

/// Heartbeat leases keyed by worker id. Renewal extends the lease; a lease
/// not renewed within the timeout expires — the failure detector of the
/// distributed runtime (a SIGKILLed process cannot renew).
#[derive(Debug)]
pub struct LeaseTable {
    timeout: Duration,
    last: HashMap<u64, Instant>,
}

impl LeaseTable {
    /// Table where a lease lapses `timeout` after its last renewal.
    pub fn new(timeout: Duration) -> Self {
        LeaseTable {
            timeout,
            last: HashMap::new(),
        }
    }

    /// The configured lease timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Renew (or create) `id`'s lease as of now.
    pub fn renew(&mut self, id: u64) {
        self.last.insert(id, Instant::now());
    }

    /// Drop `id`'s lease (worker finished or already declared dead).
    pub fn remove(&mut self, id: u64) {
        self.last.remove(&id);
    }

    /// Ids whose lease has lapsed, with their silence duration.
    pub fn expired(&self) -> Vec<(u64, Duration)> {
        let now = Instant::now();
        let mut out: Vec<(u64, Duration)> = self
            .last
            .iter()
            .filter_map(|(&id, &at)| {
                let gap = now.duration_since(at);
                (gap > self.timeout).then_some((id, gap))
            })
            .collect();
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// Milliseconds since `id`'s last renewal, if it holds a lease.
    pub fn silence_ms(&self, id: u64) -> Option<u64> {
        self.last.get(&id).map(|at| at.elapsed().as_millis() as u64)
    }
}

/// Measure the mean loopback TCP round-trip time of `frames` echo frames of
/// `payload_len` bytes each. Used by the cluster crate to cross-check the
/// simulator's network cost constants against a real TCP stack.
pub fn measure_loopback_rtt(frames: usize, payload_len: usize) -> io::Result<Duration> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let echo = std::thread::spawn(move || -> io::Result<()> {
        let (mut conn, _) = listener.accept()?;
        conn.set_nodelay(true).ok();
        while let Some(frame) = read_frame(&mut conn)? {
            write_frame(&mut conn, &frame)?;
        }
        Ok(())
    });
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let payload = vec![0xABu8; payload_len];
    // Warm the connection and caches before timing.
    write_frame(&mut stream, &payload)?;
    read_frame(&mut stream)?;
    let start = Instant::now();
    for _ in 0..frames.max(1) {
        write_frame(&mut stream, &payload)?;
        read_frame(&mut stream)?;
    }
    let elapsed = start.elapsed();
    drop(stream);
    echo.join()
        .map_err(|_| io::Error::other("echo thread panicked"))??;
    Ok(elapsed / frames.max(1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![7u8; 1000]);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn eof_inside_a_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"doomed").unwrap();
        // Truncate mid-payload: a peer killed while sending.
        buf.truncate(buf.len() - 3);
        let mut r = Cursor::new(buf);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // And mid-prefix.
        let mut r = Cursor::new(vec![1u8, 0]);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let mut r = Cursor::new(buf);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Ping {
        seq: u64,
        tag: String,
    }

    #[test]
    fn json_frames_roundtrip() {
        let msg = Ping {
            seq: 42,
            tag: "hb".into(),
        };
        let mut buf = Vec::new();
        send_json(&mut buf, &msg).unwrap();
        let mut r = Cursor::new(buf);
        let got: Ping = recv_json(&mut r).unwrap().unwrap();
        assert_eq!(got, msg);
        assert!(recv_json::<_, Ping>(&mut r).unwrap().is_none());
    }

    #[test]
    fn backoff_is_bounded_and_seed_deterministic() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(50),
            seed: 0xfeed,
        };
        let a = policy.sequence(64);
        let b = policy.sequence(64);
        assert_eq!(a, b, "same seed replays the same schedule");
        for d in &a {
            assert!(
                *d >= policy.base && *d <= policy.cap,
                "delay {d:?} out of bounds"
            );
        }
        let other = BackoffPolicy {
            seed: 0xbeef,
            ..policy
        };
        assert_ne!(a, other.sequence(64), "different seeds decorrelate");
    }

    #[test]
    fn flapping_endpoint_sees_bounded_deterministic_delays() {
        // No listener at first: the dialer must walk its seeded schedule,
        // never sleeping beyond the cap, and succeed once the endpoint
        // finally comes up.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe); // port now refuses connections
        let policy = BackoffPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            seed: 7,
        };
        let schedule = policy.sequence(64);
        assert!(
            schedule.iter().all(|d| *d <= policy.cap),
            "strictly bounded"
        );

        let addr2 = addr.clone();
        let listener_thread = std::thread::spawn(move || {
            // The endpoint flaps: absent for a while, then accepts.
            std::thread::sleep(Duration::from_millis(30));
            let l = TcpListener::bind(&addr2).expect("rebind probe port");
            let _ = l.accept();
        });
        let start = Instant::now();
        let conn = connect_with_backoff(&addr, &policy, 1000);
        let waited = start.elapsed();
        assert!(conn.is_ok(), "dial succeeds once the endpoint returns");
        // Worst case: flap window + one full cap-length sleep + scheduling
        // slack. Far below what an unbounded exponential would allow.
        assert!(
            waited < Duration::from_secs(5),
            "bounded backoff kept the dial loop tight ({waited:?})"
        );
        listener_thread.join().unwrap();
    }

    #[test]
    fn connect_with_backoff_gives_up_after_budget() {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let policy = BackoffPolicy {
            base: Duration::from_micros(100),
            cap: Duration::from_micros(500),
            seed: 1,
        };
        assert!(connect_with_backoff(&addr, &policy, 3).is_err());
    }

    #[test]
    fn leases_expire_only_after_silence() {
        let mut t = LeaseTable::new(Duration::from_millis(40));
        t.renew(1);
        t.renew(2);
        assert!(t.expired().is_empty());
        std::thread::sleep(Duration::from_millis(15));
        t.renew(2); // worker 2 keeps heartbeating
        std::thread::sleep(Duration::from_millis(35));
        let expired = t.expired();
        assert_eq!(expired.len(), 1, "only the silent worker expires");
        assert_eq!(expired[0].0, 1);
        assert!(expired[0].1 > t.timeout());
        t.remove(1);
        assert!(t.expired().is_empty());
        assert!(t.silence_ms(2).is_some());
        assert!(t.silence_ms(1).is_none());
    }

    #[test]
    fn loopback_rtt_is_measurable() {
        let rtt = measure_loopback_rtt(16, 64).unwrap();
        assert!(rtt > Duration::ZERO);
        assert!(rtt < Duration::from_millis(100), "loopback rtt {rtt:?}");
    }

    #[test]
    fn wire_clock_is_monotone_against_its_origin() {
        let origin = epoch_ns_now();
        let a = wire_now_ns(origin);
        let b = wire_now_ns(origin);
        assert!(b >= a);
        // A fresh origin yields small offsets (well under an hour).
        assert!(a < 3_600_000_000_000_000);
        // An origin in the future saturates to zero instead of wrapping.
        assert_eq!(wire_now_ns(u64::MAX), 0);
    }
}
