//! A collection of JSON documents with auto-assigned ids.

use crate::query::Filter;
use serde_json::Value;
use std::io::{BufRead, Write};
use std::path::Path;

/// Document identifier within one collection.
pub type DocId = u64;

/// A stored document: id + JSON body.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Collection-unique id.
    pub id: DocId,
    /// JSON body.
    pub body: Value,
}

/// An ordered collection of documents.
#[derive(Debug, Default)]
pub struct Collection {
    docs: Vec<Document>,
    next_id: DocId,
}

impl Collection {
    /// Empty collection.
    pub fn new() -> Self {
        Collection::default()
    }

    /// Insert a document; returns its id.
    pub fn insert(&mut self, body: Value) -> DocId {
        let id = self.next_id;
        self.next_id += 1;
        self.docs.push(Document { id, body });
        id
    }

    /// Insert a serializable value.
    pub fn insert_ser<T: serde::Serialize>(&mut self, value: &T) -> serde_json::Result<DocId> {
        Ok(self.insert(serde_json::to_value(value)?))
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Fetch by id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.docs.iter().find(|d| d.id == id)
    }

    /// All documents matching the filter.
    pub fn find(&self, filter: &Filter) -> Vec<&Document> {
        self.docs
            .iter()
            .filter(|d| filter.matches(&d.body))
            .collect()
    }

    /// First match.
    pub fn find_one(&self, filter: &Filter) -> Option<&Document> {
        self.docs.iter().find(|d| filter.matches(&d.body))
    }

    /// Delete matching documents; returns how many were removed.
    pub fn delete(&mut self, filter: &Filter) -> usize {
        let before = self.docs.len();
        self.docs.retain(|d| !filter.matches(&d.body));
        before - self.docs.len()
    }

    /// Deserialize all matches into `T`, skipping documents that fail.
    pub fn find_as<T: serde::de::DeserializeOwned>(&self, filter: &Filter) -> Vec<T> {
        self.find(filter)
            .into_iter()
            .filter_map(|d| serde_json::from_value(d.body.clone()).ok())
            .collect()
    }

    /// Iterate over all documents.
    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.docs.iter()
    }

    /// Persist as JSON-lines (`{"_id": .., "body": ..}` per line).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        for d in &self.docs {
            let line = serde_json::json!({"_id": d.id, "body": d.body});
            writeln!(f, "{line}")?;
        }
        Ok(())
    }

    /// Load from JSON-lines; malformed lines are an error.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let f = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut docs = Vec::new();
        let mut next_id: DocId = 0;
        for line in f.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let v: Value = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            let id = v.get("_id").and_then(Value::as_u64).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "missing _id")
            })?;
            let body = v.get("body").cloned().unwrap_or(Value::Null);
            next_id = next_id.max(id + 1);
            docs.push(Document { id, body });
        }
        Ok(Collection { docs, next_id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut c = Collection::new();
        assert_eq!(c.insert(json!({"a": 1})), 0);
        assert_eq!(c.insert(json!({"a": 2})), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn find_filters_documents() {
        let mut c = Collection::new();
        for i in 0..10 {
            c.insert(json!({"i": i, "even": i % 2 == 0}));
        }
        assert_eq!(c.find(&Filter::eq("even", true)).len(), 5);
        assert_eq!(c.find(&Filter::Gt("i".into(), 6.5)).len(), 3);
    }

    #[test]
    fn delete_removes_matches() {
        let mut c = Collection::new();
        for i in 0..6 {
            c.insert(json!({"i": i}));
        }
        assert_eq!(c.delete(&Filter::Lt("i".into(), 3.0)), 3);
        assert_eq!(c.len(), 3);
        assert!(c.find_one(&Filter::eq("i", 0)).is_none());
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("pdsp_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("col.jsonl");
        let mut c = Collection::new();
        c.insert(json!({"x": 1}));
        c.insert(json!({"x": [1, 2, 3], "nested": {"y": "z"}}));
        c.save(&path).unwrap();
        let loaded = Collection::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(1).unwrap().body["nested"]["y"], "z");
        // Ids continue after load.
        let mut loaded = loaded;
        assert_eq!(loaded.insert(json!({})), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn typed_roundtrip() {
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Row {
            app: String,
            latency: f64,
        }
        let mut c = Collection::new();
        c.insert_ser(&Row {
            app: "WC".into(),
            latency: 4.2,
        })
        .unwrap();
        let rows: Vec<Row> = c.find_as(&Filter::eq("app", "WC"));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].latency, 4.2);
    }
}
