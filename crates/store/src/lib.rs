//! # pdsp-store
//!
//! Embedded document store — the MongoDB substitute in PDSP-Bench's
//! workflow (§2: "we allow to store the generated workload in a database,
//! e.g., MongoDB, that can be used for training ML models").
//!
//! Collections hold schemaless JSON documents with auto-assigned ids,
//! support field-equality filtering and simple comparison queries, and
//! persist as JSON-lines files so benchmark runs and training datasets
//! survive process restarts.

pub mod collection;
pub mod query;
pub mod store;

pub use collection::{Collection, DocId, Document};
pub use query::Filter;
pub use store::Store;
