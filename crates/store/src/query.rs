//! Document filters: a small MongoDB-style query language.

use serde_json::Value;

/// A predicate over documents.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches every document.
    All,
    /// `doc[field] == value` (dotted paths supported: "config.rate").
    Eq(String, Value),
    /// Numeric `doc[field] > value`.
    Gt(String, f64),
    /// Numeric `doc[field] < value`.
    Lt(String, f64),
    /// Conjunction.
    And(Vec<Filter>),
    /// Disjunction.
    Or(Vec<Filter>),
}

/// Resolve a dotted path within a JSON value.
pub fn lookup<'a>(doc: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = doc;
    for part in path.split('.') {
        cur = cur.get(part)?;
    }
    Some(cur)
}

impl Filter {
    /// Shorthand equality filter.
    pub fn eq(field: &str, value: impl Into<Value>) -> Self {
        Filter::Eq(field.to_string(), value.into())
    }

    /// Evaluate against a document.
    pub fn matches(&self, doc: &Value) -> bool {
        match self {
            Filter::All => true,
            Filter::Eq(path, v) => lookup(doc, path) == Some(v),
            Filter::Gt(path, x) => lookup(doc, path)
                .and_then(Value::as_f64)
                .is_some_and(|v| v > *x),
            Filter::Lt(path, x) => lookup(doc, path)
                .and_then(Value::as_f64)
                .is_some_and(|v| v < *x),
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc() -> Value {
        json!({"app": "WC", "latency": 42.5, "config": {"rate": 100000, "cluster": "m510"}})
    }

    #[test]
    fn eq_on_top_level_and_nested() {
        assert!(Filter::eq("app", "WC").matches(&doc()));
        assert!(!Filter::eq("app", "SA").matches(&doc()));
        assert!(Filter::eq("config.cluster", "m510").matches(&doc()));
    }

    #[test]
    fn numeric_comparisons() {
        assert!(Filter::Gt("latency".into(), 40.0).matches(&doc()));
        assert!(!Filter::Gt("latency".into(), 50.0).matches(&doc()));
        assert!(Filter::Lt("config.rate".into(), 1e6).matches(&doc()));
    }

    #[test]
    fn missing_fields_never_match() {
        assert!(!Filter::eq("nope", 1).matches(&doc()));
        assert!(!Filter::Gt("nope".into(), 0.0).matches(&doc()));
    }

    #[test]
    fn boolean_composition() {
        let f = Filter::And(vec![
            Filter::eq("app", "WC"),
            Filter::Or(vec![
                Filter::Gt("latency".into(), 100.0),
                Filter::Lt("latency".into(), 50.0),
            ]),
        ]);
        assert!(f.matches(&doc()));
    }

    #[test]
    fn all_matches_everything() {
        assert!(Filter::All.matches(&doc()));
        assert!(Filter::All.matches(&json!(null)));
    }
}
