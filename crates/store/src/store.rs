//! The top-level store: named collections with optional directory-backed
//! persistence, safe for concurrent use.

use crate::collection::Collection;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::PathBuf;

/// A named-collection store (one MongoDB "database").
#[derive(Default)]
pub struct Store {
    collections: RwLock<HashMap<String, Collection>>,
    dir: Option<PathBuf>,
}

impl Store {
    /// In-memory store.
    pub fn in_memory() -> Self {
        Store::default()
    }

    /// Directory-backed store: collections load from / save to
    /// `<dir>/<name>.jsonl`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut collections = HashMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "jsonl") {
                if let Some(name) = path.file_stem().and_then(|s| s.to_str()) {
                    collections.insert(name.to_string(), Collection::load(&path)?);
                }
            }
        }
        Ok(Store {
            collections: RwLock::new(collections),
            dir: Some(dir),
        })
    }

    /// Run `f` with read access to a collection (empty if absent).
    pub fn with<R>(&self, name: &str, f: impl FnOnce(&Collection) -> R) -> R {
        let guard = self.collections.read();
        match guard.get(name) {
            Some(c) => f(c),
            None => f(&Collection::new()),
        }
    }

    /// Run `f` with write access to a collection (created if absent).
    pub fn with_mut<R>(&self, name: &str, f: impl FnOnce(&mut Collection) -> R) -> R {
        let mut guard = self.collections.write();
        f(guard.entry(name.to_string()).or_default())
    }

    /// Collection names.
    pub fn collection_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.collections.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Persist all collections (no-op for in-memory stores).
    pub fn flush(&self) -> std::io::Result<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        let guard = self.collections.read();
        for (name, col) in guard.iter() {
            col.save(&dir.join(format!("{name}.jsonl")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Filter;
    use serde_json::json;

    #[test]
    fn collections_are_created_on_demand() {
        let s = Store::in_memory();
        s.with_mut("runs", |c| {
            c.insert(json!({"x": 1}));
        });
        assert_eq!(s.with("runs", |c| c.len()), 1);
        assert_eq!(s.with("missing", |c| c.len()), 0);
        assert_eq!(s.collection_names(), vec!["runs"]);
    }

    #[test]
    fn flush_and_reopen_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pdsp_store_{}", std::process::id()));
        let s = Store::open(&dir).unwrap();
        s.with_mut("workloads", |c| {
            c.insert(json!({"app": "SG", "rate": 100000}));
            c.insert(json!({"app": "WC", "rate": 1000}));
        });
        s.flush().unwrap();
        drop(s);
        let s2 = Store::open(&dir).unwrap();
        assert_eq!(s2.with("workloads", |c| c.len()), 2);
        let found = s2.with("workloads", |c| c.find(&Filter::eq("app", "SG")).len());
        assert_eq!(found, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_flush_is_noop() {
        let s = Store::in_memory();
        s.with_mut("a", |c| {
            c.insert(json!(1));
        });
        s.flush().unwrap();
    }
}
