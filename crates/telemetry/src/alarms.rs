//! Threshold alarms over instance snapshots.
//!
//! An [`AlarmMonitor`] is fed successive snapshot vectors (from the sampler
//! or at run end) and tracks which overload conditions are currently
//! *firing*: sustained pressure escalation, shed fraction above threshold,
//! or late fraction above threshold. Alarms resolve themselves when the
//! condition clears — for rate-style conditions (shed/late fraction) the
//! monitor differences consecutive evaluations so a burst early in a run
//! does not pin the alarm for its whole tail.
//!
//! The chaos bench uses the monitor as a pass/fail gate: a scenario that
//! *ends* with firing alarms never recovered from its hazard.

use crate::snapshot::InstanceSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What condition an alarm watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlarmKind {
    /// The instance sits at the shedding rung of the escalation ladder.
    Pressure,
    /// Shed fraction of input since the previous evaluation exceeds the
    /// configured threshold.
    ShedFraction,
    /// Late fraction of input since the previous evaluation exceeds the
    /// configured threshold.
    LateFraction,
    /// A distributed worker has been silent for more than the configured
    /// number of heartbeat intervals (its lease is about to expire or has
    /// expired). For this kind, `operator` is `"worker"` and `instance` is
    /// the worker id.
    HeartbeatGap,
    /// The dominant critical-path segment changed between consecutive
    /// sampler windows — the latency bottleneck moved. For this kind,
    /// `operator` is the *new* dominant segment label and `instance` is the
    /// window index in which the shift was observed.
    CriticalPathShift,
}

impl AlarmKind {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AlarmKind::Pressure => "pressure",
            AlarmKind::ShedFraction => "shed_fraction",
            AlarmKind::LateFraction => "late_fraction",
            AlarmKind::HeartbeatGap => "heartbeat_gap",
            AlarmKind::CriticalPathShift => "critical_path_shift",
        }
    }
}

/// Thresholds for raising alarms.
///
/// Defaults are deliberately tolerant: transient rung-1 batching is the
/// ladder working as designed and never alarms; only the shedding rung and
/// double-digit shed/late fractions do.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlarmConfig {
    /// Raise [`AlarmKind::Pressure`] when an instance's pressure gauge is at
    /// or above this rung (2 = shedding).
    pub pressure_level: u64,
    /// Raise [`AlarmKind::ShedFraction`] when shed / input over the last
    /// interval exceeds this fraction.
    pub shed_fraction: f64,
    /// Raise [`AlarmKind::LateFraction`] when late / input over the last
    /// interval exceeds this fraction.
    pub late_fraction: f64,
    /// Raise [`AlarmKind::HeartbeatGap`] when a worker has missed this many
    /// consecutive heartbeat intervals.
    pub heartbeat_gap_intervals: u64,
}

impl Default for AlarmConfig {
    fn default() -> Self {
        AlarmConfig {
            pressure_level: 2,
            shed_fraction: 0.10,
            late_fraction: 0.25,
            heartbeat_gap_intervals: 3,
        }
    }
}

/// One currently-firing alarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Watched condition.
    pub kind: AlarmKind,
    /// Logical operator name.
    pub operator: String,
    /// Parallel instance index.
    pub instance: usize,
    /// Observed value that crossed the threshold (rung for pressure,
    /// fraction for the rate alarms).
    pub value: f64,
    /// Configured threshold it crossed.
    pub threshold: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Baseline {
    tuples_in: u64,
    shed: u64,
    late: u64,
}

/// Stateful alarm evaluator (see module docs).
#[derive(Debug, Default)]
pub struct AlarmMonitor {
    config: AlarmConfig,
    baselines: HashMap<(String, usize), Baseline>,
    heartbeats: HashMap<usize, u64>,
    last_dominant: Option<String>,
    firing: Vec<Alarm>,
}

impl AlarmMonitor {
    /// Create a monitor with the given thresholds.
    pub fn new(config: AlarmConfig) -> Self {
        AlarmMonitor {
            config,
            baselines: HashMap::new(),
            heartbeats: HashMap::new(),
            last_dominant: None,
            firing: Vec::new(),
        }
    }

    /// Thresholds in effect.
    pub fn config(&self) -> &AlarmConfig {
        &self.config
    }

    /// Evaluate one snapshot vector; returns the alarms firing *now*.
    ///
    /// Rate alarms compare against the counters seen at the previous
    /// evaluation, so calling this once per sampling interval yields
    /// per-interval fractions. The first evaluation of an instance uses a
    /// zero baseline (whole-run fractions).
    pub fn evaluate(&mut self, snapshots: &[InstanceSnapshot]) -> &[Alarm] {
        let mut firing = Vec::new();
        for s in snapshots {
            let key = (s.operator.clone(), s.instance);
            let base = self.baselines.get(&key).copied().unwrap_or_default();
            let d_in = s.tuples_in.saturating_sub(base.tuples_in);
            let d_shed = s.shed_tuples.saturating_sub(base.shed);
            let d_late = s.late_tuples.saturating_sub(base.late);
            if s.pressure >= self.config.pressure_level {
                firing.push(Alarm {
                    kind: AlarmKind::Pressure,
                    operator: s.operator.clone(),
                    instance: s.instance,
                    value: s.pressure as f64,
                    threshold: self.config.pressure_level as f64,
                });
            }
            if d_in > 0 {
                let shed_frac = d_shed as f64 / d_in as f64;
                if shed_frac > self.config.shed_fraction {
                    firing.push(Alarm {
                        kind: AlarmKind::ShedFraction,
                        operator: s.operator.clone(),
                        instance: s.instance,
                        value: shed_frac,
                        threshold: self.config.shed_fraction,
                    });
                }
                let late_frac = d_late as f64 / d_in as f64;
                if late_frac > self.config.late_fraction {
                    firing.push(Alarm {
                        kind: AlarmKind::LateFraction,
                        operator: s.operator.clone(),
                        instance: s.instance,
                        value: late_frac,
                        threshold: self.config.late_fraction,
                    });
                }
            }
            self.baselines.insert(
                key,
                Baseline {
                    tuples_in: s.tuples_in,
                    shed: s.shed_tuples,
                    late: s.late_tuples,
                },
            );
        }
        // Heartbeat alarms are evaluated on their own cadence
        // ([`AlarmMonitor::evaluate_heartbeats`]); carry them over.
        firing.extend(
            self.firing
                .iter()
                .filter(|a| a.kind == AlarmKind::HeartbeatGap)
                .cloned(),
        );
        self.firing = firing;
        &self.firing
    }

    /// Record that `worker` heartbeated during heartbeat interval
    /// `interval` (intervals count up from run start; the coordinator
    /// derives them as `elapsed / heartbeat_period`).
    pub fn note_heartbeat(&mut self, worker: usize, interval: u64) {
        let e = self.heartbeats.entry(worker).or_insert(interval);
        *e = (*e).max(interval);
    }

    /// Forget `worker` (it finished cleanly or was already declared dead),
    /// resolving any heartbeat-gap alarm it raised.
    pub fn clear_heartbeat(&mut self, worker: usize) {
        self.heartbeats.remove(&worker);
        self.firing
            .retain(|a| !(a.kind == AlarmKind::HeartbeatGap && a.instance == worker));
    }

    /// Re-evaluate heartbeat gaps as of heartbeat interval
    /// `current_interval`: any noted worker silent for at least
    /// `heartbeat_gap_intervals` intervals raises [`AlarmKind::HeartbeatGap`]
    /// (with `operator == "worker"` and the worker id as `instance`).
    /// Returns all alarms firing now, heartbeat and snapshot alike.
    pub fn evaluate_heartbeats(&mut self, current_interval: u64) -> &[Alarm] {
        self.firing.retain(|a| a.kind != AlarmKind::HeartbeatGap);
        let mut workers: Vec<(usize, u64)> =
            self.heartbeats.iter().map(|(&w, &at)| (w, at)).collect();
        workers.sort_unstable_by_key(|&(w, _)| w);
        for (worker, last) in workers {
            let gap = current_interval.saturating_sub(last);
            if gap >= self.config.heartbeat_gap_intervals {
                self.firing.push(Alarm {
                    kind: AlarmKind::HeartbeatGap,
                    operator: "worker".into(),
                    instance: worker,
                    value: gap as f64,
                    threshold: self.config.heartbeat_gap_intervals as f64,
                });
            }
        }
        &self.firing
    }

    /// Observe the dominant critical-path segment of one sampler window
    /// (from [`crate::trace::window_dominants`]); raises
    /// [`AlarmKind::CriticalPathShift`] when it differs from the previous
    /// window's dominant. A shift alarm resolves itself at the next stable
    /// window. Returns all alarms firing now.
    pub fn observe_critical_path(&mut self, window: u64, dominant: &str) -> &[Alarm] {
        self.firing
            .retain(|a| a.kind != AlarmKind::CriticalPathShift);
        let shifted = self
            .last_dominant
            .as_deref()
            .is_some_and(|prev| prev != dominant);
        if shifted {
            self.firing.push(Alarm {
                kind: AlarmKind::CriticalPathShift,
                operator: dominant.to_string(),
                instance: window as usize,
                value: 1.0,
                threshold: 0.0,
            });
        }
        self.last_dominant = Some(dominant.to_string());
        &self.firing
    }

    /// Alarms firing as of the last [`AlarmMonitor::evaluate`] call.
    pub fn firing(&self) -> &[Alarm] {
        &self.firing
    }

    /// `true` when no alarm fired at the last evaluation.
    pub fn all_clear(&self) -> bool {
        self.firing.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(
        operator: &str,
        tuples_in: u64,
        shed: u64,
        late: u64,
        pressure: u64,
    ) -> InstanceSnapshot {
        InstanceSnapshot {
            operator: operator.into(),
            tuples_in,
            shed_tuples: shed,
            late_tuples: late,
            pressure,
            ..Default::default()
        }
    }

    #[test]
    fn quiet_run_never_alarms() {
        let mut m = AlarmMonitor::new(AlarmConfig::default());
        assert!(m.evaluate(&[snap("op", 1_000, 0, 0, 0)]).is_empty());
        assert!(m.evaluate(&[snap("op", 2_000, 0, 0, 1)]).is_empty());
        assert!(m.all_clear());
    }

    #[test]
    fn pressure_alarm_raises_and_resolves() {
        let mut m = AlarmMonitor::new(AlarmConfig::default());
        let firing = m.evaluate(&[snap("op", 100, 0, 0, 2)]);
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].kind, AlarmKind::Pressure);
        assert!(m.evaluate(&[snap("op", 200, 0, 0, 0)]).is_empty());
        assert!(m.all_clear());
    }

    #[test]
    fn rate_alarms_use_per_interval_deltas() {
        let mut m = AlarmMonitor::new(AlarmConfig::default());
        // Interval 1: 400 shed of 1000 in — fires.
        let firing = m.evaluate(&[snap("op", 1_000, 400, 0, 0)]);
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].kind, AlarmKind::ShedFraction);
        assert!(firing[0].value > 0.10);
        // Interval 2: 1000 more in, no new shed — the cumulative counter
        // alone would still read 40%/2=20%, but the delta is 0%.
        assert!(m.evaluate(&[snap("op", 2_000, 400, 0, 0)]).is_empty());
    }

    #[test]
    fn late_fraction_alarm() {
        let mut m = AlarmMonitor::new(AlarmConfig::default());
        let firing = m.evaluate(&[snap("win", 100, 0, 60, 0)]);
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].kind, AlarmKind::LateFraction);
        assert_eq!(firing[0].kind.label(), "late_fraction");
    }

    #[test]
    fn heartbeat_gap_raises_after_silence_and_resolves_on_renewal() {
        let mut m = AlarmMonitor::new(AlarmConfig::default());
        m.note_heartbeat(0, 1);
        m.note_heartbeat(1, 1);
        assert!(
            m.evaluate_heartbeats(2).is_empty(),
            "one interval of silence is fine"
        );
        m.note_heartbeat(1, 4);
        let firing = m.evaluate_heartbeats(4).to_vec();
        assert_eq!(firing.len(), 1, "only the silent worker alarms");
        assert_eq!(firing[0].kind, AlarmKind::HeartbeatGap);
        assert_eq!(firing[0].kind.label(), "heartbeat_gap");
        assert_eq!(firing[0].operator, "worker");
        assert_eq!(firing[0].instance, 0);
        assert_eq!(firing[0].value, 3.0);
        // The worker comes back: the alarm resolves.
        m.note_heartbeat(0, 5);
        assert!(m.evaluate_heartbeats(5).is_empty());
    }

    #[test]
    fn critical_path_shift_fires_on_dominance_change_only() {
        let mut m = AlarmMonitor::new(AlarmConfig::default());
        assert!(
            m.observe_critical_path(0, "op:count").is_empty(),
            "first window establishes the baseline"
        );
        assert!(m.observe_critical_path(1, "op:count").is_empty());
        let firing = m.observe_critical_path(2, "net:count→sink").to_vec();
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].kind, AlarmKind::CriticalPathShift);
        assert_eq!(firing[0].kind.label(), "critical_path_shift");
        assert_eq!(firing[0].operator, "net:count→sink");
        assert_eq!(firing[0].instance, 2);
        // Stable at the new dominant: resolves.
        assert!(m.observe_critical_path(3, "net:count→sink").is_empty());
        assert!(m.all_clear());
    }

    #[test]
    fn heartbeat_alarms_survive_snapshot_evaluation() {
        let mut m = AlarmMonitor::new(AlarmConfig::default());
        m.note_heartbeat(2, 0);
        assert_eq!(m.evaluate_heartbeats(10).len(), 1);
        // A snapshot pass must not silently resolve a dead worker.
        let firing = m.evaluate(&[snap("op", 100, 0, 0, 0)]);
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].kind, AlarmKind::HeartbeatGap);
        // Declaring the worker done clears it.
        m.clear_heartbeat(2);
        assert!(m.firing().is_empty());
        assert!(m.all_clear());
    }
}
