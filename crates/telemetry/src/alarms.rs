//! Threshold alarms over instance snapshots.
//!
//! An [`AlarmMonitor`] is fed successive snapshot vectors (from the sampler
//! or at run end) and tracks which overload conditions are currently
//! *firing*: sustained pressure escalation, shed fraction above threshold,
//! or late fraction above threshold. Alarms resolve themselves when the
//! condition clears — for rate-style conditions (shed/late fraction) the
//! monitor differences consecutive evaluations so a burst early in a run
//! does not pin the alarm for its whole tail.
//!
//! The chaos bench uses the monitor as a pass/fail gate: a scenario that
//! *ends* with firing alarms never recovered from its hazard.

use crate::snapshot::InstanceSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What condition an alarm watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlarmKind {
    /// The instance sits at the shedding rung of the escalation ladder.
    Pressure,
    /// Shed fraction of input since the previous evaluation exceeds the
    /// configured threshold.
    ShedFraction,
    /// Late fraction of input since the previous evaluation exceeds the
    /// configured threshold.
    LateFraction,
}

impl AlarmKind {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AlarmKind::Pressure => "pressure",
            AlarmKind::ShedFraction => "shed_fraction",
            AlarmKind::LateFraction => "late_fraction",
        }
    }
}

/// Thresholds for raising alarms.
///
/// Defaults are deliberately tolerant: transient rung-1 batching is the
/// ladder working as designed and never alarms; only the shedding rung and
/// double-digit shed/late fractions do.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlarmConfig {
    /// Raise [`AlarmKind::Pressure`] when an instance's pressure gauge is at
    /// or above this rung (2 = shedding).
    pub pressure_level: u64,
    /// Raise [`AlarmKind::ShedFraction`] when shed / input over the last
    /// interval exceeds this fraction.
    pub shed_fraction: f64,
    /// Raise [`AlarmKind::LateFraction`] when late / input over the last
    /// interval exceeds this fraction.
    pub late_fraction: f64,
}

impl Default for AlarmConfig {
    fn default() -> Self {
        AlarmConfig {
            pressure_level: 2,
            shed_fraction: 0.10,
            late_fraction: 0.25,
        }
    }
}

/// One currently-firing alarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Watched condition.
    pub kind: AlarmKind,
    /// Logical operator name.
    pub operator: String,
    /// Parallel instance index.
    pub instance: usize,
    /// Observed value that crossed the threshold (rung for pressure,
    /// fraction for the rate alarms).
    pub value: f64,
    /// Configured threshold it crossed.
    pub threshold: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Baseline {
    tuples_in: u64,
    shed: u64,
    late: u64,
}

/// Stateful alarm evaluator (see module docs).
#[derive(Debug, Default)]
pub struct AlarmMonitor {
    config: AlarmConfig,
    baselines: HashMap<(String, usize), Baseline>,
    firing: Vec<Alarm>,
}

impl AlarmMonitor {
    /// Create a monitor with the given thresholds.
    pub fn new(config: AlarmConfig) -> Self {
        AlarmMonitor {
            config,
            baselines: HashMap::new(),
            firing: Vec::new(),
        }
    }

    /// Thresholds in effect.
    pub fn config(&self) -> &AlarmConfig {
        &self.config
    }

    /// Evaluate one snapshot vector; returns the alarms firing *now*.
    ///
    /// Rate alarms compare against the counters seen at the previous
    /// evaluation, so calling this once per sampling interval yields
    /// per-interval fractions. The first evaluation of an instance uses a
    /// zero baseline (whole-run fractions).
    pub fn evaluate(&mut self, snapshots: &[InstanceSnapshot]) -> &[Alarm] {
        let mut firing = Vec::new();
        for s in snapshots {
            let key = (s.operator.clone(), s.instance);
            let base = self.baselines.get(&key).copied().unwrap_or_default();
            let d_in = s.tuples_in.saturating_sub(base.tuples_in);
            let d_shed = s.shed_tuples.saturating_sub(base.shed);
            let d_late = s.late_tuples.saturating_sub(base.late);
            if s.pressure >= self.config.pressure_level {
                firing.push(Alarm {
                    kind: AlarmKind::Pressure,
                    operator: s.operator.clone(),
                    instance: s.instance,
                    value: s.pressure as f64,
                    threshold: self.config.pressure_level as f64,
                });
            }
            if d_in > 0 {
                let shed_frac = d_shed as f64 / d_in as f64;
                if shed_frac > self.config.shed_fraction {
                    firing.push(Alarm {
                        kind: AlarmKind::ShedFraction,
                        operator: s.operator.clone(),
                        instance: s.instance,
                        value: shed_frac,
                        threshold: self.config.shed_fraction,
                    });
                }
                let late_frac = d_late as f64 / d_in as f64;
                if late_frac > self.config.late_fraction {
                    firing.push(Alarm {
                        kind: AlarmKind::LateFraction,
                        operator: s.operator.clone(),
                        instance: s.instance,
                        value: late_frac,
                        threshold: self.config.late_fraction,
                    });
                }
            }
            self.baselines.insert(
                key,
                Baseline {
                    tuples_in: s.tuples_in,
                    shed: s.shed_tuples,
                    late: s.late_tuples,
                },
            );
        }
        self.firing = firing;
        &self.firing
    }

    /// Alarms firing as of the last [`AlarmMonitor::evaluate`] call.
    pub fn firing(&self) -> &[Alarm] {
        &self.firing
    }

    /// `true` when no alarm fired at the last evaluation.
    pub fn all_clear(&self) -> bool {
        self.firing.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(
        operator: &str,
        tuples_in: u64,
        shed: u64,
        late: u64,
        pressure: u64,
    ) -> InstanceSnapshot {
        InstanceSnapshot {
            operator: operator.into(),
            tuples_in,
            shed_tuples: shed,
            late_tuples: late,
            pressure,
            ..Default::default()
        }
    }

    #[test]
    fn quiet_run_never_alarms() {
        let mut m = AlarmMonitor::new(AlarmConfig::default());
        assert!(m.evaluate(&[snap("op", 1_000, 0, 0, 0)]).is_empty());
        assert!(m.evaluate(&[snap("op", 2_000, 0, 0, 1)]).is_empty());
        assert!(m.all_clear());
    }

    #[test]
    fn pressure_alarm_raises_and_resolves() {
        let mut m = AlarmMonitor::new(AlarmConfig::default());
        let firing = m.evaluate(&[snap("op", 100, 0, 0, 2)]);
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].kind, AlarmKind::Pressure);
        assert!(m.evaluate(&[snap("op", 200, 0, 0, 0)]).is_empty());
        assert!(m.all_clear());
    }

    #[test]
    fn rate_alarms_use_per_interval_deltas() {
        let mut m = AlarmMonitor::new(AlarmConfig::default());
        // Interval 1: 400 shed of 1000 in — fires.
        let firing = m.evaluate(&[snap("op", 1_000, 400, 0, 0)]);
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].kind, AlarmKind::ShedFraction);
        assert!(firing[0].value > 0.10);
        // Interval 2: 1000 more in, no new shed — the cumulative counter
        // alone would still read 40%/2=20%, but the delta is 0%.
        assert!(m.evaluate(&[snap("op", 2_000, 400, 0, 0)]).is_empty());
    }

    #[test]
    fn late_fraction_alarm() {
        let mut m = AlarmMonitor::new(AlarmConfig::default());
        let firing = m.evaluate(&[snap("win", 100, 0, 60, 0)]);
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].kind, AlarmKind::LateFraction);
        assert_eq!(firing[0].kind.label(), "late_fraction");
    }
}
