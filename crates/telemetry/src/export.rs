//! Exporters: Prometheus text exposition and JSON-lines snapshots.
//!
//! Both formats are covered by golden tests; treat any change to metric
//! names, label sets (`app`, `operator`, `instance`, `node`), or JSON field
//! names as a breaking schema change.

use crate::alarms::Alarm;
use crate::snapshot::{InstanceSnapshot, TelemetryTimeline};
use serde::Serialize;

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn labels(s: &InstanceSnapshot) -> String {
    format!(
        "app=\"{}\",operator=\"{}\",instance=\"{}\",node=\"{}\"",
        escape_label(&s.app),
        escape_label(&s.operator),
        s.instance,
        escape_label(&s.node)
    )
}

struct Metric {
    name: &'static str,
    help: &'static str,
    kind: &'static str,
    value: fn(&InstanceSnapshot) -> Option<f64>,
}

const METRICS: &[Metric] = &[
    Metric {
        name: "pdsp_tuples_in_total",
        help: "Tuples received by the operator instance.",
        kind: "counter",
        value: |s| Some(s.tuples_in as f64),
    },
    Metric {
        name: "pdsp_tuples_out_total",
        help: "Tuples emitted by the operator instance.",
        kind: "counter",
        value: |s| Some(s.tuples_out as f64),
    },
    Metric {
        name: "pdsp_late_tuples_total",
        help: "Tuples dropped as too late for their window.",
        kind: "counter",
        value: |s| Some(s.late_tuples as f64),
    },
    Metric {
        name: "pdsp_window_fires_total",
        help: "Window panes fired.",
        kind: "counter",
        value: |s| Some(s.window_fires as f64),
    },
    Metric {
        name: "pdsp_queue_depth",
        help: "Input queue length at sample time (backpressure proxy).",
        kind: "gauge",
        value: |s| Some(s.queue_depth as f64),
    },
    Metric {
        name: "pdsp_queue_depth_max",
        help: "Maximum observed input queue length.",
        kind: "gauge",
        value: |s| Some(s.queue_depth_max as f64),
    },
    Metric {
        name: "pdsp_busy_fraction",
        help: "Fraction of observed time spent processing.",
        kind: "gauge",
        value: |s| Some(s.busy_fraction()),
    },
    Metric {
        name: "pdsp_checkpoints_total",
        help: "Checkpoints completed.",
        kind: "counter",
        value: |s| Some(s.checkpoints as f64),
    },
    Metric {
        name: "pdsp_checkpoint_seconds_total",
        help: "Time spent taking checkpoints.",
        kind: "counter",
        value: |s| Some(s.checkpoint_ns as f64 / 1e9),
    },
    Metric {
        name: "pdsp_restarts_total",
        help: "Times the instance was restarted by recovery.",
        kind: "counter",
        value: |s| Some(s.restarts as f64),
    },
    Metric {
        name: "pdsp_batches_out_total",
        help: "Outgoing micro-batches flushed downstream.",
        kind: "counter",
        value: |s| Some(s.batches_out as f64),
    },
    Metric {
        name: "pdsp_flush_size_total",
        help: "Batches flushed on reaching the size bound.",
        kind: "counter",
        value: |s| Some(s.flush_size as f64),
    },
    Metric {
        name: "pdsp_flush_linger_total",
        help: "Batches flushed by the idle-input linger timer.",
        kind: "counter",
        value: |s| Some(s.flush_linger as f64),
    },
    Metric {
        name: "pdsp_flush_marker_total",
        help: "Batches flushed ahead of a watermark or barrier.",
        kind: "counter",
        value: |s| Some(s.flush_marker as f64),
    },
    Metric {
        name: "pdsp_flush_eos_total",
        help: "Batches flushed by the end-of-stream drain.",
        kind: "counter",
        value: |s| Some(s.flush_eos as f64),
    },
    Metric {
        name: "pdsp_batch_size_p50",
        help: "Median flushed batch size in tuples.",
        kind: "gauge",
        value: |s| (!s.batch_size.is_empty()).then(|| s.batch_size.quantile(0.5) as f64),
    },
    Metric {
        name: "pdsp_latency_p50_ms",
        help: "Median end-to-end latency (sink instances).",
        kind: "gauge",
        value: |s| (!s.latency.is_empty()).then(|| s.latency.quantile(0.5) as f64 / 1e6),
    },
    Metric {
        name: "pdsp_latency_p99_ms",
        help: "99th-percentile end-to-end latency (sink instances).",
        kind: "gauge",
        value: |s| (!s.latency.is_empty()).then(|| s.latency.quantile(0.99) as f64 / 1e6),
    },
    Metric {
        name: "pdsp_shed_tuples_total",
        help: "Tuples dropped by the load-shedding rung of the overload ladder.",
        kind: "counter",
        value: |s| Some(s.shed_tuples as f64),
    },
    Metric {
        name: "pdsp_pressure",
        help: "Overload-escalation rung (0 normal, 1 batching, 2 shedding).",
        kind: "gauge",
        value: |s| Some(s.pressure as f64),
    },
];

/// Format a float the Prometheus way: integral values without a trailing
/// `.0`, everything else with full precision.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render a set of instance snapshots in Prometheus text exposition format.
pub fn prometheus_text(snapshots: &[InstanceSnapshot]) -> String {
    let mut out = String::new();
    for m in METRICS {
        let lines: Vec<String> = snapshots
            .iter()
            .filter_map(|s| {
                (m.value)(s).map(|v| format!("{}{{{}}} {}", m.name, labels(s), fmt_value(v)))
            })
            .collect();
        if lines.is_empty() {
            continue;
        }
        out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
        out.push_str(&format!("# TYPE {} {}\n", m.name, m.kind));
        for l in &lines {
            out.push_str(l);
            out.push('\n');
        }
    }
    out
}

/// Render currently-firing alarms in Prometheus text exposition format:
/// one `pdsp_alarm_firing` gauge per alarm, labelled by alarm kind plus the
/// usual `operator`/`instance` pair, with the observed value as the sample.
/// Heartbeat-gap alarms appear with `operator="worker"` and the worker id
/// as `instance`.
pub fn prometheus_alarms(alarms: &[Alarm]) -> String {
    if alarms.is_empty() {
        return String::new();
    }
    let mut out = String::from(
        "# HELP pdsp_alarm_firing Threshold alarm currently firing (value = observed).\n\
         # TYPE pdsp_alarm_firing gauge\n",
    );
    for a in alarms {
        out.push_str(&format!(
            "pdsp_alarm_firing{{kind=\"{}\",operator=\"{}\",instance=\"{}\"}} {}\n",
            a.kind.label(),
            escape_label(&a.operator),
            a.instance,
            fmt_value(a.value)
        ));
    }
    out
}

#[derive(Serialize)]
struct AlarmLine {
    kind: String,
    operator: String,
    instance: usize,
    value: f64,
    threshold: f64,
}

/// Render currently-firing alarms as JSON-lines: one self-describing object
/// per alarm, mirroring [`prometheus_alarms`]' label set.
pub fn json_alarm_lines(alarms: &[Alarm]) -> String {
    let mut out = String::new();
    for a in alarms {
        let line = AlarmLine {
            kind: a.kind.label().to_string(),
            operator: a.operator.clone(),
            instance: a.instance,
            value: a.value,
            threshold: a.threshold,
        };
        out.push_str(&serde_json::to_string(&line).expect("serialize alarm"));
        out.push('\n');
    }
    out
}

#[derive(Serialize)]
struct SampleLine {
    experiment_id: String,
    app: String,
    backend: String,
    t_ms: u64,
    instances: Vec<InstanceSnapshot>,
}

/// Render a timeline as JSON-lines: one object per sample, each carrying the
/// experiment id so lines remain self-describing when streams are merged.
pub fn json_lines(timeline: &TelemetryTimeline) -> String {
    let mut out = String::new();
    for s in &timeline.samples {
        let line = SampleLine {
            experiment_id: timeline.experiment_id.clone(),
            app: timeline.app.clone(),
            backend: timeline.backend.clone(),
            t_ms: s.t_ms,
            instances: s.instances.clone(),
        };
        out.push_str(&serde_json::to_string(&line).expect("serialize sample"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::TimelineSample;

    fn snap() -> InstanceSnapshot {
        InstanceSnapshot {
            app: "WC".into(),
            operator: "count".into(),
            instance: 3,
            node: "local".into(),
            tuples_in: 100,
            tuples_out: 90,
            ..Default::default()
        }
    }

    #[test]
    fn prometheus_labels_and_escaping() {
        let mut s = snap();
        s.operator = "we\"ird".into();
        let text = prometheus_text(&[s]);
        assert!(text.contains("operator=\"we\\\"ird\""));
        assert!(text.contains("pdsp_tuples_in_total{app=\"WC\",operator=\"we\\\"ird\",instance=\"3\",node=\"local\"} 100"));
    }

    #[test]
    fn latency_metrics_omitted_when_empty() {
        let text = prometheus_text(&[snap()]);
        assert!(!text.contains("pdsp_latency_p50_ms{"));
    }

    #[test]
    fn alarm_exporters_golden_labels() {
        use crate::alarms::AlarmKind;
        let alarms = vec![
            Alarm {
                kind: AlarmKind::HeartbeatGap,
                operator: "worker".into(),
                instance: 1,
                value: 4.0,
                threshold: 3.0,
            },
            Alarm {
                kind: AlarmKind::ShedFraction,
                operator: "count".into(),
                instance: 0,
                value: 0.5,
                threshold: 0.1,
            },
        ];
        let text = prometheus_alarms(&alarms);
        assert!(text.contains("# TYPE pdsp_alarm_firing gauge"));
        assert!(text.contains(
            "pdsp_alarm_firing{kind=\"heartbeat_gap\",operator=\"worker\",instance=\"1\"} 4"
        ));
        assert!(text.contains(
            "pdsp_alarm_firing{kind=\"shed_fraction\",operator=\"count\",instance=\"0\"} 0.5"
        ));
        let json = json_alarm_lines(&alarms);
        assert_eq!(json.lines().count(), 2);
        let first: serde_json::Value = serde_json::from_str(json.lines().next().unwrap()).unwrap();
        assert_eq!(first["kind"].as_str(), Some("heartbeat_gap"));
        assert_eq!(first["operator"].as_str(), Some("worker"));
        assert_eq!(first["instance"].as_f64(), Some(1.0));
        assert_eq!(first["threshold"].as_f64(), Some(3.0));
    }

    #[test]
    fn alarm_exporters_empty_input() {
        assert_eq!(prometheus_alarms(&[]), "");
        assert_eq!(json_alarm_lines(&[]), "");
    }

    #[test]
    fn json_lines_one_object_per_sample() {
        let t = TelemetryTimeline {
            experiment_id: "exp-9".into(),
            app: "WC".into(),
            backend: "simulated".into(),
            interval_ms: 100,
            samples: vec![
                TimelineSample {
                    t_ms: 100,
                    instances: vec![snap()],
                },
                TimelineSample {
                    t_ms: 200,
                    instances: vec![snap()],
                },
            ],
            events: vec![],
        };
        let out = json_lines(&t);
        assert_eq!(out.lines().count(), 2);
        for line in out.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["experiment_id"].as_str(), Some("exp-9"));
            assert!(v["instances"][0]["operator"].as_str().is_some());
        }
    }
}
