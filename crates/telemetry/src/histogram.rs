//! Fixed-bucket log-scale histogram for latency/duration distributions.
//!
//! The layout is HDR-style log-linear: values below [`SUB_BUCKETS`] get one
//! bucket each (exact), and every further power-of-two octave is split into
//! [`SUB_BUCKETS`] equal sub-buckets. With 16 sub-buckets per octave the
//! bucket width is at most 1/16 of the bucket's lower bound, so any quantile
//! read from the histogram is within **6.25% relative error** (plus one unit
//! of absolute error for tiny values) of the exact sample quantile.
//!
//! [`LogHistogram`] is the hot-path recorder: a dense array of relaxed
//! atomic counters that workers bump without coordination and a sampler
//! thread reads without stopping them. [`HistogramSnapshot`] is the frozen,
//! serializable view: sparse (only non-empty buckets), mergeable, and
//! queryable for quantiles. Merging snapshots is associative and lossless —
//! merging per-instance histograms gives exactly the histogram of the
//! combined stream.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of [`SUB_BUCKETS`].
const LOG_SUB: u32 = 4;
/// Sub-buckets per power-of-two octave (and the size of the exact region).
pub const SUB_BUCKETS: u64 = 1 << LOG_SUB;
/// Total bucket count covering the full `u64` range.
pub const NUM_BUCKETS: usize =
    (64 - LOG_SUB as usize) * SUB_BUCKETS as usize + SUB_BUCKETS as usize;

/// Maximum relative quantile error of the bucketing scheme (1/SUB_BUCKETS).
pub const QUANTILE_RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

/// Map a value to its bucket index.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let group = (exp - LOG_SUB + 1) as usize;
        group * SUB_BUCKETS as usize + ((v >> (exp - LOG_SUB)) - SUB_BUCKETS) as usize
    }
}

/// Lowest value mapping to bucket `idx`.
pub fn bucket_low(idx: usize) -> u64 {
    let sub = SUB_BUCKETS as usize;
    if idx < sub {
        idx as u64
    } else {
        let group = idx / sub;
        let m = (idx % sub) as u64;
        (SUB_BUCKETS + m) << (group - 1)
    }
}

/// Highest value mapping to bucket `idx`.
pub fn bucket_high(idx: usize) -> u64 {
    if idx + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_low(idx + 1) - 1
    }
}

/// Representative value reported for bucket `idx` (its midpoint).
fn bucket_mid(idx: usize) -> u64 {
    let lo = bucket_low(idx);
    lo + (bucket_high(idx) - lo) / 2
}

/// Concurrent fixed-bucket histogram. Recording is a relaxed atomic add;
/// there are no locks, so any thread may snapshot while workers record.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freeze the current contents into a sparse, serializable snapshot.
    ///
    /// Safe to call while other threads keep recording; the snapshot is a
    /// consistent-enough point-in-time view for monitoring (individual
    /// counters are read independently).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<Bucket> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some(Bucket { idx: idx as u32, n })
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucket {
    /// Bucket index (see [`bucket_low`]/[`bucket_high`] for the value range).
    pub idx: u32,
    /// Observation count in the bucket.
    pub n: u64,
}

/// Frozen histogram: sparse sorted buckets plus count/sum/min/max.
///
/// Unlike [`LogHistogram`] this is plain data — cheap to clone, serialize,
/// and merge. All fields are exact except quantiles, which are bucketed
/// (see [`QUANTILE_RELATIVE_ERROR`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Non-empty buckets, sorted by index.
    pub buckets: Vec<Bucket>,
}

impl HistogramSnapshot {
    /// Create an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Record one observation (single-threaded snapshot variant, used by the
    /// simulator and by re-based metrics collectors).
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v) as u32;
        match self.buckets.binary_search_by_key(&idx, |b| b.idx) {
            Ok(i) => self.buckets[i].n += 1,
            Err(i) => self.buckets.insert(i, Bucket { idx, n: 1 }),
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Merge another snapshot into this one. Merging is associative and
    /// commutative: any grouping of per-instance histograms yields the same
    /// combined histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(a), Some(b)) if a.idx == b.idx => {
                    merged.push(Bucket {
                        idx: a.idx,
                        n: a.n + b.n,
                    });
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a.idx < b.idx => {
                    merged.push(*a);
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    merged.push(*b);
                    j += 1;
                }
                (Some(a), None) => {
                    merged.push(*a);
                    i += 1;
                }
                (None, Some(b)) => {
                    merged.push(*b);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.buckets = merged;
    }

    /// Approximate quantile `q` in `[0, 1]`: the representative value of the
    /// bucket containing the rank-`ceil(q * count)` observation. Within
    /// [`QUANTILE_RELATIVE_ERROR`] relative error (plus 1 absolute) of the
    /// exact sample quantile; `min`/`max` are returned exactly for `q` at
    /// the extremes.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.n;
            if seen >= rank {
                return bucket_mid(b.idx as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Exact mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip_brackets_value() {
        for v in [0u64, 1, 15, 16, 17, 100, 1000, 65_535, 1 << 40, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v, "low({idx}) > {v}");
            assert!(v <= bucket_high(idx), "{v} > high({idx})");
        }
    }

    #[test]
    fn buckets_are_contiguous() {
        for idx in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_high(idx) + 1, bucket_low(idx + 1), "gap at {idx}");
        }
        assert_eq!(bucket_high(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let exact = ((q * SUB_BUCKETS as f64).ceil() as u64).clamp(1, SUB_BUCKETS) - 1;
            assert_eq!(s.quantile(q), exact, "q={q}");
        }
    }

    #[test]
    fn concurrent_snapshot_while_recording() {
        use std::sync::Arc;
        let h = Arc::new(LogHistogram::new());
        let writer = {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for v in 0..50_000u64 {
                    h.record(v);
                }
            })
        };
        let mut last = 0;
        while last < 50_000 {
            let s = h.snapshot();
            assert!(s.count >= last, "count went backwards");
            last = s.count;
        }
        writer.join().unwrap();
        assert_eq!(h.snapshot().count, 50_000);
    }

    #[test]
    fn snapshot_merge_matches_combined_recording() {
        let (a, b) = (LogHistogram::new(), LogHistogram::new());
        let combined = LogHistogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 37)
            } else {
                b.record(v * 37)
            }
            combined.record(v * 37);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn serde_roundtrip() {
        let h = LogHistogram::new();
        for v in [3u64, 900, 900, 12_345_678] {
            h.record(v);
        }
        let s = h.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
