//! # pdsp-telemetry — live runtime telemetry substrate
//!
//! Low-overhead observability for PDSP-Bench runs, mirroring the metric
//! pipeline the paper's controller scrapes from Flink:
//!
//! * [`registry`] — per-operator-instance shards of relaxed atomic
//!   counters/gauges ([`MetricsRegistry`], [`InstanceMetrics`]), readable
//!   live without stopping workers;
//! * [`histogram`] — fixed-bucket log-scale latency histogram
//!   ([`LogHistogram`]) with a mergeable, serializable
//!   [`HistogramSnapshot`] (documented 6.25% quantile error bound);
//! * [`sampler`] — a background thread snapshotting the registry at a
//!   configurable interval into a [`TelemetryTimeline`];
//! * [`snapshot`] — the timeline schema shared verbatim by the threaded
//!   runtime and the discrete-event simulator;
//! * [`recorder`] — a bounded ring-buffer [`FlightRecorder`] of structured
//!   events, dumped automatically when a run dies;
//! * [`export`] — Prometheus text exposition and JSON-lines exporters with
//!   golden-tested label sets (`app`, `operator`, `instance`, `node`);
//! * [`alarms`] — threshold alarms ([`AlarmMonitor`]) over pressure, shed
//!   fraction, and late fraction, used by the chaos bench as a recovery
//!   gate;
//! * [`trace`] — sampled distributed tracing: span schema, lock-free
//!   single-writer span rings, trace assembly, critical-path latency
//!   attribution, and Chrome trace-event export.
//!
//! This crate is a dependency leaf (no other `pdsp-*` crates), so the
//! engine, simulator, metrics, and controller can all share one schema.

#![warn(missing_docs)]

pub mod alarms;
pub mod export;
pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod sampler;
pub mod snapshot;
pub mod trace;

pub use alarms::{Alarm, AlarmConfig, AlarmKind, AlarmMonitor};
pub use export::{json_alarm_lines, json_lines, prometheus_alarms, prometheus_text};
pub use histogram::{HistogramSnapshot, LogHistogram, QUANTILE_RELATIVE_ERROR};
pub use recorder::{FlightEvent, FlightEventKind, FlightRecorder};
pub use registry::{FlushReason, InstanceMetrics, MetricsRegistry};
pub use sampler::{RunTelemetry, Sampler, TelemetryConfig};
pub use snapshot::{InstanceSnapshot, TelemetryTimeline, TimelineSample};
pub use trace::{
    assemble, attribute, attribution_report, chrome_trace_json, compare_report, critical_path,
    window_dominants, Attribution, CriticalPath, Segment, Span, SpanId, SpanKind, SpanRing,
    TraceBook, TraceContext, TraceId, TraceSet, TraceTree,
};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static EXPERIMENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Generate a process-unique experiment id (`exp-<unix_ms>-<seq>`), used to
/// key timelines and run records in the store.
pub fn new_experiment_id() -> String {
    let ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let seq = EXPERIMENT_SEQ.fetch_add(1, Ordering::Relaxed);
    format!("exp-{ms:x}-{seq}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_are_unique() {
        let a = new_experiment_id();
        let b = new_experiment_id();
        assert_ne!(a, b);
        assert!(a.starts_with("exp-"));
    }
}
