//! Bounded ring-buffer flight recorder for structured runtime events.
//!
//! The recorder keeps the last `capacity` events (older ones are dropped and
//! counted), so it is safe to leave on for arbitrarily long runs. When a run
//! dies with an `EngineError` or a worker panic, the runtime dumps the ring
//! so the events leading up to the failure are preserved.

use crate::trace::TraceContext;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightEventKind {
    /// A run began executing.
    RunStarted,
    /// A run finished (successfully or not).
    RunFinished,
    /// A source emitted a checkpoint barrier.
    BarrierInjected,
    /// An instance finished persisting its checkpoint snapshot.
    CheckpointCompleted,
    /// A window pane fired results downstream.
    PaneFired,
    /// A configured fault injector fired.
    FaultInjected,
    /// A worker thread panicked.
    WorkerPanicked,
    /// A worker thread returned an error.
    WorkerFailed,
    /// The supervisor began restoring from the last checkpoint.
    RecoveryStarted,
    /// The supervisor finished restarting the topology.
    RestartCompleted,
}

impl FlightEventKind {
    /// Stable lowercase-snake label used in dumps and exports.
    pub fn label(&self) -> &'static str {
        match self {
            FlightEventKind::RunStarted => "run_started",
            FlightEventKind::RunFinished => "run_finished",
            FlightEventKind::BarrierInjected => "barrier_injected",
            FlightEventKind::CheckpointCompleted => "checkpoint_completed",
            FlightEventKind::PaneFired => "pane_fired",
            FlightEventKind::FaultInjected => "fault_injected",
            FlightEventKind::WorkerPanicked => "worker_panicked",
            FlightEventKind::WorkerFailed => "worker_failed",
            FlightEventKind::RecoveryStarted => "recovery_started",
            FlightEventKind::RestartCompleted => "restart_completed",
        }
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Milliseconds since the recorder was created.
    pub t_ms: u64,
    /// Event category.
    pub kind: FlightEventKind,
    /// Logical plan node the event belongs to (0 when not applicable).
    pub node: usize,
    /// Parallel instance index (0 when not applicable).
    pub instance: usize,
    /// Free-form context (cause, barrier id, pane key, ...).
    pub detail: String,
    /// Trace context active on the recording thread when tracing was on,
    /// so crash dumps correlate with assembled traces.
    #[serde(default)]
    pub trace: Option<TraceContext>,
}

/// Bounded, thread-safe event ring.
#[derive(Debug)]
pub struct FlightRecorder {
    start: Instant,
    capacity: usize,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<FlightEvent>>,
}

impl FlightRecorder {
    /// Ring capacity used by [`FlightRecorder::default`].
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Create a recorder retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            start: Instant::now(),
            capacity,
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn record(
        &self,
        kind: FlightEventKind,
        node: usize,
        instance: usize,
        detail: impl Into<String>,
    ) {
        self.record_traced(kind, node, instance, detail, None)
    }

    /// Like [`FlightRecorder::record`] with the active trace context of the
    /// recording thread attached (shown in dumps as `trace=<id>:<span>`).
    pub fn record_traced(
        &self,
        kind: FlightEventKind,
        node: usize,
        instance: usize,
        detail: impl Into<String>,
        trace: Option<TraceContext>,
    ) {
        let ev = FlightEvent {
            t_ms: self.start.elapsed().as_millis() as u64,
            kind,
            node,
            instance,
            detail: detail.into(),
            trace,
        };
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Render the ring as a human-readable trace.
    pub fn dump(&self, reason: &str) -> String {
        let events = self.events();
        let mut out = format!(
            "== flight recorder dump ({reason}; {} events, {} dropped) ==\n",
            events.len(),
            self.dropped()
        );
        for ev in &events {
            let trace = match &ev.trace {
                Some(c) => format!(" trace={}:{}", c.trace.0, c.parent.0),
                None => String::new(),
            };
            out.push_str(&format!(
                "[{:>8.3}s] {:22} node={} instance={} {}{}\n",
                ev.t_ms as f64 / 1000.0,
                ev.kind.label(),
                ev.node,
                ev.instance,
                ev.detail,
                trace
            ));
        }
        out
    }

    /// Dump the ring to stderr (used on `EngineError`/panic paths).
    pub fn dump_to_stderr(&self, reason: &str) {
        eprintln!("{}", self.dump(reason));
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let r = FlightRecorder::new(3);
        for i in 0..5 {
            r.record(FlightEventKind::PaneFired, 0, i, format!("pane {i}"));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(evs[0].detail, "pane 2");
        assert_eq!(evs[2].detail, "pane 4");
    }

    #[test]
    fn dump_contains_events_and_reason() {
        let r = FlightRecorder::new(8);
        r.record(FlightEventKind::FaultInjected, 2, 1, "injected crash");
        let d = r.dump("worker panicked");
        assert!(d.contains("worker panicked"));
        assert!(d.contains("fault_injected"));
        assert!(d.contains("node=2 instance=1"));
    }

    #[test]
    fn dump_lines_carry_active_trace_ids() {
        use crate::trace::{SpanId, TraceId};
        let r = FlightRecorder::new(8);
        r.record_traced(
            FlightEventKind::WorkerFailed,
            1,
            0,
            "boom",
            Some(TraceContext {
                trace: TraceId(42),
                parent: SpanId(7),
            }),
        );
        let d = r.dump("test");
        assert!(d.contains("trace=42:7"), "{d}");
        // Untraced events keep the legacy line shape.
        r.record(FlightEventKind::RunFinished, 0, 0, "done");
        assert!(!r.dump("test").lines().last().unwrap().contains("trace="));
    }

    #[test]
    fn event_serde_roundtrip() {
        let r = FlightRecorder::new(8);
        r.record(FlightEventKind::BarrierInjected, 0, 0, "barrier 7");
        let evs = r.events();
        let json = serde_json::to_string(&evs).unwrap();
        let back: Vec<FlightEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(evs, back);
    }
}
