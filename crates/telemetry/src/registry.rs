//! Per-operator-instance metrics registry.
//!
//! The registry is sharded by construction: each instance owns an
//! [`InstanceMetrics`] shard of relaxed atomic counters behind its own
//! `Arc`, so workers on different instances never contend on a shared cache
//! line for the common counters, and a sampler thread can read every shard
//! live without stopping anyone.

use crate::histogram::LogHistogram;
use crate::snapshot::InstanceSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Why a sender flushed a pending micro-batch downstream.
///
/// The engine's batched data plane accumulates tuples into per-destination
/// builders and flushes them on one of four triggers; counting the triggers
/// separately makes it visible whether a run is size-bound (healthy, high
/// throughput), linger-bound (input too slow to fill batches), or dominated
/// by marker traffic (watermark/barrier interval smaller than the batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The builder reached the configured maximum batch size.
    Size,
    /// The flush timer fired while tuples were pending (idle input).
    Linger,
    /// A watermark or checkpoint barrier had to be sent in channel order.
    Marker,
    /// End of stream: final drain of every pending builder.
    Eos,
}

/// Atomic counter shard for one operator instance.
///
/// All mutators use relaxed ordering — telemetry needs monotonic counters,
/// not cross-counter consistency — which keeps the hot-path cost to a single
/// uncontended atomic add.
#[derive(Debug)]
pub struct InstanceMetrics {
    /// Logical operator name.
    pub operator: String,
    /// Parallel instance index within the operator.
    pub instance: usize,
    /// Hosting node label.
    pub node: String,
    tuples_in: AtomicU64,
    tuples_out: AtomicU64,
    late_tuples: AtomicU64,
    window_fires: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_max: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_ns: AtomicU64,
    restarts: AtomicU64,
    batches_out: AtomicU64,
    flush_size: AtomicU64,
    flush_linger: AtomicU64,
    flush_marker: AtomicU64,
    flush_eos: AtomicU64,
    shed_tuples: AtomicU64,
    pressure: AtomicU64,
    latency: LogHistogram,
    batch_size: LogHistogram,
}

impl InstanceMetrics {
    /// Create a zeroed shard labeled with its operator, instance, and node.
    pub fn new(operator: impl Into<String>, instance: usize, node: impl Into<String>) -> Self {
        InstanceMetrics {
            operator: operator.into(),
            instance,
            node: node.into(),
            tuples_in: AtomicU64::new(0),
            tuples_out: AtomicU64::new(0),
            late_tuples: AtomicU64::new(0),
            window_fires: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_depth_max: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            idle_ns: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            checkpoint_ns: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            batches_out: AtomicU64::new(0),
            flush_size: AtomicU64::new(0),
            flush_linger: AtomicU64::new(0),
            flush_marker: AtomicU64::new(0),
            flush_eos: AtomicU64::new(0),
            shed_tuples: AtomicU64::new(0),
            pressure: AtomicU64::new(0),
            latency: LogHistogram::new(),
            batch_size: LogHistogram::new(),
        }
    }

    /// Add `n` to the consumed-tuple counter.
    #[inline]
    pub fn add_tuples_in(&self, n: u64) {
        self.tuples_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` to the emitted-tuple counter.
    #[inline]
    pub fn add_tuples_out(&self, n: u64) {
        self.tuples_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the late-tuple count (windowers track it cumulatively).
    #[inline]
    pub fn set_late_tuples(&self, n: u64) {
        self.late_tuples.store(n, Ordering::Relaxed);
    }

    /// Overwrite the fired-pane count (windowers track it cumulatively).
    #[inline]
    pub fn set_window_fires(&self, n: u64) {
        self.window_fires.store(n, Ordering::Relaxed);
    }

    /// Record the current input queue length (backpressure proxy).
    #[inline]
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Add time spent processing frames.
    #[inline]
    pub fn add_busy_ns(&self, ns: u64) {
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Add time spent waiting for input.
    #[inline]
    pub fn add_idle_ns(&self, ns: u64) {
        self.idle_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one completed checkpoint and its duration.
    #[inline]
    pub fn record_checkpoint(&self, ns: u64) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Count one recovery restart of this instance.
    #[inline]
    pub fn add_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n` to the shed-tuple counter (tuples dropped by the load-shedding
    /// rung of the overload ladder; always counted, never silent).
    #[inline]
    pub fn add_shed(&self, n: u64) {
        self.shed_tuples.fetch_add(n, Ordering::Relaxed);
    }

    /// Record the current overload-escalation rung (0 = normal,
    /// 1 = adaptive batching, 2 = shedding). Gauge semantics: overwrite.
    #[inline]
    pub fn set_pressure(&self, level: u64) {
        self.pressure.store(level, Ordering::Relaxed);
    }

    /// Record an end-to-end latency observation in nanoseconds.
    #[inline]
    pub fn record_latency_ns(&self, ns: u64) {
        self.latency.record(ns);
    }

    /// Record one flushed outgoing micro-batch: its size (tuples) feeds the
    /// batch-size histogram and its trigger the per-reason flush counters.
    #[inline]
    pub fn record_batch(&self, tuples: u64, reason: FlushReason) {
        self.batches_out.fetch_add(1, Ordering::Relaxed);
        self.batch_size.record(tuples);
        let counter = match reason {
            FlushReason::Size => &self.flush_size,
            FlushReason::Linger => &self.flush_linger,
            FlushReason::Marker => &self.flush_marker,
            FlushReason::Eos => &self.flush_eos,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Micro-batches flushed downstream so far.
    pub fn batches_out(&self) -> u64 {
        self.batches_out.load(Ordering::Relaxed)
    }

    /// Tuples consumed so far.
    pub fn tuples_in(&self) -> u64 {
        self.tuples_in.load(Ordering::Relaxed)
    }

    /// Tuples emitted so far.
    pub fn tuples_out(&self) -> u64 {
        self.tuples_out.load(Ordering::Relaxed)
    }

    /// Tuples shed so far.
    pub fn shed_tuples(&self) -> u64 {
        self.shed_tuples.load(Ordering::Relaxed)
    }

    /// Freeze this shard into the shared snapshot schema.
    pub fn snapshot(&self, app: &str) -> InstanceSnapshot {
        InstanceSnapshot {
            app: app.to_string(),
            operator: self.operator.clone(),
            instance: self.instance,
            node: self.node.clone(),
            tuples_in: self.tuples_in.load(Ordering::Relaxed),
            tuples_out: self.tuples_out.load(Ordering::Relaxed),
            late_tuples: self.late_tuples.load(Ordering::Relaxed),
            window_fires: self.window_fires.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_max: self.queue_depth_max.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            idle_ns: self.idle_ns.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_ns: self.checkpoint_ns.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            batches_out: self.batches_out.load(Ordering::Relaxed),
            flush_size: self.flush_size.load(Ordering::Relaxed),
            flush_linger: self.flush_linger.load(Ordering::Relaxed),
            flush_marker: self.flush_marker.load(Ordering::Relaxed),
            flush_eos: self.flush_eos.load(Ordering::Relaxed),
            shed_tuples: self.shed_tuples.load(Ordering::Relaxed),
            pressure: self.pressure.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
            batch_size: self.batch_size.snapshot(),
        }
    }
}

/// All instance shards of one run. Built up-front (before workers spawn),
/// then shared immutably; readers snapshot without synchronization.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    app: String,
    instances: Vec<Arc<InstanceMetrics>>,
}

impl MetricsRegistry {
    /// Create an empty registry for the named application.
    pub fn new(app: impl Into<String>) -> Self {
        MetricsRegistry {
            app: app.into(),
            instances: Vec::new(),
        }
    }

    /// Application label applied to every snapshot.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// Add a shard for one operator instance and return it.
    pub fn register(
        &mut self,
        operator: impl Into<String>,
        instance: usize,
        node: impl Into<String>,
    ) -> Arc<InstanceMetrics> {
        let m = Arc::new(InstanceMetrics::new(operator, instance, node));
        self.instances.push(Arc::clone(&m));
        m
    }

    /// Shard by registration order (the engine registers in physical
    /// instance-id order, so this is indexable by instance id).
    pub fn instance(&self, idx: usize) -> Arc<InstanceMetrics> {
        Arc::clone(&self.instances[idx])
    }

    /// Number of registered shards.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` when no shards are registered.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Freeze every shard. Lock-free; safe while workers are recording.
    pub fn snapshot(&self) -> Vec<InstanceSnapshot> {
        self.instances
            .iter()
            .map(|m| m.snapshot(&self.app))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let mut reg = MetricsRegistry::new("WC");
        let m = reg.register("count", 1, "local");
        m.add_tuples_in(10);
        m.add_tuples_out(7);
        m.observe_queue_depth(5);
        m.observe_queue_depth(2);
        m.add_busy_ns(300);
        m.add_idle_ns(700);
        m.record_checkpoint(1_000);
        m.record_latency_ns(5_000_000);
        let snaps = reg.snapshot();
        assert_eq!(snaps.len(), 1);
        let s = &snaps[0];
        assert_eq!(
            (
                s.app.as_str(),
                s.operator.as_str(),
                s.instance,
                s.node.as_str()
            ),
            ("WC", "count", 1, "local")
        );
        assert_eq!((s.tuples_in, s.tuples_out), (10, 7));
        assert_eq!((s.queue_depth, s.queue_depth_max), (2, 5));
        assert!((s.busy_fraction() - 0.3).abs() < 1e-12);
        assert_eq!((s.checkpoints, s.checkpoint_ns), (1, 1_000));
        assert_eq!(s.latency.count, 1);
    }

    #[test]
    fn batch_flushes_split_by_reason() {
        let mut reg = MetricsRegistry::new("WC");
        let m = reg.register("split", 0, "local");
        m.record_batch(64, FlushReason::Size);
        m.record_batch(64, FlushReason::Size);
        m.record_batch(3, FlushReason::Marker);
        m.record_batch(1, FlushReason::Linger);
        m.record_batch(7, FlushReason::Eos);
        assert_eq!(m.batches_out(), 5);
        let s = &reg.snapshot()[0];
        assert_eq!(s.batches_out, 5);
        assert_eq!(
            (s.flush_size, s.flush_linger, s.flush_marker, s.flush_eos),
            (2, 1, 1, 1)
        );
        assert_eq!(s.batch_size.count, 5);
        // The histogram's log-linear buckets are exact for small values.
        assert_eq!(s.batch_size.quantile(1.0), 64);
    }

    #[test]
    fn concurrent_recording_totals() {
        let mut reg = MetricsRegistry::new("X");
        let m = reg.register("op", 0, "local");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        m.add_tuples_in(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.tuples_in(), 40_000);
    }
}
