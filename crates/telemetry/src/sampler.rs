//! Background sampler thread: snapshots the registry at a fixed interval
//! into a time series, plus the per-run [`RunTelemetry`] bundle the
//! runtimes thread through their workers.

use crate::recorder::FlightRecorder;
use crate::registry::MetricsRegistry;
use crate::snapshot::{TelemetryTimeline, TimelineSample};
use crate::trace::TraceBook;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Telemetry knobs for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sampler period in milliseconds.
    pub interval_ms: u64,
    /// Flight-recorder ring capacity.
    pub flight_capacity: usize,
    /// Dump the flight recorder to stderr when the run fails.
    pub dump_on_error: bool,
    /// Distributed-tracing head-sampling rate: sources stamp every Nth
    /// tuple with a trace context. `0` disables tracing entirely.
    pub trace_every: u64,
    /// Span-ring capacity per writer thread when tracing is enabled.
    pub trace_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval_ms: 100,
            flight_capacity: FlightRecorder::DEFAULT_CAPACITY,
            dump_on_error: true,
            trace_every: 0,
            trace_capacity: 4096,
        }
    }
}

/// Shared telemetry state for one run: the registry workers write into and
/// the flight recorder they log events to.
#[derive(Debug)]
pub struct RunTelemetry {
    /// Per-instance metric shards.
    pub registry: Arc<MetricsRegistry>,
    /// Structured event ring.
    pub recorder: Arc<FlightRecorder>,
    /// Span collection; `Some` when `config.trace_every > 0`.
    pub trace: Option<Arc<TraceBook>>,
    /// Sampling/dump configuration for this run.
    pub config: TelemetryConfig,
}

impl RunTelemetry {
    /// Wrap a populated registry in shared run-telemetry state. Tracing,
    /// when enabled, records under the site label `"local"` — use
    /// [`RunTelemetry::with_site`] in multi-process runs.
    pub fn new(registry: MetricsRegistry, config: TelemetryConfig) -> Self {
        Self::with_site(registry, config, "local", 0)
    }

    /// Like [`RunTelemetry::new`] but with an explicit process label and
    /// span-id base (must be unique per process in a distributed run).
    pub fn with_site(
        registry: MetricsRegistry,
        config: TelemetryConfig,
        site: impl Into<String>,
        id_base: u64,
    ) -> Self {
        let trace = (config.trace_every > 0).then(|| {
            Arc::new(TraceBook::new(
                site,
                config.trace_every,
                config.trace_capacity,
                id_base,
            ))
        });
        RunTelemetry {
            registry: Arc::new(registry),
            recorder: Arc::new(FlightRecorder::new(config.flight_capacity)),
            trace,
            config,
        }
    }
}

/// Handle to a running sampler thread.
///
/// The thread snapshots the registry every `interval_ms` until
/// [`Sampler::finish`] is called, which joins it and appends one final
/// end-of-run sample — so even a run shorter than the interval yields a
/// non-empty timeline.
#[derive(Debug)]
pub struct Sampler {
    registry: Arc<MetricsRegistry>,
    samples: Arc<Mutex<Vec<TimelineSample>>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    start: Instant,
    interval_ms: u64,
}

impl Sampler {
    /// Spawn the sampler thread.
    pub fn start(registry: Arc<MetricsRegistry>, interval_ms: u64) -> Self {
        let interval_ms = interval_ms.max(1);
        let samples: Arc<Mutex<Vec<TimelineSample>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let start = Instant::now();
        let handle = {
            let registry = Arc::clone(&registry);
            let samples = Arc::clone(&samples);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("pdsp-telemetry-sampler".into())
                .spawn(move || {
                    let mut next = start + Duration::from_millis(interval_ms);
                    loop {
                        // Sleep in short slices so finish() returns promptly.
                        while Instant::now() < next {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            let left = next.saturating_duration_since(Instant::now());
                            std::thread::sleep(left.min(Duration::from_millis(10)));
                        }
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let sample = TimelineSample {
                            t_ms: start.elapsed().as_millis() as u64,
                            instances: registry.snapshot(),
                        };
                        samples.lock().push(sample);
                        next += Duration::from_millis(interval_ms);
                    }
                })
                .expect("spawn sampler thread")
        };
        Sampler {
            registry,
            samples,
            stop,
            handle: Some(handle),
            start,
            interval_ms,
        }
    }

    /// Stop the thread, take a final sample, and assemble the timeline.
    pub fn finish(
        mut self,
        experiment_id: impl Into<String>,
        backend: impl Into<String>,
        events: Vec<crate::recorder::FlightEvent>,
    ) -> TelemetryTimeline {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let mut samples = std::mem::take(&mut *self.samples.lock());
        samples.push(TimelineSample {
            t_ms: self.start.elapsed().as_millis() as u64,
            instances: self.registry.snapshot(),
        });
        TelemetryTimeline {
            experiment_id: experiment_id.into(),
            app: self.registry.app().to_string(),
            backend: backend.into(),
            interval_ms: self.interval_ms,
            samples,
            events,
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_still_yields_final_sample() {
        let mut reg = MetricsRegistry::new("WC");
        let m = reg.register("src", 0, "local");
        let sampler = Sampler::start(Arc::new(reg), 10_000);
        m.add_tuples_out(42);
        let t = sampler.finish("exp-short", "threaded", vec![]);
        assert_eq!(t.samples.len(), 1, "final sample always appended");
        assert_eq!(t.samples[0].instances[0].tuples_out, 42);
        assert_eq!(t.backend, "threaded");
    }

    #[test]
    fn sampler_collects_periodic_snapshots() {
        let mut reg = MetricsRegistry::new("WC");
        let m = reg.register("src", 0, "local");
        let sampler = Sampler::start(Arc::new(reg), 5);
        for i in 0..20 {
            m.add_tuples_out(i);
            std::thread::sleep(Duration::from_millis(2));
        }
        let t = sampler.finish("exp-periodic", "threaded", vec![]);
        assert!(t.samples.len() >= 3, "got {} samples", t.samples.len());
        let outs: Vec<u64> = t
            .samples
            .iter()
            .map(|s| s.instances[0].tuples_out)
            .collect();
        assert!(outs.windows(2).all(|w| w[0] <= w[1]), "monotonic: {outs:?}");
    }
}
