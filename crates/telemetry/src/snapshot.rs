//! Point-in-time snapshot schema shared by the threaded runtime and the
//! discrete-event simulator.
//!
//! A [`TimelineSample`] is the registry state at one instant; a
//! [`TelemetryTimeline`] is the full time series for one run, keyed by an
//! experiment id so it can be stored and queried later. Both backends emit
//! the exact same schema, which is what makes simulated and threaded runs
//! directly comparable.

use crate::histogram::HistogramSnapshot;
use crate::recorder::FlightEvent;
use serde::{Deserialize, Serialize};

/// Frozen counters of one operator instance at one instant.
///
/// All counters are cumulative since run start; per-interval rates are
/// derived by differencing consecutive samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InstanceSnapshot {
    /// Application acronym (e.g. `WC`).
    pub app: String,
    /// Logical operator name.
    pub operator: String,
    /// Parallel instance index within the operator.
    pub instance: usize,
    /// Hosting node label (`local` for the threaded runtime, the placement
    /// node for simulated runs).
    pub node: String,
    /// Tuples received on input channels.
    pub tuples_in: u64,
    /// Tuples emitted downstream.
    pub tuples_out: u64,
    /// Tuples dropped as too late for their window.
    pub late_tuples: u64,
    /// Window panes fired.
    pub window_fires: u64,
    /// Input queue length at sample time (backpressure proxy).
    pub queue_depth: u64,
    /// Maximum observed input queue length.
    pub queue_depth_max: u64,
    /// Nanoseconds spent processing messages.
    pub busy_ns: u64,
    /// Nanoseconds spent waiting for input.
    pub idle_ns: u64,
    /// Checkpoints completed by this instance.
    pub checkpoints: u64,
    /// Total nanoseconds spent taking checkpoints.
    pub checkpoint_ns: u64,
    /// Times this instance was restarted by recovery.
    pub restarts: u64,
    /// Outgoing micro-batches flushed downstream (0 for sinks and for
    /// tuple-at-a-time framing). Absent in pre-batching snapshots.
    #[serde(default)]
    pub batches_out: u64,
    /// Batches flushed because the builder reached the size bound.
    #[serde(default)]
    pub flush_size: u64,
    /// Batches flushed by the idle-input linger timer.
    #[serde(default)]
    pub flush_linger: u64,
    /// Batches flushed ahead of a watermark or checkpoint barrier.
    #[serde(default)]
    pub flush_marker: u64,
    /// Batches flushed by the end-of-stream drain.
    #[serde(default)]
    pub flush_eos: u64,
    /// Tuples dropped by the load-shedding rung of the overload ladder.
    /// Always fully accounted: `tuples_in` includes shed tuples, so
    /// `tuples_in = processed + shed`. Absent in pre-overload snapshots.
    #[serde(default)]
    pub shed_tuples: u64,
    /// Current overload-escalation rung (0 = normal backpressure,
    /// 1 = adaptive batching, 2 = load shedding). Gauge, not cumulative.
    /// Absent in pre-overload snapshots.
    #[serde(default)]
    pub pressure: u64,
    /// End-to-end latency distribution in nanoseconds (sink instances only;
    /// empty elsewhere).
    pub latency: HistogramSnapshot,
    /// Distribution of flushed batch sizes in tuples (empty for sinks and
    /// for tuple-at-a-time framing). Absent in pre-batching snapshots.
    #[serde(default)]
    pub batch_size: HistogramSnapshot,
}

impl InstanceSnapshot {
    /// Fraction of observed time spent processing (0 when nothing observed).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

/// All instance snapshots at one instant.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimelineSample {
    /// Milliseconds since run start (wall clock for the threaded runtime,
    /// simulated time for the simulator).
    pub t_ms: u64,
    /// One snapshot per registered operator instance.
    pub instances: Vec<InstanceSnapshot>,
}

/// The complete recorded time series of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryTimeline {
    /// Unique id tying this timeline to its run record in the store.
    pub experiment_id: String,
    /// Application acronym or workload label.
    pub app: String,
    /// `threaded` or `simulated`.
    pub backend: String,
    /// Configured sampling interval.
    pub interval_ms: u64,
    /// Samples in time order; the last one is taken at run end, so the
    /// timeline is non-empty for any completed run.
    pub samples: Vec<TimelineSample>,
    /// Flight-recorder events captured during the run.
    pub events: Vec<FlightEvent>,
}

impl TelemetryTimeline {
    /// The last (end-of-run) sample, if any.
    pub fn final_sample(&self) -> Option<&TimelineSample> {
        self.samples.last()
    }

    /// Cumulative `(t_ms, tuples_out)` series for one operator instance.
    pub fn tuples_out_series(&self, operator: &str, instance: usize) -> Vec<(u64, u64)> {
        self.samples
            .iter()
            .filter_map(|s| {
                s.instances
                    .iter()
                    .find(|i| i.operator == operator && i.instance == instance)
                    .map(|i| (s.t_ms, i.tuples_out))
            })
            .collect()
    }

    /// Merged end-to-end latency histogram across all sink instances in the
    /// final sample.
    pub fn final_latency(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::new();
        if let Some(s) = self.final_sample() {
            for i in &s.instances {
                merged.merge(&i.latency);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_fraction_handles_zero() {
        let s = InstanceSnapshot::default();
        assert_eq!(s.busy_fraction(), 0.0);
        let s = InstanceSnapshot {
            busy_ns: 30,
            idle_ns: 70,
            ..Default::default()
        };
        assert!((s.busy_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn timeline_serde_roundtrip() {
        let t = TelemetryTimeline {
            experiment_id: "exp-1".into(),
            app: "WC".into(),
            backend: "threaded".into(),
            interval_ms: 100,
            samples: vec![TimelineSample {
                t_ms: 100,
                instances: vec![InstanceSnapshot {
                    app: "WC".into(),
                    operator: "count".into(),
                    instance: 2,
                    node: "local".into(),
                    tuples_in: 10,
                    ..Default::default()
                }],
            }],
            events: vec![],
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: TelemetryTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn series_extraction() {
        let mk = |t_ms, out| TimelineSample {
            t_ms,
            instances: vec![InstanceSnapshot {
                operator: "map".into(),
                instance: 0,
                tuples_out: out,
                ..Default::default()
            }],
        };
        let t = TelemetryTimeline {
            samples: vec![mk(0, 0), mk(100, 50), mk(200, 90)],
            ..Default::default()
        };
        assert_eq!(
            t.tuples_out_series("map", 0),
            vec![(0, 0), (100, 50), (200, 90)]
        );
        assert!(t.tuples_out_series("other", 0).is_empty());
    }
}
