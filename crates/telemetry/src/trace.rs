//! Sampled distributed tracing: span schema, lock-free per-writer span
//! rings, trace assembly, critical-path decomposition, and exporters.
//!
//! The design is Dapper-style head sampling: sources stamp every Nth tuple
//! with a [`TraceContext`]; each data-plane stage (batcher linger, channel
//! queue wait, operator processing, wire serialize, network transfer, sink
//! delivery) records one [`Span`] per traced *frame* into a single-writer
//! [`SpanRing`], chaining `parent` pointers so the coordinator can
//! reassemble the causal tree after the run. The same schema is emitted by
//! the discrete-event simulator on virtual time, which is what makes
//! predicted-vs-measured per-edge comparison possible.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Identifies one sampled end-to-end trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TraceId(pub u64);

/// Identifies one span within a run; unique across processes because each
/// [`TraceBook`] allocates from a disjoint id range (see
/// [`TraceBook::new`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SpanId(pub u64);

/// The causal context carried by tuples and batch frames: which trace they
/// belong to and the span id of the most recent upstream stage, which
/// becomes the `parent` of the next span recorded downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// The trace this tuple/frame belongs to.
    pub trace: TraceId,
    /// The most recent upstream span; parent of the next recorded span.
    pub parent: SpanId,
}

/// What a span measures. Labels are part of the exporter golden contract —
/// do not rename without updating the golden tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// Root span stamped at the source when a tuple is sampled.
    Source,
    /// Time the first traced tuple of a frame waited in the edge batcher
    /// before the frame flushed (size/linger/marker).
    Batch,
    /// Enqueue→dequeue wait on an inter-instance channel.
    Queue,
    /// Operator processing of the traced frame.
    Process,
    /// Wire framing: flush→TCP write, including the forwarder proxy queue.
    Serialize,
    /// TCP write→remote decode on a cross-process hop.
    Net,
    /// Sink delivery/capture of the traced frame.
    Deliver,
}

impl SpanKind {
    /// Stable lowercase label used in exports and reports.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Source => "source",
            SpanKind::Batch => "batch",
            SpanKind::Queue => "queue",
            SpanKind::Process => "process",
            SpanKind::Serialize => "serialize",
            SpanKind::Net => "net",
            SpanKind::Deliver => "deliver",
        }
    }
}

/// One recorded interval, the unit every runtime and the simulator share.
///
/// Timestamps are nanoseconds on the run's clock: monotonic-from-start for
/// threaded runs, UNIX-epoch for distributed runs (comparable across
/// processes on one host), virtual time for simulated runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// Unique id of this span.
    pub id: SpanId,
    /// Causal parent (the upstream stage), `None` for the source root.
    #[serde(default)]
    pub parent: Option<SpanId>,
    /// What this span measures.
    pub kind: SpanKind,
    /// Operator name that recorded the span (`"wire"` for transport spans
    /// recorded by the network acceptor).
    pub op: String,
    /// Process label: `"local"`, `"worker0"`, `"sim"`, …
    pub site: String,
    /// Operator instance index that recorded the span.
    pub instance: usize,
    /// Interval start, ns.
    pub start_ns: u64,
    /// Interval end, ns.
    pub end_ns: u64,
}

impl Span {
    /// Span duration in nanoseconds (0 if the interval is inverted).
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A lock-free bounded span ring with exactly one writer thread.
///
/// # Safety contract
///
/// `push` may be called from **one** thread only (the owning instance /
/// acceptor thread). `drain` may only be called after that writer has
/// quiesced — in practice after the thread was joined, which establishes
/// the necessary happens-before edge. The head counter is still
/// release/acquire ordered so the contract is cheap to uphold.
pub struct SpanRing {
    slots: Box<[UnsafeCell<Option<Span>>]>,
    head: AtomicUsize,
}

// SAFETY: interior mutability is confined by the single-writer /
// drain-after-join contract documented on the type; the Release store in
// `push` paired with the Acquire load in `drain` orders slot writes before
// the head they publish.
unsafe impl Send for SpanRing {}
unsafe impl Sync for SpanRing {}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl SpanRing {
    /// Create a ring keeping the most recent `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        let slots: Vec<UnsafeCell<Option<Span>>> =
            (0..cap).map(|_| UnsafeCell::new(None)).collect();
        SpanRing {
            slots: slots.into_boxed_slice(),
            head: AtomicUsize::new(0),
        }
    }

    /// Record a span. Single-writer: see the type-level safety contract.
    pub fn push(&self, span: Span) {
        let i = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[i % self.slots.len()];
        // SAFETY: only the owning writer thread calls `push`, and `drain`
        // runs only after this thread quiesces (type-level contract).
        unsafe { *slot.get() = Some(span) };
        self.head.store(i + 1, Ordering::Release);
    }

    /// Total spans ever recorded (including any that wrapped out).
    pub fn recorded(&self) -> usize {
        self.head.load(Ordering::Acquire)
    }

    /// Take the retained spans in insertion order. Only valid after the
    /// writer thread has quiesced (see the type-level safety contract).
    pub fn drain(&self) -> Vec<Span> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len();
        let kept = head.min(cap);
        let mut out = Vec::with_capacity(kept);
        for k in 0..kept {
            let idx = if head <= cap { k } else { (head + k) % cap };
            // SAFETY: the writer has quiesced (type-level contract), so no
            // concurrent writes race with this read.
            let span = unsafe { (*self.slots[idx].get()).take() };
            if let Some(s) = span {
                out.push(s);
            }
        }
        out
    }
}

/// Per-process trace state: sampling rate, span-id allocation, and the set
/// of single-writer rings registered by instance and acceptor threads.
#[derive(Debug)]
pub struct TraceBook {
    site: String,
    sample_every: u64,
    capacity: usize,
    rings: Mutex<Vec<Arc<SpanRing>>>,
    next_id: AtomicU64,
}

impl TraceBook {
    /// Create a book for one process. `site` labels every span recorded
    /// here (`"local"`, `"worker1"`, `"sim"`); `sample_every` is the 1/N
    /// head-sampling rate; `id_base` must differ per process in a
    /// distributed run — ids are allocated from `id_base << 48` up, so
    /// spans from different workers never collide.
    pub fn new(site: impl Into<String>, sample_every: u64, capacity: usize, id_base: u64) -> Self {
        TraceBook {
            site: site.into(),
            sample_every: sample_every.max(1),
            capacity: capacity.max(1),
            rings: Mutex::new(Vec::new()),
            next_id: AtomicU64::new((id_base << 48) | 1),
        }
    }

    /// The process label stamped on spans recorded here.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// The 1/N head-sampling rate.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Register a new single-writer ring (one per instance or acceptor
    /// thread).
    pub fn ring(&self) -> Arc<SpanRing> {
        let ring = Arc::new(SpanRing::new(self.capacity));
        self.rings.lock().push(Arc::clone(&ring));
        ring
    }

    /// Allocate a process-unique span id.
    pub fn next_span_id(&self) -> SpanId {
        SpanId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocate a process-unique trace id (same id space as spans).
    pub fn next_trace_id(&self) -> TraceId {
        TraceId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Collect every retained span, sorted by start time. Only valid once
    /// all writer threads have been joined.
    pub fn drain(&self) -> Vec<Span> {
        let rings = self.rings.lock();
        let mut out: Vec<Span> = rings.iter().flat_map(|r| r.drain()).collect();
        out.sort_by_key(|s| (s.start_ns, s.id));
        out
    }
}

/// All spans of one trace, sorted by start time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceTree {
    /// The trace these spans belong to.
    pub trace: TraceId,
    /// Member spans, sorted by `(start_ns, id)`.
    pub spans: Vec<Span>,
}

impl TraceTree {
    /// The root span: the `source` span if present, else the earliest.
    pub fn root(&self) -> Option<&Span> {
        self.spans
            .iter()
            .find(|s| s.kind == SpanKind::Source)
            .or_else(|| self.spans.first())
    }

    /// The terminal span: the latest-ending `deliver` span if present.
    pub fn sink(&self) -> Option<&Span> {
        self.spans
            .iter()
            .filter(|s| s.kind == SpanKind::Deliver)
            .max_by_key(|s| s.end_ns)
    }

    /// Whether spans were recorded by more than one process.
    pub fn is_cross_process(&self) -> bool {
        let first = match self.spans.first() {
            Some(s) => &s.site,
            None => return false,
        };
        self.spans.iter().any(|s| &s.site != first)
    }

    /// Whether the trace crossed the network (a nonempty `net` span).
    pub fn has_net_span(&self) -> bool {
        self.spans
            .iter()
            .any(|s| s.kind == SpanKind::Net && s.dur_ns() > 0)
    }

    /// Whether the trace is complete: a source root and a sink delivery.
    pub fn is_complete(&self) -> bool {
        self.spans.iter().any(|s| s.kind == SpanKind::Source) && self.sink().is_some()
    }

    /// End-to-end latency from source emit to sink delivery, ns.
    pub fn end_to_end_ns(&self) -> Option<u64> {
        let root = self.root()?;
        let sink = self.sink()?;
        Some(sink.end_ns.saturating_sub(root.start_ns))
    }

    /// Verify the parent pointers form a forest (no cycles, every parent
    /// either in-tree or absent). Used by the property tests.
    pub fn is_acyclic(&self) -> bool {
        let by_id: BTreeMap<SpanId, &Span> = self.spans.iter().map(|s| (s.id, s)).collect();
        for start in &self.spans {
            let mut hops = 0usize;
            let mut cur = start.parent;
            while let Some(pid) = cur {
                if pid == start.id || hops > self.spans.len() {
                    return false;
                }
                hops += 1;
                cur = by_id.get(&pid).and_then(|s| s.parent);
            }
        }
        true
    }
}

/// Group raw spans into per-trace trees, sorted by trace id.
pub fn assemble(spans: Vec<Span>) -> Vec<TraceTree> {
    let mut by_trace: BTreeMap<TraceId, Vec<Span>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace).or_default().push(s);
    }
    by_trace
        .into_iter()
        .map(|(trace, mut spans)| {
            spans.sort_by_key(|s| (s.start_ns, s.id));
            TraceTree { trace, spans }
        })
        .collect()
}

/// One labeled slice of a critical path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Human-readable segment label, e.g. `op:count` or `net:split→count`.
    pub label: String,
    /// Time attributed to this segment, ns.
    pub ns: u64,
}

/// Critical-path decomposition of one trace: the causal chain from source
/// to sink, with uncovered intervals surfaced as explicit `gap:` segments
/// so the segment durations sum exactly to the end-to-end latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CriticalPath {
    /// The decomposed trace.
    pub trace: TraceId,
    /// End-to-end latency (source emit → sink delivery), ns.
    pub total_ns: u64,
    /// Ordered segments; durations sum to `total_ns` exactly.
    pub segments: Vec<Segment>,
}

/// Compute the critical path of a trace by walking parent pointers from
/// the sink delivery back to the source root. Returns `None` for
/// incomplete traces (no source root or no sink delivery reachable).
pub fn critical_path(tree: &TraceTree) -> Option<CriticalPath> {
    let by_id: BTreeMap<SpanId, &Span> = tree.spans.iter().map(|s| (s.id, s)).collect();
    let sink = tree.sink()?;
    // Walk sink → root.
    let mut chain: Vec<&Span> = vec![sink];
    let mut cur = sink.parent;
    let mut hops = 0usize;
    while let Some(pid) = cur {
        if hops > tree.spans.len() {
            return None; // cycle guard
        }
        hops += 1;
        match by_id.get(&pid) {
            Some(s) => {
                chain.push(s);
                cur = s.parent;
            }
            None => break, // parent recorded on a ring that wrapped; stop
        }
    }
    chain.reverse();
    if chain.first()?.kind != SpanKind::Source {
        return None;
    }

    // Sender/receiver operator names for transport segments: the nearest
    // chain element before/after that carries a real operator name.
    let n = chain.len();
    let carries_op = |s: &Span| {
        matches!(
            s.kind,
            SpanKind::Source | SpanKind::Process | SpanKind::Deliver
        )
    };
    let mut from_op: Vec<&str> = vec![""; n];
    let mut last = "";
    for (i, s) in chain.iter().enumerate() {
        from_op[i] = last;
        if carries_op(s) {
            last = &s.op;
        } else if s.kind == SpanKind::Batch {
            // The batcher runs in the sender's thread; its op IS the sender.
            last = &s.op;
        }
    }
    let mut to_op: Vec<&str> = vec![""; n];
    let mut next = "";
    for (i, s) in chain.iter().enumerate().rev() {
        to_op[i] = next;
        if carries_op(s) || s.kind == SpanKind::Queue {
            next = &s.op;
        }
    }

    let label = |i: usize, s: &Span| -> String {
        match s.kind {
            SpanKind::Source => format!("source:{}", s.op),
            SpanKind::Batch => format!("batch:{}", s.op),
            SpanKind::Queue => format!("queue:{}→{}", from_op[i], s.op),
            SpanKind::Serialize => format!("serialize:{}→{}", from_op[i], to_op[i]),
            SpanKind::Net => format!("net:{}→{}", from_op[i], to_op[i]),
            SpanKind::Process => format!("op:{}", s.op),
            SpanKind::Deliver => format!("sink:{}", s.op),
        }
    };

    let start = chain[0].start_ns;
    let total = chain[n - 1].end_ns.saturating_sub(start);
    let mut segments = Vec::with_capacity(2 * n);
    let mut cursor = start;
    for (i, s) in chain.iter().enumerate() {
        if s.start_ns > cursor {
            segments.push(Segment {
                label: format!("gap:{}", if s.op == "wire" { to_op[i] } else { &s.op }),
                ns: s.start_ns - cursor,
            });
            cursor = s.start_ns;
        }
        if s.end_ns > cursor {
            segments.push(Segment {
                label: label(i, s),
                ns: s.end_ns - cursor,
            });
            cursor = s.end_ns;
        }
    }
    Some(CriticalPath {
        trace: tree.trace,
        total_ns: total,
        segments,
    })
}

/// Aggregated attribution across many traces' critical paths.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attribution {
    /// Number of complete traces aggregated.
    pub traces: usize,
    /// Mean end-to-end latency across those traces, ns.
    pub mean_total_ns: f64,
    /// Per-label mean attributed time (ns) and share of the mean total,
    /// sorted descending by mean time.
    pub segments: Vec<AttributedSegment>,
}

/// One aggregated segment of an [`Attribution`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributedSegment {
    /// Segment label (shared with [`Segment::label`]).
    pub label: String,
    /// Mean time attributed per trace, ns.
    pub mean_ns: f64,
    /// Fraction of mean end-to-end latency.
    pub share: f64,
}

impl Attribution {
    /// The label eating the most latency, if any traces were aggregated.
    pub fn dominant(&self) -> Option<&str> {
        self.segments.first().map(|s| s.label.as_str())
    }
}

/// Aggregate the critical paths of all complete traces.
pub fn attribute(trees: &[TraceTree]) -> Attribution {
    let paths: Vec<CriticalPath> = trees.iter().filter_map(critical_path).collect();
    let count = paths.len();
    if count == 0 {
        return Attribution {
            traces: 0,
            mean_total_ns: 0.0,
            segments: Vec::new(),
        };
    }
    let mut sums: BTreeMap<String, u64> = BTreeMap::new();
    let mut total: u64 = 0;
    for p in &paths {
        total += p.total_ns;
        for seg in &p.segments {
            *sums.entry(seg.label.clone()).or_default() += seg.ns;
        }
    }
    let mean_total = total as f64 / count as f64;
    let mut segments: Vec<AttributedSegment> = sums
        .into_iter()
        .map(|(label, ns)| {
            let mean = ns as f64 / count as f64;
            AttributedSegment {
                label,
                mean_ns: mean,
                share: if mean_total > 0.0 {
                    mean / mean_total
                } else {
                    0.0
                },
            }
        })
        .collect();
    segments.sort_by(|a, b| b.mean_ns.total_cmp(&a.mean_ns).then(a.label.cmp(&b.label)));
    Attribution {
        traces: count,
        mean_total_ns: mean_total,
        segments,
    }
}

/// Dominant critical-path segment per sampler window: complete traces are
/// bucketed by sink-delivery time into `interval_ms` windows and each
/// window's attribution dominant is reported. Feed consecutive entries to
/// [`crate::alarms::AlarmMonitor::observe_critical_path`] to detect shifts.
pub fn window_dominants(trees: &[TraceTree], interval_ms: u64) -> Vec<(u64, String)> {
    let interval_ns = interval_ms.max(1).saturating_mul(1_000_000);
    let mut windows: BTreeMap<u64, Vec<&TraceTree>> = BTreeMap::new();
    for t in trees {
        if let Some(sink) = t.sink() {
            windows
                .entry(sink.end_ns / interval_ns)
                .or_default()
                .push(t);
        }
    }
    windows
        .into_iter()
        .filter_map(|(w, ts)| {
            let owned: Vec<TraceTree> = ts.into_iter().cloned().collect();
            attribute(&owned).dominant().map(|d| (w, d.to_string()))
        })
        .collect()
}

/// A persisted bundle of spans for one run, keyed like timelines are.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSet {
    /// Experiment id shared with the run record and telemetry timeline.
    pub experiment_id: String,
    /// Application name.
    pub app: String,
    /// Backend that produced the spans (`threaded`, `distributed`, …).
    pub backend: String,
    /// Head-sampling rate the run used.
    pub sample_every: u64,
    /// All collected spans.
    pub spans: Vec<Span>,
}

/// Export spans as Chrome trace-event JSON (load in `chrome://tracing` or
/// Perfetto). Events are complete (`ph:"X"`), timestamps in microseconds,
/// sorted ascending; `pid` is the process site, `tid` is
/// `operator[instance]`.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut sorted: Vec<&Span> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start_ns, s.id));
    let events: Vec<serde_json::Value> = sorted
        .iter()
        .map(|s| {
            serde_json::json!({
                "name": s.kind.label(),
                "cat": "pdsp",
                "ph": "X",
                "ts": s.start_ns as f64 / 1000.0,
                "dur": s.dur_ns() as f64 / 1000.0,
                "pid": s.site,
                "tid": format!("{}[{}]", s.op, s.instance),
                "args": {
                    "trace": s.trace.0,
                    "span": s.id.0,
                    "parent": s.parent.map(|p| p.0),
                },
            })
        })
        .collect();
    serde_json::to_string(&serde_json::json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }))
    .expect("chrome trace serialization cannot fail")
}

/// Render a human-readable latency attribution report.
pub fn attribution_report(trees: &[TraceTree]) -> String {
    let attr = attribute(trees);
    let assembled = trees.len();
    let cross = trees.iter().filter(|t| t.is_cross_process()).count();
    let netted = trees.iter().filter(|t| t.has_net_span()).count();
    let mut out = String::new();
    out.push_str(&format!(
        "traces: {assembled} assembled, {} complete, {cross} cross-process, {netted} with network spans\n",
        attr.traces
    ));
    if attr.traces == 0 {
        out.push_str("no complete source→sink traces; nothing to attribute\n");
        return out;
    }
    out.push_str(&format!(
        "mean end-to-end latency: {:.3} ms\n",
        attr.mean_total_ns / 1e6
    ));
    out.push_str(&format!(
        "{:<32} {:>12} {:>8}\n",
        "segment", "mean µs", "share"
    ));
    for seg in &attr.segments {
        out.push_str(&format!(
            "{:<32} {:>12.1} {:>7.1}%\n",
            seg.label,
            seg.mean_ns / 1000.0,
            seg.share * 100.0
        ));
    }
    if let Some(dom) = attr.dominant() {
        out.push_str(&format!("dominant segment: {dom}\n"));
    }
    out
}

/// Render a predicted-vs-measured per-segment comparison of two
/// attributions (measured run vs. simulator on the same plan).
pub fn compare_report(measured: &Attribution, predicted: &Attribution) -> String {
    let mut labels: Vec<&str> = measured.segments.iter().map(|s| s.label.as_str()).collect();
    for s in &predicted.segments {
        if !labels.contains(&s.label.as_str()) {
            labels.push(&s.label);
        }
    }
    let find = |a: &Attribution, l: &str| -> Option<f64> {
        a.segments.iter().find(|s| s.label == l).map(|s| s.mean_ns)
    };
    let mut out = String::new();
    out.push_str(&format!(
        "measured: {} traces, mean {:.3} ms | predicted: {} traces, mean {:.3} ms\n",
        measured.traces,
        measured.mean_total_ns / 1e6,
        predicted.traces,
        predicted.mean_total_ns / 1e6
    ));
    out.push_str(&format!(
        "{:<32} {:>13} {:>13} {:>9}\n",
        "segment", "measured µs", "predicted µs", "delta"
    ));
    for l in labels {
        let m = find(measured, l);
        let p = find(predicted, l);
        let delta = match (m, p) {
            (Some(m), Some(p)) if m > 0.0 => format!("{:+.1}%", (p - m) / m * 100.0),
            _ => "—".to_string(),
        };
        out.push_str(&format!(
            "{:<32} {:>13} {:>13} {:>9}\n",
            l,
            m.map_or("—".into(), |v| format!("{:.1}", v / 1000.0)),
            p.map_or("—".into(), |v| format!("{:.1}", v / 1000.0)),
            delta
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        kind: SpanKind,
        op: &str,
        range: (u64, u64),
    ) -> Span {
        Span {
            trace: TraceId(trace),
            id: SpanId(id),
            parent: parent.map(SpanId),
            kind,
            op: op.into(),
            site: "local".into(),
            instance: 0,
            start_ns: range.0,
            end_ns: range.1,
        }
    }

    fn linear_trace() -> Vec<Span> {
        vec![
            span(1, 10, None, SpanKind::Source, "src", (0, 0)),
            span(1, 11, Some(10), SpanKind::Batch, "src", (0, 100)),
            span(1, 12, Some(11), SpanKind::Queue, "count", (100, 250)),
            span(1, 13, Some(12), SpanKind::Process, "count", (250, 900)),
            span(1, 14, Some(13), SpanKind::Batch, "count", (910, 1000)),
            span(1, 15, Some(14), SpanKind::Queue, "sink", (1000, 1100)),
            span(1, 16, Some(15), SpanKind::Deliver, "sink", (1100, 1200)),
        ]
    }

    #[test]
    fn ring_keeps_most_recent_spans_in_order() {
        let ring = SpanRing::new(4);
        for i in 0..6u64 {
            ring.push(span(
                1,
                i,
                None,
                SpanKind::Process,
                "op",
                (i * 10, i * 10 + 5),
            ));
        }
        let spans = ring.drain();
        assert_eq!(spans.len(), 4);
        let ids: Vec<u64> = spans.iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![2, 3, 4, 5], "oldest two wrapped out");
        assert_eq!(ring.recorded(), 6);
    }

    #[test]
    fn book_allocates_disjoint_id_ranges_per_process() {
        let a = TraceBook::new("worker0", 64, 16, 1);
        let b = TraceBook::new("worker1", 64, 16, 2);
        for _ in 0..100 {
            assert_ne!(a.next_span_id(), b.next_span_id());
        }
    }

    #[test]
    fn critical_path_segments_sum_exactly_to_end_to_end() {
        let trees = assemble(linear_trace());
        assert_eq!(trees.len(), 1);
        assert!(trees[0].is_acyclic());
        assert!(trees[0].is_complete());
        let cp = critical_path(&trees[0]).expect("complete trace");
        assert_eq!(cp.total_ns, 1200);
        let sum: u64 = cp.segments.iter().map(|s| s.ns).sum();
        assert_eq!(sum, cp.total_ns, "gap segments make the sum exact");
        assert!(
            cp.segments.iter().any(|s| s.label == "gap:count"),
            "the 900→910 hole surfaces as a gap: {:?}",
            cp.segments
        );
        assert!(cp.segments.iter().any(|s| s.label == "queue:src→count"));
        assert!(cp.segments.iter().any(|s| s.label == "op:count"));
        assert!(cp.segments.iter().any(|s| s.label == "sink:sink"));
    }

    #[test]
    fn transport_segments_name_both_endpoints() {
        let mut spans = linear_trace();
        // Replace the second hop with a cross-process serialize+net pair.
        spans.truncate(4); // keep through op:count
        spans.push(span(1, 20, Some(13), SpanKind::Batch, "count", (910, 1000)));
        let mut ser = span(1, 21, Some(20), SpanKind::Serialize, "wire", (1000, 1040));
        ser.site = "worker0".into();
        spans.push(ser);
        let mut net = span(1, 22, Some(21), SpanKind::Net, "wire", (1040, 1090));
        net.site = "worker1".into();
        spans.push(net);
        spans.push(span(1, 23, Some(22), SpanKind::Queue, "sink", (1090, 1110)));
        spans.push(span(
            1,
            24,
            Some(23),
            SpanKind::Deliver,
            "sink",
            (1110, 1200),
        ));
        let trees = assemble(spans);
        assert!(trees[0].is_cross_process());
        assert!(trees[0].has_net_span());
        let cp = critical_path(&trees[0]).unwrap();
        let labels: Vec<&str> = cp.segments.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"serialize:count→sink"), "{labels:?}");
        assert!(labels.contains(&"net:count→sink"), "{labels:?}");
        let sum: u64 = cp.segments.iter().map(|s| s.ns).sum();
        assert_eq!(sum, cp.total_ns);
    }

    #[test]
    fn incomplete_traces_are_excluded_from_attribution() {
        let mut spans = linear_trace();
        spans.extend(vec![
            // Trace 2 never reached a sink.
            span(2, 30, None, SpanKind::Source, "src", (0, 0)),
            span(2, 31, Some(30), SpanKind::Batch, "src", (0, 80)),
        ]);
        let trees = assemble(spans);
        assert_eq!(trees.len(), 2);
        let attr = attribute(&trees);
        assert_eq!(attr.traces, 1);
        assert!(attr.mean_total_ns > 0.0);
        let share_sum: f64 = attr.segments.iter().map(|s| s.share).sum();
        assert!(
            (share_sum - 1.0).abs() < 1e-9,
            "shares sum to 1: {share_sum}"
        );
    }

    #[test]
    fn window_dominants_bucket_by_sink_time() {
        let mut spans = linear_trace();
        // Second complete trace delivered in a later window, dominated by a
        // huge queue wait.
        spans.extend(vec![
            span(3, 40, None, SpanKind::Source, "src", (5_000_000, 5_000_000)),
            span(
                3,
                41,
                Some(40),
                SpanKind::Batch,
                "src",
                (5_000_000, 5_000_100),
            ),
            span(
                3,
                42,
                Some(41),
                SpanKind::Queue,
                "sink",
                (5_000_100, 8_000_000),
            ),
            span(
                3,
                43,
                Some(42),
                SpanKind::Deliver,
                "sink",
                (8_000_000, 8_000_500),
            ),
        ]);
        let doms = window_dominants(&assemble(spans), 1);
        assert_eq!(doms.len(), 2);
        assert_eq!(doms[0].0, 0);
        assert_eq!(doms[1].0, 8);
        assert_eq!(doms[1].1, "queue:src→sink");
    }

    #[test]
    fn chrome_export_is_valid_sorted_json() {
        let json = chrome_trace_json(&linear_trace());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 7);
        let ts: Vec<f64> = events.iter().map(|e| e["ts"].as_f64().unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "monotonic ts: {ts:?}");
        for e in events {
            assert_eq!(e["ph"], "X");
            assert_eq!(e["cat"], "pdsp");
        }
    }

    #[test]
    fn compare_report_lists_deltas() {
        let trees = assemble(linear_trace());
        let measured = attribute(&trees);
        let mut predicted = measured.clone();
        for s in &mut predicted.segments {
            s.mean_ns *= 1.10;
        }
        let report = compare_report(&measured, &predicted);
        assert!(report.contains("+10.0%"), "{report}");
        assert!(report.contains("op:count"));
    }
}
