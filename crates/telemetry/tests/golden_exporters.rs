//! Golden tests pinning the exporter formats. If one of these fails, you
//! are changing the exporter schema — bump consumers deliberately, don't
//! just update the expectation.

use pdsp_telemetry::export::{json_lines, prometheus_text};
use pdsp_telemetry::histogram::HistogramSnapshot;
use pdsp_telemetry::snapshot::{InstanceSnapshot, TelemetryTimeline, TimelineSample};

/// Deterministic two-instance fixture: a source and a sink with latency.
fn fixture() -> Vec<InstanceSnapshot> {
    let mut latency = HistogramSnapshot::new();
    for v in [1_000_000u64, 2_000_000, 4_000_000, 8_000_000] {
        latency.record(v);
    }
    vec![
        InstanceSnapshot {
            app: "WC".into(),
            operator: "source".into(),
            instance: 0,
            node: "local".into(),
            tuples_in: 0,
            tuples_out: 1000,
            late_tuples: 0,
            window_fires: 0,
            queue_depth: 0,
            queue_depth_max: 0,
            busy_ns: 750,
            idle_ns: 250,
            checkpoints: 2,
            checkpoint_ns: 3_000_000,
            restarts: 0,
            latency: HistogramSnapshot::new(),
            ..Default::default()
        },
        InstanceSnapshot {
            app: "WC".into(),
            operator: "sink".into(),
            instance: 1,
            node: "node0:m510".into(),
            tuples_in: 990,
            tuples_out: 0,
            late_tuples: 3,
            window_fires: 7,
            queue_depth: 4,
            queue_depth_max: 12,
            busy_ns: 0,
            idle_ns: 0,
            checkpoints: 0,
            checkpoint_ns: 0,
            restarts: 1,
            latency,
            ..Default::default()
        },
    ]
}

#[test]
fn prometheus_exposition_is_stable() {
    let text = prometheus_text(&fixture());
    let expected = "\
# HELP pdsp_tuples_in_total Tuples received by the operator instance.
# TYPE pdsp_tuples_in_total counter
pdsp_tuples_in_total{app=\"WC\",operator=\"source\",instance=\"0\",node=\"local\"} 0
pdsp_tuples_in_total{app=\"WC\",operator=\"sink\",instance=\"1\",node=\"node0:m510\"} 990
# HELP pdsp_tuples_out_total Tuples emitted by the operator instance.
# TYPE pdsp_tuples_out_total counter
pdsp_tuples_out_total{app=\"WC\",operator=\"source\",instance=\"0\",node=\"local\"} 1000
pdsp_tuples_out_total{app=\"WC\",operator=\"sink\",instance=\"1\",node=\"node0:m510\"} 0
# HELP pdsp_late_tuples_total Tuples dropped as too late for their window.
# TYPE pdsp_late_tuples_total counter
pdsp_late_tuples_total{app=\"WC\",operator=\"source\",instance=\"0\",node=\"local\"} 0
pdsp_late_tuples_total{app=\"WC\",operator=\"sink\",instance=\"1\",node=\"node0:m510\"} 3
# HELP pdsp_window_fires_total Window panes fired.
# TYPE pdsp_window_fires_total counter
pdsp_window_fires_total{app=\"WC\",operator=\"source\",instance=\"0\",node=\"local\"} 0
pdsp_window_fires_total{app=\"WC\",operator=\"sink\",instance=\"1\",node=\"node0:m510\"} 7
# HELP pdsp_queue_depth Input queue length at sample time (backpressure proxy).
# TYPE pdsp_queue_depth gauge
pdsp_queue_depth{app=\"WC\",operator=\"source\",instance=\"0\",node=\"local\"} 0
pdsp_queue_depth{app=\"WC\",operator=\"sink\",instance=\"1\",node=\"node0:m510\"} 4
# HELP pdsp_queue_depth_max Maximum observed input queue length.
# TYPE pdsp_queue_depth_max gauge
pdsp_queue_depth_max{app=\"WC\",operator=\"source\",instance=\"0\",node=\"local\"} 0
pdsp_queue_depth_max{app=\"WC\",operator=\"sink\",instance=\"1\",node=\"node0:m510\"} 12
# HELP pdsp_busy_fraction Fraction of observed time spent processing.
# TYPE pdsp_busy_fraction gauge
pdsp_busy_fraction{app=\"WC\",operator=\"source\",instance=\"0\",node=\"local\"} 0.75
pdsp_busy_fraction{app=\"WC\",operator=\"sink\",instance=\"1\",node=\"node0:m510\"} 0
# HELP pdsp_checkpoints_total Checkpoints completed.
# TYPE pdsp_checkpoints_total counter
pdsp_checkpoints_total{app=\"WC\",operator=\"source\",instance=\"0\",node=\"local\"} 2
pdsp_checkpoints_total{app=\"WC\",operator=\"sink\",instance=\"1\",node=\"node0:m510\"} 0
# HELP pdsp_checkpoint_seconds_total Time spent taking checkpoints.
# TYPE pdsp_checkpoint_seconds_total counter
pdsp_checkpoint_seconds_total{app=\"WC\",operator=\"source\",instance=\"0\",node=\"local\"} 0.003
pdsp_checkpoint_seconds_total{app=\"WC\",operator=\"sink\",instance=\"1\",node=\"node0:m510\"} 0
# HELP pdsp_restarts_total Times the instance was restarted by recovery.
# TYPE pdsp_restarts_total counter
pdsp_restarts_total{app=\"WC\",operator=\"source\",instance=\"0\",node=\"local\"} 0
pdsp_restarts_total{app=\"WC\",operator=\"sink\",instance=\"1\",node=\"node0:m510\"} 1
";
    assert!(
        text.starts_with(expected),
        "prometheus exposition drifted:\n{text}"
    );
    // Latency quantiles are present only for the sink, with all four labels.
    for metric in ["pdsp_latency_p50_ms", "pdsp_latency_p99_ms"] {
        let line = text
            .lines()
            .find(|l| l.starts_with(&format!("{metric}{{")))
            .unwrap_or_else(|| panic!("{metric} missing:\n{text}"));
        assert!(
            line.contains("app=\"WC\",operator=\"sink\",instance=\"1\",node=\"node0:m510\""),
            "wrong labels: {line}"
        );
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with(&format!("{metric}{{")))
                .count(),
            1,
            "source must not report latency"
        );
    }
}

#[test]
fn prometheus_label_set_is_exact() {
    let text = prometheus_text(&fixture());
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let open = line.find('{').unwrap();
        let close = line.find('}').unwrap();
        let keys: Vec<&str> = line[open + 1..close]
            .split(',')
            .map(|kv| kv.split('=').next().unwrap())
            .collect();
        assert_eq!(
            keys,
            ["app", "operator", "instance", "node"],
            "label set drifted in: {line}"
        );
    }
}

#[test]
fn json_lines_schema_is_stable() {
    let timeline = TelemetryTimeline {
        experiment_id: "exp-golden".into(),
        app: "WC".into(),
        backend: "threaded".into(),
        interval_ms: 100,
        samples: vec![TimelineSample {
            t_ms: 100,
            instances: fixture(),
        }],
        events: vec![],
    };
    let out = json_lines(&timeline);
    assert_eq!(out.lines().count(), 1);
    let v: serde_json::Value = serde_json::from_str(out.lines().next().unwrap()).unwrap();
    // Top-level schema.
    for key in ["experiment_id", "app", "backend", "t_ms", "instances"] {
        assert!(!v[key].is_null(), "missing top-level field {key}");
    }
    assert_eq!(v["experiment_id"].as_str(), Some("exp-golden"));
    assert_eq!(v["backend"].as_str(), Some("threaded"));
    assert_eq!(v["t_ms"].as_u64(), Some(100));
    // Per-instance schema: exact field set, including the label quadruple.
    let inst = v["instances"][1].as_object().expect("instance object");
    let mut keys: Vec<&str> = inst.keys().map(|k| k.as_str()).collect();
    keys.sort_unstable();
    let mut expected = vec![
        "app",
        "operator",
        "instance",
        "node",
        "tuples_in",
        "tuples_out",
        "late_tuples",
        "window_fires",
        "queue_depth",
        "queue_depth_max",
        "busy_ns",
        "idle_ns",
        "checkpoints",
        "checkpoint_ns",
        "restarts",
        "batches_out",
        "flush_size",
        "flush_linger",
        "flush_marker",
        "flush_eos",
        "shed_tuples",
        "pressure",
        "batch_size",
        "latency",
    ];
    expected.sort_unstable();
    assert_eq!(keys, expected, "instance snapshot schema drifted");
    assert_eq!(v["instances"][1]["node"].as_str(), Some("node0:m510"));
    assert_eq!(v["instances"][1]["latency"]["count"].as_u64(), Some(4));
}
