//! Golden tests pinning the Chrome trace-event exporter format, plus
//! property tests over the span-tree invariants. If a golden test fails,
//! you are changing the exporter schema consumed by `chrome://tracing` /
//! Perfetto — bump consumers deliberately, don't just update the
//! expectation.

use pdsp_telemetry::{
    assemble, chrome_trace_json, critical_path, Span, SpanId, SpanKind, TraceContext, TraceId,
};
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)]
fn span(
    trace: u64,
    id: u64,
    parent: Option<u64>,
    kind: SpanKind,
    op: &str,
    site: &str,
    instance: usize,
    start_ns: u64,
    end_ns: u64,
) -> Span {
    Span {
        trace: TraceId(trace),
        id: SpanId(id),
        parent: parent.map(SpanId),
        kind,
        op: op.to_string(),
        site: site.to_string(),
        instance,
        start_ns,
        end_ns,
    }
}

/// One complete source→sink trace crossing a process boundary.
fn fixture() -> Vec<Span> {
    vec![
        span(
            7,
            1,
            None,
            SpanKind::Source,
            "src",
            "local",
            0,
            1_000,
            1_000,
        ),
        span(
            7,
            2,
            Some(1),
            SpanKind::Batch,
            "src",
            "local",
            0,
            1_000,
            3_500,
        ),
        span(
            7,
            3,
            Some(2),
            SpanKind::Queue,
            "count",
            "local",
            1,
            3_500,
            5_000,
        ),
        span(
            7,
            4,
            Some(3),
            SpanKind::Process,
            "count",
            "local",
            1,
            5_000,
            9_000,
        ),
        span(
            7,
            5,
            Some(4),
            SpanKind::Serialize,
            "wire",
            "worker1",
            2,
            9_000,
            10_000,
        ),
        span(
            7,
            6,
            Some(5),
            SpanKind::Net,
            "wire",
            "worker1",
            2,
            10_000,
            14_000,
        ),
        span(
            7,
            7,
            Some(6),
            SpanKind::Queue,
            "sink",
            "worker1",
            2,
            14_000,
            15_000,
        ),
        span(
            7,
            8,
            Some(7),
            SpanKind::Deliver,
            "sink",
            "worker1",
            2,
            15_000,
            16_000,
        ),
    ]
}

#[test]
fn chrome_trace_export_is_stable() {
    let json = chrome_trace_json(&fixture());
    let expected = concat!(
        r#"{"traceEvents":["#,
        r#"{"name":"source","cat":"pdsp","ph":"X","ts":1.0,"dur":0.0,"pid":"local","tid":"src[0]","args":{"trace":7,"span":1,"parent":null}},"#,
        r#"{"name":"batch","cat":"pdsp","ph":"X","ts":1.0,"dur":2.5,"pid":"local","tid":"src[0]","args":{"trace":7,"span":2,"parent":1}},"#,
        r#"{"name":"queue","cat":"pdsp","ph":"X","ts":3.5,"dur":1.5,"pid":"local","tid":"count[1]","args":{"trace":7,"span":3,"parent":2}},"#,
        r#"{"name":"process","cat":"pdsp","ph":"X","ts":5.0,"dur":4.0,"pid":"local","tid":"count[1]","args":{"trace":7,"span":4,"parent":3}},"#,
        r#"{"name":"serialize","cat":"pdsp","ph":"X","ts":9.0,"dur":1.0,"pid":"worker1","tid":"wire[2]","args":{"trace":7,"span":5,"parent":4}},"#,
        r#"{"name":"net","cat":"pdsp","ph":"X","ts":10.0,"dur":4.0,"pid":"worker1","tid":"wire[2]","args":{"trace":7,"span":6,"parent":5}},"#,
        r#"{"name":"queue","cat":"pdsp","ph":"X","ts":14.0,"dur":1.0,"pid":"worker1","tid":"sink[2]","args":{"trace":7,"span":7,"parent":6}},"#,
        r#"{"name":"deliver","cat":"pdsp","ph":"X","ts":15.0,"dur":1.0,"pid":"worker1","tid":"sink[2]","args":{"trace":7,"span":8,"parent":7}}"#,
        r#"],"displayTimeUnit":"ms"}"#,
    );
    assert_eq!(json, expected);
}

#[test]
fn chrome_trace_export_sorts_unordered_input() {
    let mut spans = fixture();
    spans.reverse();
    assert_eq!(chrome_trace_json(&spans), chrome_trace_json(&fixture()));
}

#[test]
fn chrome_trace_export_is_valid_json_with_monotone_timestamps() {
    let v: serde_json::Value = serde_json::from_str(&chrome_trace_json(&fixture())).unwrap();
    let events = v["traceEvents"].as_array().unwrap();
    assert_eq!(events.len(), 8);
    let mut prev = f64::MIN;
    for e in events {
        let ts = e["ts"].as_f64().unwrap();
        assert!(ts >= prev, "events sorted by start time");
        assert!(e["dur"].as_f64().unwrap() >= 0.0);
        assert_eq!(e["ph"], "X");
        assert_eq!(e["cat"], "pdsp");
        prev = ts;
    }
}

#[test]
fn empty_span_list_exports_an_empty_event_array() {
    let v: serde_json::Value = serde_json::from_str(&chrome_trace_json(&[])).unwrap();
    assert_eq!(v["traceEvents"].as_array().unwrap().len(), 0);
}

/// Build a random well-formed, causally-timed trace from parallel draw
/// vectors: a root plus one span per draw whose parent is always an
/// earlier span and whose interval starts at or after the parent's end
/// (as real recordings do — a child span cannot begin before the event
/// that caused it finished). The vectors are zipped; `parents` picks the
/// length; `starts` draws the gap after the parent and `ends` the
/// duration.
fn build_trace(
    trace: u64,
    parents: &[usize],
    starts: &[u64],
    ends: &[u64],
    kinds: &[usize],
) -> Vec<Span> {
    const KINDS: [SpanKind; 5] = [
        SpanKind::Batch,
        SpanKind::Queue,
        SpanKind::Process,
        SpanKind::Serialize,
        SpanKind::Net,
    ];
    let mut spans = vec![span(
        trace,
        1,
        None,
        SpanKind::Source,
        "src",
        "local",
        0,
        0,
        0,
    )];
    for (i, &parent_pick) in parents.iter().enumerate() {
        let id = i as u64 + 2;
        let parent = &spans[parent_pick % spans.len()];
        let (pid, start) = (parent.id.0, parent.end_ns + starts[i] % 10_000);
        spans.push(span(
            trace,
            id,
            Some(pid),
            KINDS[kinds[i] % KINDS.len()],
            "op",
            "local",
            0,
            start,
            start + ends[i] % 10_000,
        ));
    }
    spans
}

proptest! {
    /// Assembled trees are acyclic: walking parents from any span
    /// terminates at the root without revisiting a span.
    #[test]
    fn assembled_trees_are_acyclic(
        parents in prop::collection::vec(0usize..24, 0..24),
        starts in prop::collection::vec(0u64..1_000_000, 24),
        ends in prop::collection::vec(0u64..1_000_000, 24),
        kinds in prop::collection::vec(0usize..5, 24),
    ) {
        let spans = build_trace(3, &parents, &starts, &ends, &kinds);
        let trees = assemble(spans);
        prop_assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        let by_id: std::collections::BTreeMap<_, _> =
            tree.spans.iter().map(|s| (s.id, s)).collect();
        for s in &tree.spans {
            let mut seen = std::collections::BTreeSet::new();
            let mut cur = Some(s.id);
            while let Some(id) = cur {
                prop_assert!(seen.insert(id), "parent chain revisits span {:?}", id);
                cur = by_id.get(&id).and_then(|s| s.parent);
            }
        }
    }

    /// A critical path's segments tile the source→sink interval exactly:
    /// gap segments fill every hole, so the sum always equals the total.
    #[test]
    fn critical_path_segments_cover_the_full_interval(
        parents in prop::collection::vec(0usize..24, 0..24),
        starts in prop::collection::vec(0u64..1_000_000, 24),
        ends in prop::collection::vec(0u64..1_000_000, 24),
        kinds in prop::collection::vec(0usize..5, 24),
    ) {
        // Append a sink chained onto an arbitrary existing span so the
        // trace is complete.
        let mut spans = build_trace(9, &parents, &starts, &ends, &kinds);
        let last = spans.last().unwrap();
        let (pid, end) = (last.id.0, last.end_ns);
        spans.push(span(
            9,
            1_000,
            Some(pid),
            SpanKind::Deliver,
            "sink",
            "local",
            0,
            end,
            end + 500,
        ));
        let trees = assemble(spans);
        if let Some(cp) = critical_path(&trees[0]) {
            let sum: u64 = cp.segments.iter().map(|s| s.ns).sum();
            prop_assert_eq!(sum, cp.total_ns, "segments + gaps tile the path");
            for seg in &cp.segments {
                prop_assert!(seg.ns > 0, "zero-width segments are elided");
            }
        }
    }

    /// Every span appears exactly once in the export, as one event.
    #[test]
    fn chrome_export_covers_every_span(
        parents in prop::collection::vec(0usize..24, 0..24),
        starts in prop::collection::vec(0u64..1_000_000, 24),
        ends in prop::collection::vec(0u64..1_000_000, 24),
        kinds in prop::collection::vec(0usize..5, 24),
    ) {
        let spans = build_trace(5, &parents, &starts, &ends, &kinds);
        let json = chrome_trace_json(&spans);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        prop_assert_eq!(events.len(), spans.len());
        let ids: std::collections::BTreeSet<u64> =
            events.iter().map(|e| e["args"]["span"].as_u64().unwrap()).collect();
        prop_assert_eq!(ids.len(), spans.len(), "every span id exported once");
    }
}

// TraceContext is part of the wire schema; keep its shape pinned too.
#[test]
fn trace_context_roundtrips_through_json() {
    let ctx = TraceContext {
        trace: TraceId(42),
        parent: SpanId(7),
    };
    let json = serde_json::to_string(&ctx).unwrap();
    let back: TraceContext = serde_json::from_str(&json).unwrap();
    assert_eq!(back.trace, ctx.trace);
    assert_eq!(back.parent, ctx.parent);
}
