//! Property tests for the log-scale histogram: merging snapshots is
//! associative (exact equality), and quantiles stay within the documented
//! error bound of the exact sample quantiles.

use pdsp_telemetry::histogram::{HistogramSnapshot, QUANTILE_RELATIVE_ERROR};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let mut s = HistogramSnapshot::new();
    for &v in values {
        s.record(v);
    }
    s
}

/// Exact sample quantile with the same rank convention the histogram uses.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), field-for-field.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000_000, 0..80),
        b in prop::collection::vec(0u64..1_000_000_000, 0..80),
        c in prop::collection::vec(0u64..1_000_000_000, 0..80),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging per-shard snapshots equals recording the combined stream.
    #[test]
    fn merge_equals_combined_recording(
        a in prop::collection::vec(0u64..1_000_000_000, 0..120),
        b in prop::collection::vec(0u64..1_000_000_000, 0..120),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let mut combined: Vec<u64> = a.clone();
        combined.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&combined));
    }

    /// Every quantile is within the documented relative error (plus one
    /// unit absolute, covering the integer-valued exact region).
    #[test]
    fn quantiles_within_documented_error(
        mut values in prop::collection::vec(0u64..10_000_000_000, 1..300),
        q_pct in 0u64..=100,
    ) {
        let s = snapshot_of(&values);
        values.sort_unstable();
        let q = q_pct as f64 / 100.0;
        let exact = exact_quantile(&values, q);
        let approx = s.quantile(q);
        let bound = exact as f64 * QUANTILE_RELATIVE_ERROR + 1.0;
        let err = (approx as f64 - exact as f64).abs();
        prop_assert!(
            err <= bound,
            "q={q}: approx {approx} vs exact {exact} (err {err} > bound {bound})"
        );
    }

    /// count/sum/min/max are exact regardless of bucketing.
    #[test]
    fn aggregates_are_exact(
        values in prop::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        let s = snapshot_of(&values);
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        prop_assert_eq!(s.min, *values.iter().min().unwrap());
        prop_assert_eq!(s.max, *values.iter().max().unwrap());
    }
}
