//! Synthetic data-stream generation.
//!
//! Streams vary over tuple width, per-field data types, and event rate
//! (Table 3), with Poisson (default) or Zipf-keyed content — the domain
//! randomization the paper borrows from ML training practice (§3.1).

use crate::distributions::{PoissonGaps, Zipf};
use crate::space::ParameterSpace;
use pdsp_engine::runtime::SourceFactory;
use pdsp_engine::value::{FieldType, Schema, Tuple, Value};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Key-skew model for generated values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Skew {
    /// Uniform values.
    Uniform,
    /// Zipf-skewed values with the given exponent.
    Zipf(f64),
}

/// Configuration of one synthetic stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Tuple schema.
    pub schema: Schema,
    /// Events per second (drives event-time spacing).
    pub event_rate: f64,
    /// Number of tuples each full stream carries.
    pub total_tuples: usize,
    /// Distinct values per integer/string field (key cardinality).
    pub cardinality: u64,
    /// Value skew.
    pub skew: Skew,
    /// Maximum backwards event-time jitter in ms (0 = perfectly ordered).
    /// Models real feeds where tuples arrive up to this much out of order.
    pub out_of_order_ms: u64,
    /// RNG seed.
    pub seed: u64,
}

impl StreamConfig {
    /// A reasonable default stream: 4-field mixed schema, 10k tuples at
    /// 10k ev/s.
    pub fn example() -> Self {
        StreamConfig {
            schema: Schema::of(&[
                FieldType::Int,
                FieldType::Double,
                FieldType::Str,
                FieldType::Int,
            ]),
            event_rate: 10_000.0,
            total_tuples: 10_000,
            cardinality: 100,
            skew: Skew::Uniform,
            out_of_order_ms: 0,
            seed: 7,
        }
    }

    /// Draw a random stream config from the parameter space (tuple width,
    /// field types, event rate).
    pub fn random(space: &ParameterSpace, rng: &mut impl Rng, total_tuples: usize) -> Self {
        let width = space.tuple_widths[rng.gen_range(0..space.tuple_widths.len())];
        let types: Vec<FieldType> = (0..width)
            .map(|_| space.field_types[rng.gen_range(0..space.field_types.len())])
            .collect();
        let event_rate = space.event_rates[rng.gen_range(0..space.event_rates.len())];
        StreamConfig {
            schema: Schema::of(&types),
            event_rate,
            total_tuples,
            cardinality: *[10u64, 100, 1_000, 10_000]
                .get(rng.gen_range(0..4))
                .unwrap(),
            skew: if rng.gen_bool(0.5) {
                Skew::Uniform
            } else {
                Skew::Zipf(1.1)
            },
            out_of_order_ms: if rng.gen_bool(0.75) { 0 } else { 50 },
            seed: rng.gen(),
        }
    }
}

/// A deterministic synthetic stream: implements the engine's
/// [`SourceFactory`] so it can feed the threaded runtime directly, and
/// offers [`SyntheticStream::sample`] for selectivity estimation.
pub struct SyntheticStream {
    config: StreamConfig,
    zipf: Option<Zipf>,
}

impl SyntheticStream {
    /// Build a stream for the config.
    pub fn new(config: StreamConfig) -> Arc<Self> {
        let zipf = match config.skew {
            Skew::Zipf(s) => Some(Zipf::new(config.cardinality.max(1), s)),
            Skew::Uniform => None,
        };
        Arc::new(SyntheticStream { config, zipf })
    }

    /// The stream's config.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    fn gen_value(&self, ty: FieldType, rng: &mut ChaCha8Rng) -> Value {
        let card = self.config.cardinality.max(1);
        let key = match &self.zipf {
            Some(z) => z.sample(rng) - 1,
            None => rng.gen_range(0..card),
        };
        match ty {
            FieldType::Int => Value::Int(key as i64),
            FieldType::Double => Value::Double(rng.gen_range(0.0..1000.0)),
            FieldType::Str => Value::str(format!("k{key}")),
            FieldType::Bool => Value::Bool(rng.gen_bool(0.5)),
            FieldType::Timestamp => Value::Timestamp(rng.gen_range(0..1_000_000)),
        }
    }

    /// Generate `n` sample tuples (for selectivity estimation); event times
    /// follow the Poisson arrival process.
    pub fn sample(&self, n: usize) -> Vec<Tuple> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let gaps = PoissonGaps::for_rate(self.config.event_rate);
        let mut t_ns = 0.0f64;
        (0..n)
            .map(|_| {
                t_ns += gaps.next_gap_ns(&mut rng);
                let values = self
                    .config
                    .schema
                    .fields
                    .iter()
                    .map(|f| self.gen_value(f.ty, &mut rng))
                    .collect();
                let mut et = (t_ns / 1e6) as i64;
                if self.config.out_of_order_ms > 0 {
                    et -= rng.gen_range(0..=self.config.out_of_order_ms) as i64;
                }
                Tuple::at(values, et.max(0))
            })
            .collect()
    }
}

impl SourceFactory for SyntheticStream {
    fn instance_iter(
        &self,
        instance_index: usize,
        parallelism: usize,
    ) -> Box<dyn Iterator<Item = Tuple> + Send> {
        // Each instance draws an independent seeded substream of
        // total/parallelism tuples; event rate is split across instances so
        // the combined stream matches the configured rate.
        let count = self.config.total_tuples / parallelism.max(1);
        let rate = self.config.event_rate / parallelism.max(1) as f64;
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.config
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(instance_index as u64 + 1)),
        );
        let gaps = PoissonGaps::for_rate(rate.max(1e-3));
        let schema = self.config.schema.clone();
        let this = SyntheticStream {
            config: self.config.clone(),
            zipf: self.zipf.clone(),
        };
        let mut t_ns = 0.0f64;
        let ooo = self.config.out_of_order_ms;
        Box::new((0..count).map(move |_| {
            t_ns += gaps.next_gap_ns(&mut rng);
            let values = schema
                .fields
                .iter()
                .map(|f| this.gen_value(f.ty, &mut rng))
                .collect();
            let mut et = (t_ns / 1e6) as i64;
            if ooo > 0 {
                et -= rng.gen_range(0..=ooo) as i64;
            }
            Tuple::at(values, et.max(0))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_matches_schema() {
        let stream = SyntheticStream::new(StreamConfig::example());
        let sample = stream.sample(100);
        assert_eq!(sample.len(), 100);
        for t in &sample {
            assert!(stream.config().schema.matches(t), "tuple {t:?}");
        }
    }

    #[test]
    fn event_times_are_monotone_and_rate_consistent() {
        let mut cfg = StreamConfig::example();
        cfg.event_rate = 1_000.0; // 1 tuple/ms
        let stream = SyntheticStream::new(cfg);
        let sample = stream.sample(5_000);
        let times: Vec<i64> = sample.iter().map(|t| t.event_time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let span_ms = (times[4_999] - times[0]) as f64;
        assert!(
            (span_ms - 5_000.0).abs() / 5_000.0 < 0.1,
            "5000 tuples at 1k/s should span ~5000ms, got {span_ms}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = StreamConfig::example();
        let a = SyntheticStream::new(cfg.clone()).sample(50);
        let b = SyntheticStream::new(cfg).sample(50);
        assert_eq!(a, b);
    }

    #[test]
    fn instances_split_volume() {
        let stream = SyntheticStream::new(StreamConfig::example());
        let total: usize = (0..4).map(|i| stream.instance_iter(i, 4).count()).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn out_of_order_jitter_disorders_event_times() {
        let mut cfg = StreamConfig::example();
        cfg.event_rate = 1_000.0;
        cfg.out_of_order_ms = 50;
        let stream = SyntheticStream::new(cfg);
        let sample = stream.sample(2_000);
        let inversions = sample
            .windows(2)
            .filter(|w| w[0].event_time > w[1].event_time)
            .count();
        assert!(inversions > 0, "jitter must produce disorder");
        // Disorder is bounded: no tuple is displaced further than the
        // configured jitter relative to the arrival order trend.
        let max_regress = sample
            .windows(2)
            .map(|w| (w[0].event_time - w[1].event_time).max(0))
            .max()
            .unwrap();
        assert!(max_regress <= 50, "regress {max_regress} within bound");
    }

    #[test]
    fn zipf_skew_concentrates_keys() {
        let mut cfg = StreamConfig::example();
        cfg.skew = Skew::Zipf(1.5);
        cfg.schema = Schema::of(&[FieldType::Int]);
        let stream = SyntheticStream::new(cfg);
        let sample = stream.sample(10_000);
        let zero_count = sample
            .iter()
            .filter(|t| t.values[0] == Value::Int(0))
            .count();
        assert!(
            zero_count > 1_500,
            "rank-1 key should dominate under zipf 1.5: {zero_count}"
        );
    }

    #[test]
    fn random_config_stays_in_space() {
        let space = ParameterSpace::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..50 {
            let cfg = StreamConfig::random(&space, &mut rng, 1_000);
            assert!(space.tuple_widths.contains(&cfg.schema.width()));
            assert!(space.event_rates.contains(&cfg.event_rate));
        }
    }
}
