//! Sampling distributions for stream generation.
//!
//! The paper models event arrivals as Poisson ("many real-world
//! applications, e.g., network traffic, sensor networks, are poisson
//! distributed", §4) and also supports Zipf for skewed key popularity.
//! Implemented by hand (inversion / rejection) so the only RNG dependency
//! is the seedable generator itself.

use rand::Rng;

/// A discrete sampling distribution over `0..n`.
#[derive(Debug, Clone)]
pub enum Distribution {
    /// Every value equally likely.
    Uniform {
        /// Exclusive upper bound.
        n: u64,
    },
    /// Zipf-distributed ranks (1 is most popular), mapped to `0..n`.
    Zipf(Zipf),
}

impl Distribution {
    /// Sample one value in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        match self {
            Distribution::Uniform { n } => rng.gen_range(0..(*n).max(1)),
            Distribution::Zipf(z) => z.sample(rng) - 1,
        }
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`: P(k) ∝ k^-s.
///
/// Exact inverse-CDF sampling over a precomputed cumulative table with
/// binary search — O(n) memory at construction, O(log n) per sample, which
/// is the right trade-off for the key-cardinality ranges the generator uses
/// (up to ~1e6 keys).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Zipf over `1..=n` with exponent `s > 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "zipf needs n >= 1");
        assert!(s > 0.0, "zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `1..=n`.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as u64
    }
}

/// Poisson-process inter-arrival gap generator: exponentially distributed
/// gaps with the given mean (nanoseconds).
#[derive(Debug, Clone)]
pub struct PoissonGaps {
    mean_gap_ns: f64,
}

impl PoissonGaps {
    /// Gaps for an arrival rate of `rate` events/second.
    pub fn for_rate(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        PoissonGaps {
            mean_gap_ns: 1e9 / rate,
        }
    }

    /// Sample the next gap in nanoseconds.
    pub fn next_gap_ns(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.gen_range(1e-12..1.0);
        -self.mean_gap_ns * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn poisson_gaps_have_right_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let gaps = PoissonGaps::for_rate(1000.0); // mean 1ms = 1e6 ns
        let n = 20_000;
        let total: f64 = (0..n).map(|_| gaps.next_gap_ns(&mut rng)).sum();
        let mean = total / n as f64;
        assert!(
            (mean - 1e6).abs() / 1e6 < 0.03,
            "mean gap {mean} should be ~1e6"
        );
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let z = Zipf::new(100, 1.2);
        let mut counts = vec![0u64; 101];
        for _ in 0..50_000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
            counts[k as usize] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[1] > counts[10] * 5);
    }

    #[test]
    fn zipf_handles_s_equal_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let z = Zipf::new(50, 1.0);
        for _ in 0..5_000 {
            let k = z.sample(&mut rng);
            assert!((1..=50).contains(&k));
        }
    }

    #[test]
    fn uniform_covers_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let d = Distribution::Uniform { n: 10 };
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[d.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(1000, 0.9);
        let a: Vec<u64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
