//! Parallelism enumeration strategies (§3.1).
//!
//! Random degrees make noisy or outright bad PQPs (one filter instance
//! starving sixteen join instances); the paper therefore offers six
//! strategies, from pure randomness to the rule-based scheme following
//! Kalavri et al.'s "three steps is all you need" (DS2): size each
//! operator's degree to its expected service demand.

use pdsp_engine::operator::OpKind;
use pdsp_engine::plan::LogicalPlan;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The six strategies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnumerationStrategy {
    /// Uniformly random degree per operator.
    Random,
    /// Demand-driven degrees (DS2-style) with bounded exploration around
    /// the computed optimum.
    RuleBased,
    /// Cartesian product of all allowed degrees (capped by `count`).
    Exhaustive,
    /// Cycle through minimum, average, and maximum degrees.
    MinAvgMax,
    /// Uniform assignments stepping through the allowed ladder.
    Increasing,
    /// User-provided degrees (rapid testing).
    ParameterBased(Vec<usize>),
}

/// Enumerates parallelism-degree assignments for a plan.
pub struct ParallelismEnumerator {
    /// Allowed degrees (ascending).
    pub degrees: Vec<usize>,
    /// Total cores available — degrees above this are never produced.
    pub max_cores: usize,
    /// Reference clock (GHz) for the rule-based demand computation.
    pub clock_ghz: f64,
    rng: ChaCha8Rng,
}

impl ParallelismEnumerator {
    /// Enumerator over `degrees`, capped at `max_cores`, seeded.
    pub fn new(mut degrees: Vec<usize>, max_cores: usize, seed: u64) -> Self {
        degrees.sort_unstable();
        degrees.dedup();
        ParallelismEnumerator {
            degrees,
            max_cores,
            clock_ghz: 2.0,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    fn allowed(&self) -> Vec<usize> {
        self.degrees
            .iter()
            .copied()
            .filter(|&d| d <= self.max_cores)
            .collect()
    }

    /// Indices of operator nodes whose degree is enumerated: everything but
    /// sources, sinks, and operators whose semantics pin them to a single
    /// instance (global aggregations, global-view UDOs) — enumerating those
    /// only produces assignments the analyzer then rejects.
    fn tunable(plan: &LogicalPlan) -> Vec<usize> {
        plan.nodes
            .iter()
            .filter(|n| !matches!(n.kind, OpKind::Source { .. } | OpKind::Sink))
            .filter(|n| n.kind.max_useful_parallelism() != Some(1))
            .map(|n| n.id)
            .collect()
    }

    /// Produce up to `count` degree assignments (each a full per-node degree
    /// vector; untuned nodes keep their plan value).
    pub fn enumerate(
        &mut self,
        plan: &LogicalPlan,
        strategy: &EnumerationStrategy,
        event_rate: f64,
        count: usize,
    ) -> Vec<Vec<usize>> {
        let base: Vec<usize> = plan.nodes.iter().map(|n| n.parallelism).collect();
        let tunable = Self::tunable(plan);
        let allowed = self.allowed();
        if allowed.is_empty() || tunable.is_empty() {
            return vec![base];
        }
        match strategy {
            EnumerationStrategy::Random => (0..count)
                .map(|_| {
                    let mut v = base.clone();
                    for &i in &tunable {
                        v[i] = allowed[self.rng.gen_range(0..allowed.len())];
                    }
                    v
                })
                .collect(),
            EnumerationStrategy::RuleBased => {
                let optimal = self.rule_based_degrees(plan, event_rate);
                (0..count)
                    .map(|_| {
                        let mut v = base.clone();
                        for &i in &tunable {
                            // Explore around the optimum: x0.75 .. x1.5,
                            // snapped to the allowed ladder.
                            let jitter = self.rng.gen_range(0.75..1.5);
                            let target = ((optimal[i] as f64 * jitter).round() as usize).max(1);
                            v[i] = snap(&allowed, target);
                        }
                        v
                    })
                    .collect()
            }
            EnumerationStrategy::Exhaustive => {
                let mut out = Vec::new();
                let k = tunable.len();
                let mut idx = vec![0usize; k];
                'outer: loop {
                    let mut v = base.clone();
                    for (j, &i) in tunable.iter().enumerate() {
                        v[i] = allowed[idx[j]];
                    }
                    out.push(v);
                    if out.len() >= count {
                        break;
                    }
                    // Odometer increment.
                    let mut j = 0;
                    loop {
                        idx[j] += 1;
                        if idx[j] < allowed.len() {
                            break;
                        }
                        idx[j] = 0;
                        j += 1;
                        if j == k {
                            break 'outer;
                        }
                    }
                }
                out
            }
            EnumerationStrategy::MinAvgMax => {
                let min = *allowed.first().unwrap();
                let max = *allowed.last().unwrap();
                let avg = snap(&allowed, (min + max) / 2);
                let ladder = [min, avg, max];
                (0..count)
                    .map(|c| {
                        let mut v = base.clone();
                        for &i in &tunable {
                            v[i] = ladder[c % 3];
                        }
                        v
                    })
                    .collect()
            }
            EnumerationStrategy::Increasing => allowed
                .iter()
                .take(count)
                .map(|&d| {
                    let mut v = base.clone();
                    for &i in &tunable {
                        v[i] = d;
                    }
                    v
                })
                .collect(),
            EnumerationStrategy::ParameterBased(degrees) => {
                let mut v = base.clone();
                for (slot, &i) in tunable.iter().enumerate() {
                    if let Some(&d) = degrees.get(slot) {
                        v[i] = d.max(1);
                    }
                }
                vec![v]
            }
        }
    }

    /// Like [`enumerate`](Self::enumerate), but every assignment is
    /// additionally vetted: the candidate plan must pass `validate()` and
    /// carry zero Error-severity diagnostics from the static analyzer.
    /// Assignments that fail are dropped, so the result may hold fewer than
    /// `count` entries.
    pub fn enumerate_valid(
        &mut self,
        plan: &LogicalPlan,
        strategy: &EnumerationStrategy,
        event_rate: f64,
        count: usize,
    ) -> Vec<Vec<usize>> {
        let analyzer = pdsp_analyze::Analyzer::new();
        self.enumerate(plan, strategy, event_rate, count)
            .into_iter()
            .filter(|assignment| {
                let mut candidate = plan.clone();
                for (id, &degree) in assignment.iter().enumerate() {
                    candidate.nodes[id].parallelism = degree;
                }
                let accepted = candidate.validate().is_ok()
                    && analyzer
                        .analyze("candidate", &candidate)
                        .map(|r| r.errors() == 0)
                        .unwrap_or(false);
                #[cfg(debug_assertions)]
                if accepted {
                    // Degree choices never change tuple types, so every
                    // accepted assignment must still carry a clean and
                    // complete schema flow.
                    let flow = pdsp_engine::schema_flow::SchemaFlow::infer(&candidate)
                        .expect("accepted candidate infers schemas");
                    debug_assert!(
                        flow.is_clean() && flow.is_complete(),
                        "accepted assignment breaks schema flow: {:?}",
                        flow.issues
                    );
                }
                accepted
            })
            .collect()
    }

    /// DS2-style demand-based degrees: propagate rates through the plan,
    /// convert each operator's rate to CPU demand via its cost profile, and
    /// size the degree to demand with 25% headroom.
    pub fn rule_based_degrees(&self, plan: &LogicalPlan, event_rate: f64) -> Vec<usize> {
        let order = plan.topo_order().expect("validated plan");
        let sources = plan.sources();
        let mut out_rate = vec![0.0f64; plan.nodes.len()];
        let mut degrees = vec![1usize; plan.nodes.len()];
        for id in order {
            let node = &plan.nodes[id];
            let input: f64 = if sources.contains(&id) {
                event_rate
            } else {
                plan.in_edges(id).iter().map(|e| out_rate[e.from]).sum()
            };
            let profile = node.kind.cost_profile();
            out_rate[id] = input * profile.selectivity.min(64.0);
            let service_sec = profile.cpu_ns_per_tuple / self.clock_ghz * 1e-9;
            let demand = input * service_sec; // busy cores needed
            degrees[id] = ((demand * 1.25).ceil() as usize).clamp(1, self.max_cores.max(1));
        }
        degrees
    }
}

/// Snap a target degree to the nearest allowed value.
fn snap(allowed: &[usize], target: usize) -> usize {
    *allowed
        .iter()
        .min_by_key(|&&d| d.abs_diff(target))
        .expect("allowed non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsp_engine::expr::Predicate;
    use pdsp_engine::value::{FieldType, Schema};
    use pdsp_engine::window::WindowSpec;
    use pdsp_engine::PlanBuilder;

    fn test_plan() -> LogicalPlan {
        PlanBuilder::new()
            .source("src", Schema::of(&[FieldType::Int, FieldType::Double]), 1)
            .filter("f", Predicate::True, 0.5)
            .window_agg_keyed(
                "agg",
                WindowSpec::tumbling_count(100),
                pdsp_engine::agg::AggFunc::Sum,
                1,
                0,
            )
            .sink("sink")
            .build()
            .unwrap()
    }

    fn enumerator() -> ParallelismEnumerator {
        ParallelismEnumerator::new(vec![1, 2, 4, 8, 16, 32, 64, 128], 80, 9)
    }

    #[test]
    fn random_respects_allowed_set_and_fixed_nodes() {
        let plan = test_plan();
        let mut e = enumerator();
        let assignments = e.enumerate(&plan, &EnumerationStrategy::Random, 1e5, 20);
        assert_eq!(assignments.len(), 20);
        for a in &assignments {
            assert_eq!(a[0], 1, "source untouched");
            assert_eq!(a[3], 1, "sink untouched");
            assert!(e.allowed().contains(&a[1]));
            assert!(a[1] <= 80, "capped by cores");
        }
    }

    #[test]
    fn rule_based_scales_with_event_rate() {
        let plan = test_plan();
        let e = enumerator();
        let low = e.rule_based_degrees(&plan, 1_000.0);
        let high = e.rule_based_degrees(&plan, 4_000_000.0);
        // The window aggregation (~1.3us/tuple) needs more instances at 4M
        // ev/s; the cheap filter may still fit on one core.
        assert!(high[2] > low[2], "agg degree grows with rate");
        assert!(high[1] >= low[1]);
    }

    #[test]
    fn rule_based_gives_heavier_ops_more_instances() {
        // A join costs ~60x a filter per tuple, so at equal input rates its
        // demanded degree must be at least as high.
        let mut b = PlanBuilder::new();
        let s1 = b.add_node(
            "s1",
            OpKind::Source {
                schema: Schema::of(&[FieldType::Int]),
            },
            1,
        );
        let s2 = b.add_node(
            "s2",
            OpKind::Source {
                schema: Schema::of(&[FieldType::Int]),
            },
            1,
        );
        let plan = b
            .join("j", s1, s2, WindowSpec::tumbling_time(500), 0, 0)
            .sink("k")
            .build()
            .unwrap();
        let e = enumerator();
        let d = e.rule_based_degrees(&plan, 200_000.0);
        assert!(d[2] >= 4, "join demand at 400k tuples/s: got {}", d[2]);
    }

    #[test]
    fn exhaustive_covers_cartesian_product() {
        let plan = test_plan();
        let mut e = ParallelismEnumerator::new(vec![1, 2], 80, 9);
        let assignments = e.enumerate(&plan, &EnumerationStrategy::Exhaustive, 1e5, 100);
        // 2 tunable operators x 2 degrees = 4 combinations.
        assert_eq!(assignments.len(), 4);
        let unique: std::collections::HashSet<Vec<usize>> = assignments.iter().cloned().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn min_avg_max_cycles() {
        let plan = test_plan();
        let mut e = enumerator();
        let a = e.enumerate(&plan, &EnumerationStrategy::MinAvgMax, 1e5, 6);
        assert_eq!(a[0][1], 1);
        assert_eq!(a[2][1], 64, "largest allowed degree under the 80-core cap");
        assert_eq!(a[3][1], a[0][1], "cycle repeats");
    }

    #[test]
    fn increasing_is_monotone() {
        let plan = test_plan();
        let mut e = enumerator();
        let a = e.enumerate(&plan, &EnumerationStrategy::Increasing, 1e5, 10);
        let filter_degrees: Vec<usize> = a.iter().map(|v| v[1]).collect();
        assert!(filter_degrees.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn parameter_based_applies_user_degrees() {
        let plan = test_plan();
        let mut e = enumerator();
        let a = e.enumerate(
            &plan,
            &EnumerationStrategy::ParameterBased(vec![16, 8]),
            1e5,
            1,
        );
        assert_eq!(a.len(), 1);
        assert_eq!(a[0][1], 16);
        assert_eq!(a[0][2], 8);
    }

    #[test]
    fn global_operators_are_not_enumerated() {
        // A global (unkeyed) aggregation caps at one useful instance; the
        // enumerator must leave its degree alone instead of producing
        // assignments the analyzer would reject.
        let plan = PlanBuilder::new()
            .source("src", Schema::of(&[FieldType::Int, FieldType::Double]), 1)
            .filter("f", Predicate::True, 0.5)
            .window_agg_global(
                "global-agg",
                WindowSpec::tumbling_count(100),
                pdsp_engine::agg::AggFunc::Sum,
                1,
            )
            .sink("sink")
            .build()
            .unwrap();
        let mut e = enumerator();
        let assignments = e.enumerate(&plan, &EnumerationStrategy::Random, 1e5, 20);
        for a in &assignments {
            assert_eq!(a[2], 1, "global aggregation stays at its plan degree");
            assert!(e.allowed().contains(&a[1]), "filter is still tuned");
        }
    }

    #[test]
    fn enumerate_valid_drops_analyzer_rejected_assignments() {
        use pdsp_engine::plan::Partitioning;
        // Keyed aggregation fed by a rebalance edge: safe only at degree 1,
        // an Error at any higher degree.
        let mut b = PlanBuilder::new();
        let s = b.add_node(
            "src",
            OpKind::Source {
                schema: Schema::of(&[FieldType::Int, FieldType::Double]),
            },
            1,
        );
        let a = b.add_node(
            "agg",
            OpKind::WindowAggregate {
                window: WindowSpec::tumbling_count(8),
                func: pdsp_engine::agg::AggFunc::Sum,
                agg_field: 1,
                key_field: Some(0),
            },
            1,
        );
        let k = b.add_node("sink", OpKind::Sink, 1);
        b.add_edge(s, a, 0, Partitioning::Rebalance);
        b.add_edge(a, k, 0, Partitioning::Rebalance);
        let plan = b.build_unchecked();

        let mut e = enumerator();
        let raw = e.enumerate(&plan, &EnumerationStrategy::Increasing, 1e5, 4);
        assert!(raw.len() > 1, "raw enumeration produces several degrees");
        let mut e = enumerator();
        let valid = e.enumerate_valid(&plan, &EnumerationStrategy::Increasing, 1e5, 4);
        assert_eq!(valid.len(), 1, "only the degree-1 assignment survives");
        assert!(valid[0].iter().all(|&d| d == 1));
    }

    #[test]
    fn snap_picks_nearest() {
        assert_eq!(snap(&[1, 4, 8, 64], 6), 4);
        assert_eq!(snap(&[1, 4, 8, 64], 7), 8);
        assert_eq!(snap(&[1, 4, 8, 64], 500), 64);
    }
}
