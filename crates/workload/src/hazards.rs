//! Adversarial workload generators for overload and chaos testing.
//!
//! Each [`HazardKind`] produces a stream shaped to trip one rung of the
//! engine's overload ladder or one late-data path:
//!
//! * **Hot key** — one key receives a configured fraction of all tuples
//!   (≥ 50% reproduces the paper's worst skew), starving every other key
//!   group's instance while one drowns;
//! * **Burst train** — alternating bursts and quiet periods: event-time
//!   arrival rate oscillates between a burst rate and the base rate,
//!   stressing queue occupancy and recovery;
//! * **Late storm** — during a window of the stream a fraction of tuples
//!   carries event times far behind the frontier, exercising watermark
//!   lateness handling and the late-data accounting.
//!
//! Streams are deterministic per seed (ChaCha8, like the rest of the
//! workload crate) and implement the engine's [`SourceFactory`], emitting
//! `[Int key, Double value]` tuples.

use pdsp_engine::runtime::SourceFactory;
use pdsp_engine::value::{FieldType, Schema, Tuple, Value};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which adversarial shape to generate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HazardKind {
    /// One hot key (key 0) receives `hot_fraction` of all tuples; the rest
    /// are uniform over `1..cardinality`.
    HotKey {
        /// Fraction of tuples carrying the hot key (0..=1).
        hot_fraction: f64,
        /// Total distinct keys including the hot one.
        cardinality: u64,
    },
    /// Alternating bursts and quiet periods: `burst_len` tuples arrive at
    /// `burst_rate`, then `quiet_len` tuples at the base event rate.
    BurstTrain {
        /// Tuples per burst.
        burst_len: usize,
        /// Tuples per quiet period.
        quiet_len: usize,
        /// Arrival rate during bursts (tuples/s), typically far above the
        /// base rate.
        burst_rate: f64,
    },
    /// During the `[storm_start, storm_end)` fraction of the stream,
    /// `late_fraction` of tuples carries event times `lateness_ms` behind
    /// the frontier.
    LateStorm {
        /// Fraction of in-storm tuples arriving late (0..=1).
        late_fraction: f64,
        /// How far behind the event-time frontier late tuples land.
        lateness_ms: i64,
        /// Storm start as a fraction of the stream (0..=1).
        storm_start: f64,
        /// Storm end as a fraction of the stream (0..=1).
        storm_end: f64,
    },
}

impl HazardKind {
    /// Stable scenario label for reports and artifact keys.
    pub fn label(&self) -> &'static str {
        match self {
            HazardKind::HotKey { .. } => "hot_key",
            HazardKind::BurstTrain { .. } => "burst_train",
            HazardKind::LateStorm { .. } => "late_storm",
        }
    }
}

/// Configuration of one hazard stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HazardConfig {
    /// The adversarial shape.
    pub kind: HazardKind,
    /// Total tuples across all source instances.
    pub total_tuples: usize,
    /// Base event rate in tuples/s (event-time spacing outside bursts).
    pub event_rate: f64,
    /// Distinct non-hot key cardinality for value generation.
    pub cardinality: u64,
    /// RNG seed: the same seed reproduces the exact same stream.
    pub seed: u64,
}

impl HazardConfig {
    /// Canonical Zipf-like hot-key scenario: one key takes 60% of traffic.
    pub fn hot_key(seed: u64) -> Self {
        HazardConfig {
            kind: HazardKind::HotKey {
                hot_fraction: 0.6,
                cardinality: 100,
            },
            total_tuples: 20_000,
            event_rate: 10_000.0,
            cardinality: 100,
            seed,
        }
    }

    /// Canonical burst-train scenario: 20x rate bursts.
    pub fn burst_train(seed: u64) -> Self {
        HazardConfig {
            kind: HazardKind::BurstTrain {
                burst_len: 2_000,
                quiet_len: 2_000,
                burst_rate: 200_000.0,
            },
            total_tuples: 20_000,
            event_rate: 10_000.0,
            cardinality: 100,
            seed,
        }
    }

    /// Canonical late-storm scenario: the middle third of the stream sends
    /// 40% of tuples 500ms late.
    pub fn late_storm(seed: u64) -> Self {
        HazardConfig {
            kind: HazardKind::LateStorm {
                late_fraction: 0.4,
                lateness_ms: 500,
                storm_start: 1.0 / 3.0,
                storm_end: 2.0 / 3.0,
            },
            total_tuples: 20_000,
            event_rate: 10_000.0,
            cardinality: 100,
            seed,
        }
    }

    /// The three canonical scenarios (hot key, burst train, late storm).
    pub fn canonical_suite(seed: u64) -> Vec<HazardConfig> {
        vec![
            HazardConfig::hot_key(seed),
            HazardConfig::burst_train(seed.wrapping_add(1)),
            HazardConfig::late_storm(seed.wrapping_add(2)),
        ]
    }
}

/// The generated stream: `[Int key, Double value]` tuples shaped by the
/// configured hazard. Implements [`SourceFactory`].
pub struct HazardStream {
    config: HazardConfig,
}

impl HazardStream {
    /// Build a stream for the config.
    pub fn new(config: HazardConfig) -> Arc<Self> {
        Arc::new(HazardStream { config })
    }

    /// The stream's config.
    pub fn config(&self) -> &HazardConfig {
        &self.config
    }

    /// The fixed output schema: `[Int key, Double value]`.
    pub fn schema() -> Schema {
        Schema::of(&[FieldType::Int, FieldType::Double])
    }

    /// Generate the substream for one instance: `count` tuples, seeded per
    /// instance, with event-time spacing derived from the rates.
    fn generate(&self, instance: usize, count: usize, rate_divisor: f64) -> Vec<Tuple> {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(
            cfg.seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(instance as u64 + 1)),
        );
        let base_gap_ms = 1_000.0 / (cfg.event_rate / rate_divisor).max(1e-3);
        let mut t_ms = 0.0f64;
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let (key, gap_ms, mut late_by) = match &cfg.kind {
                HazardKind::HotKey {
                    hot_fraction,
                    cardinality,
                } => {
                    let key = if rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
                        0
                    } else {
                        rng.gen_range(1..(*cardinality).max(2)) as i64
                    };
                    (key, base_gap_ms, 0)
                }
                HazardKind::BurstTrain {
                    burst_len,
                    quiet_len,
                    burst_rate,
                } => {
                    let cycle = (burst_len + quiet_len).max(1);
                    let in_burst = i % cycle < *burst_len;
                    let gap = if in_burst {
                        1_000.0 / (burst_rate / rate_divisor).max(1e-3)
                    } else {
                        base_gap_ms
                    };
                    (rng.gen_range(0..cfg.cardinality.max(1)) as i64, gap, 0)
                }
                HazardKind::LateStorm {
                    late_fraction,
                    lateness_ms,
                    storm_start,
                    storm_end,
                } => {
                    let pos = i as f64 / count.max(1) as f64;
                    let late = pos >= *storm_start
                        && pos < *storm_end
                        && rng.gen_bool(late_fraction.clamp(0.0, 1.0));
                    (
                        rng.gen_range(0..cfg.cardinality.max(1)) as i64,
                        base_gap_ms,
                        if late { *lateness_ms } else { 0 },
                    )
                }
            };
            t_ms += gap_ms;
            late_by = late_by.max(0);
            let et = (t_ms as i64 - late_by).max(0);
            out.push(Tuple::at(
                vec![Value::Int(key), Value::Double(rng.gen_range(0.0..100.0))],
                et,
            ));
        }
        out
    }
}

impl SourceFactory for HazardStream {
    fn instance_iter(
        &self,
        instance_index: usize,
        parallelism: usize,
    ) -> Box<dyn Iterator<Item = Tuple> + Send> {
        let count = self.config.total_tuples / parallelism.max(1);
        let tuples = self.generate(instance_index, count, parallelism.max(1) as f64);
        Box::new(tuples.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(cfg: HazardConfig) -> Vec<Tuple> {
        HazardStream::new(cfg).instance_iter(0, 1).collect()
    }

    #[test]
    fn hot_key_concentrates_to_fraction() {
        let tuples = collect(HazardConfig::hot_key(7));
        let hot = tuples
            .iter()
            .filter(|t| t.values[0] == Value::Int(0))
            .count() as f64;
        let frac = hot / tuples.len() as f64;
        assert!(
            (frac - 0.6).abs() < 0.03,
            "hot key should take ~60% of traffic, got {frac}"
        );
    }

    #[test]
    fn burst_train_alternates_arrival_density() {
        let tuples = collect(HazardConfig::burst_train(7));
        // First 2000 tuples are a burst at 200k/s (0.005ms gaps); the next
        // 2000 are quiet at 10k/s (0.1ms gaps).
        let burst_span = tuples[1_999].event_time - tuples[0].event_time;
        let quiet_span = tuples[3_999].event_time - tuples[2_000].event_time;
        assert!(
            quiet_span > burst_span * 5,
            "quiet span {quiet_span}ms must dwarf burst span {burst_span}ms"
        );
    }

    #[test]
    fn late_storm_regresses_event_times_mid_stream() {
        let tuples = collect(HazardConfig::late_storm(7));
        let n = tuples.len();
        let inversions = |range: std::ops::Range<usize>| {
            tuples[range]
                .windows(2)
                .filter(|w| w[0].event_time > w[1].event_time + 100)
                .count()
        };
        assert_eq!(inversions(0..n / 3), 0, "pre-storm stream is ordered");
        assert!(
            inversions(n / 3..2 * n / 3) > 100,
            "storm produces deep inversions"
        );
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a = collect(HazardConfig::hot_key(42));
        let b = collect(HazardConfig::hot_key(42));
        let c = collect(HazardConfig::hot_key(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn instances_split_volume() {
        let stream = HazardStream::new(HazardConfig::burst_train(7));
        let total: usize = (0..4).map(|i| stream.instance_iter(i, 4).count()).sum();
        assert_eq!(total, 20_000);
    }

    #[test]
    fn canonical_suite_covers_all_kinds() {
        let suite = HazardConfig::canonical_suite(1);
        let labels: Vec<&str> = suite.iter().map(|c| c.kind.label()).collect();
        assert_eq!(labels, ["hot_key", "burst_train", "late_storm"]);
    }
}
