//! # pdsp-workload
//!
//! The workload generator — the core PDSP-Bench component (§3): synthetic
//! data-stream generation (tuple width, field types, event rate —
//! Table 3), synthetic parallel-query-plan generation across nine query
//! structures, selectivity estimation so generated filters keep
//! `0 < sel < 1`, and the six parallelism enumeration strategies
//! (Random, Rule-based, Exhaustive, MinAvgMax, Increasing,
//! Parameter-based).

pub mod data_gen;
pub mod distributions;
pub mod enumerators;
pub mod hazards;
pub mod query_gen;
pub mod selectivity;
pub mod space;
pub mod trace;

pub use data_gen::{StreamConfig, SyntheticStream};
pub use distributions::{Distribution, PoissonGaps, Zipf};
pub use enumerators::{EnumerationStrategy, ParallelismEnumerator};
pub use hazards::{HazardConfig, HazardKind, HazardStream};
pub use query_gen::{QueryGenerator, QueryStructure};
pub use selectivity::SelectivityEstimator;
pub use space::{ParallelismCategory, ParameterSpace};
pub use trace::{Trace, TraceSource};
