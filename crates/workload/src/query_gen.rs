//! Synthetic parallel-query-plan generation.
//!
//! Nine query structures span the paper's range "from simple linear queries
//! with one filter to complex configurations involving multi-way joins and
//! multiple chained filters" (§3.1). Filter literals are drawn through
//! selectivity estimation so every generated filter keeps `0 < sel < 1`;
//! window specs, aggregate functions, and comparison ops randomize over
//! Table 3.

use crate::data_gen::{Skew, StreamConfig, SyntheticStream};
use crate::selectivity::SelectivityEstimator;
use crate::space::ParameterSpace;
use pdsp_engine::expr::Predicate;
use pdsp_engine::operator::OpKind;
use pdsp_engine::plan::{LogicalPlan, Partitioning};
use pdsp_engine::value::{FieldType, Schema};
use pdsp_engine::window::WindowSpec;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The nine synthetic query structures of the benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryStructure {
    /// source -> filter -> window agg -> sink.
    Linear,
    /// Two chained filters before the aggregation.
    TwoFilter,
    /// Three chained filters.
    ThreeFilter,
    /// Four chained filters.
    FourFilter,
    /// Two sources joined (Figure 2 left).
    TwoWayJoin,
    /// Three-way join (chained binary joins).
    ThreeWayJoin,
    /// Four-way join.
    FourWayJoin,
    /// Five-way join.
    FiveWayJoin,
    /// Six-way join.
    SixWayJoin,
}

impl QueryStructure {
    /// All structures.
    pub const ALL: [QueryStructure; 9] = [
        QueryStructure::Linear,
        QueryStructure::TwoFilter,
        QueryStructure::ThreeFilter,
        QueryStructure::FourFilter,
        QueryStructure::TwoWayJoin,
        QueryStructure::ThreeWayJoin,
        QueryStructure::FourWayJoin,
        QueryStructure::FiveWayJoin,
        QueryStructure::SixWayJoin,
    ];

    /// Structures "seen" during Fig. 6 training (linear, 2-way, 3-way join,
    /// per O9); the rest are the unseen generalization set.
    pub const SEEN: [QueryStructure; 3] = [
        QueryStructure::Linear,
        QueryStructure::TwoWayJoin,
        QueryStructure::ThreeWayJoin,
    ];

    /// Number of chained filters per source branch.
    pub fn filter_count(self) -> usize {
        match self {
            QueryStructure::Linear => 1,
            QueryStructure::TwoFilter => 2,
            QueryStructure::ThreeFilter => 3,
            QueryStructure::FourFilter => 4,
            _ => 1,
        }
    }

    /// Number of source streams.
    pub fn source_count(self) -> usize {
        match self {
            QueryStructure::TwoWayJoin => 2,
            QueryStructure::ThreeWayJoin => 3,
            QueryStructure::FourWayJoin => 4,
            QueryStructure::FiveWayJoin => 5,
            QueryStructure::SixWayJoin => 6,
            _ => 1,
        }
    }

    /// Number of binary join operators.
    pub fn join_count(self) -> usize {
        self.source_count().saturating_sub(1)
    }

    /// Short label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            QueryStructure::Linear => "linear",
            QueryStructure::TwoFilter => "2-filter",
            QueryStructure::ThreeFilter => "3-filter",
            QueryStructure::FourFilter => "4-filter",
            QueryStructure::TwoWayJoin => "2-way-join",
            QueryStructure::ThreeWayJoin => "3-way-join",
            QueryStructure::FourWayJoin => "4-way-join",
            QueryStructure::FiveWayJoin => "5-way-join",
            QueryStructure::SixWayJoin => "6-way-join",
        }
    }
}

/// A generated query: plan + the streams feeding its sources.
pub struct GeneratedQuery {
    /// The logical plan (all parallelism degrees 1; enumerators set them).
    pub plan: LogicalPlan,
    /// One stream per source node, in source order.
    pub streams: Vec<Arc<SyntheticStream>>,
    /// The structure it was generated from.
    pub structure: QueryStructure,
    /// Event rate per source.
    pub event_rate: f64,
    /// The window spec used by the aggregation/joins.
    pub window: WindowSpec,
    /// Estimated selectivity of each generated filter.
    pub filter_selectivities: Vec<f64>,
}

/// Randomized query generator over a parameter space.
pub struct QueryGenerator {
    space: ParameterSpace,
    rng: ChaCha8Rng,
    /// Tuples sampled per stream for selectivity estimation.
    sample_size: usize,
    /// Tuples per generated stream when executed on the threaded runtime.
    stream_tuples: usize,
    /// Event rate override (None = random from space).
    pub event_rate_override: Option<f64>,
    /// Window override (None = random from space). Experiments sweeping
    /// parallelism fix the window so latency differences come from the
    /// structure, not from each query drawing a different window length.
    pub window_override: Option<WindowSpec>,
}

impl QueryGenerator {
    /// Generator with the given space and seed.
    pub fn new(space: ParameterSpace, seed: u64) -> Self {
        QueryGenerator {
            space,
            rng: ChaCha8Rng::seed_from_u64(seed),
            sample_size: 2_000,
            stream_tuples: 10_000,
            event_rate_override: None,
            window_override: None,
        }
    }

    /// The parameter space.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    fn random_window(&mut self) -> WindowSpec {
        let time_based = self.rng.gen_bool(0.5);
        let sliding = self.rng.gen_bool(0.5);
        let (length, _unit) = if time_based {
            let d = self.space.window_durations_ms
                [self.rng.gen_range(0..self.space.window_durations_ms.len())];
            (d, "ms")
        } else {
            let l =
                self.space.window_lengths[self.rng.gen_range(0..self.space.window_lengths.len())];
            (l, "tuples")
        };
        let slide = if sliding {
            let ratio =
                self.space.slide_ratios[self.rng.gen_range(0..self.space.slide_ratios.len())];
            ((length as f64 * ratio).round() as u64).max(1)
        } else {
            length
        };
        match (time_based, sliding) {
            (true, true) => WindowSpec::sliding_time(length, slide),
            (true, false) => WindowSpec::tumbling_time(length),
            (false, true) => WindowSpec::sliding_count(length, slide),
            (false, false) => WindowSpec::tumbling_count(length),
        }
    }

    /// Synthetic stream schema convention: field 0 is an Int key, field 1 a
    /// Double measure, then random extra fields up to a random width. This
    /// guarantees every structure (keyed windows, equi-joins on field 0,
    /// numeric aggregation on field 1) is valid while width/types still
    /// randomize.
    fn random_stream(&mut self, event_rate: f64) -> StreamConfig {
        let extra = self.rng.gen_range(0..=13usize);
        let mut types = vec![FieldType::Int, FieldType::Double];
        for _ in 0..extra {
            types.push(self.space.field_types[self.rng.gen_range(0..self.space.field_types.len())]);
        }
        StreamConfig {
            schema: Schema::of(&types),
            event_rate,
            total_tuples: self.stream_tuples,
            cardinality: *[64u64, 256, 1_024].get(self.rng.gen_range(0..3)).unwrap(),
            skew: if self.rng.gen_bool(0.8) {
                Skew::Uniform
            } else {
                Skew::Zipf(1.1)
            },
            out_of_order_ms: 0,
            seed: self.rng.gen(),
        }
    }

    /// Draw a valid filter over the stream's sample: numeric or string field,
    /// random comparison op, literal solved to a random target selectivity
    /// inside the space's band.
    fn random_filter(
        &mut self,
        estimator: &SelectivityEstimator,
        width: usize,
    ) -> (Predicate, f64) {
        let band = self.space.selectivity_band;
        for _ in 0..16 {
            let field = self.rng.gen_range(0..width);
            let target = self.rng.gen_range(band.0..band.1);
            let op = self.space.filter_ops[self.rng.gen_range(0..self.space.filter_ops.len())];
            if let Some((p, sel)) = estimator.valid_filter(field, &[op], band, target) {
                return (p, sel);
            }
        }
        // Fall back to a pass-through filter — still a valid plan.
        (Predicate::True, 1.0)
    }

    /// Generate one query of the given structure.
    pub fn generate(&mut self, structure: QueryStructure) -> GeneratedQuery {
        let event_rate = self.event_rate_override.unwrap_or_else(|| {
            self.space.event_rates[self.rng.gen_range(0..self.space.event_rates.len())]
        });
        let window = match self.window_override {
            Some(w) => {
                // Keep the RNG stream aligned with the non-overridden path
                // so overriding the window does not reshuffle every other
                // generated parameter.
                let _ = self.random_window();
                w
            }
            None => self.random_window(),
        };
        let agg = self.space.agg_functions[self.rng.gen_range(0..self.space.agg_functions.len())];

        let mut plan = LogicalPlan::default();
        let mut streams = Vec::new();
        let mut selectivities = Vec::new();
        let n_sources = structure.source_count();
        let n_filters = structure.filter_count();

        // Per-source chains: source -> filter{n} .
        let mut branch_heads = Vec::new();
        for s in 0..n_sources {
            let cfg = self.random_stream(event_rate);
            let stream = SyntheticStream::new(cfg.clone());
            let estimator = SelectivityEstimator::new(stream.sample(self.sample_size));
            let src = plan.add_node(
                format!("src{s}"),
                OpKind::Source {
                    schema: cfg.schema.clone(),
                },
                1,
            );
            let mut head = src;
            for f in 0..n_filters {
                let (pred, sel) = self.random_filter(&estimator, cfg.schema.width());
                selectivities.push(sel);
                let node = plan.add_node(
                    format!("filter{s}_{f}"),
                    OpKind::Filter {
                        predicate: pred,
                        selectivity: sel,
                    },
                    1,
                );
                plan.connect(head, node, Partitioning::Rebalance);
                head = node;
            }
            branch_heads.push(head);
            streams.push(stream);
        }

        // Chained binary joins over branch heads (key = field 0 of each
        // stream; join output key stays at index 0 because left fields come
        // first).
        let mut head = branch_heads[0];
        for (j, &right) in branch_heads.iter().enumerate().skip(1) {
            let join = plan.add_node(
                format!("join{j}"),
                OpKind::Join {
                    window,
                    left_key: 0,
                    right_key: 0,
                },
                1,
            );
            plan.connect_port(head, join, 0, Partitioning::Hash(vec![0]));
            plan.connect_port(right, join, 1, Partitioning::Hash(vec![0]));
            head = join;
        }

        // Keyed window aggregation on the Double measure (field 1) grouped
        // by the key (field 0), then sink.
        let agg_node = plan.add_node(
            "agg",
            OpKind::WindowAggregate {
                window,
                func: agg,
                agg_field: 1,
                key_field: Some(0),
            },
            1,
        );
        plan.connect(head, agg_node, Partitioning::Hash(vec![0]));
        let sink = plan.add_node("sink", OpKind::Sink, 1);
        plan.connect(agg_node, sink, Partitioning::Rebalance);

        debug_assert!(plan.validate().is_ok(), "{:?}", plan.validate());
        #[cfg(debug_assertions)]
        {
            let report =
                pdsp_analyze::analyze(structure.label(), &plan).expect("generated plan analyzes");
            debug_assert_eq!(report.errors(), 0, "{}", report.render());
            let flow = pdsp_engine::schema_flow::SchemaFlow::infer(&plan)
                .expect("generated plan infers schemas");
            debug_assert!(
                flow.is_clean(),
                "generated plan has schema errors: {:?}",
                flow.issues
            );
            debug_assert!(
                flow.is_complete(),
                "generated plan has untyped nodes or edges"
            );
        }
        GeneratedQuery {
            plan,
            streams,
            structure,
            event_rate,
            window,
            filter_selectivities: selectivities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(seed: u64) -> QueryGenerator {
        QueryGenerator::new(ParameterSpace::default(), seed)
    }

    #[test]
    fn all_structures_generate_valid_plans() {
        let mut g = generator(1);
        for s in QueryStructure::ALL {
            let q = g.generate(s);
            q.plan.validate().unwrap_or_else(|e| panic!("{s:?}: {e}"));
            assert_eq!(q.streams.len(), s.source_count());
            assert_eq!(
                q.plan.sources().len(),
                s.source_count(),
                "{s:?} source count"
            );
        }
    }

    #[test]
    fn structure_operator_counts() {
        assert_eq!(QueryStructure::FourFilter.filter_count(), 4);
        assert_eq!(QueryStructure::SixWayJoin.join_count(), 5);
        assert_eq!(QueryStructure::Linear.join_count(), 0);
    }

    #[test]
    fn join_plans_have_expected_joins() {
        let mut g = generator(2);
        let q = g.generate(QueryStructure::ThreeWayJoin);
        let joins = q
            .plan
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Join { .. }))
            .count();
        assert_eq!(joins, 2);
    }

    #[test]
    fn generated_filters_respect_selectivity_band() {
        let mut g = generator(3);
        for _ in 0..5 {
            let q = g.generate(QueryStructure::ThreeFilter);
            for &sel in &q.filter_selectivities {
                // Fallback Predicate::True reports 1.0; everything else must
                // be inside the open band.
                assert!(
                    sel == 1.0 || (sel > 0.0 && sel < 1.0),
                    "selectivity {sel} out of band"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generator(42).generate(QueryStructure::TwoWayJoin);
        let b = generator(42).generate(QueryStructure::TwoWayJoin);
        assert_eq!(
            a.plan.descriptor().nodes.len(),
            b.plan.descriptor().nodes.len()
        );
        assert_eq!(a.window, b.window);
        assert_eq!(a.filter_selectivities, b.filter_selectivities);
    }

    #[test]
    fn event_rate_override_is_honored() {
        let mut g = generator(5);
        g.event_rate_override = Some(123_456.0);
        let q = g.generate(QueryStructure::Linear);
        assert_eq!(q.event_rate, 123_456.0);
        assert_eq!(q.streams[0].config().event_rate, 123_456.0);
    }

    #[test]
    fn seen_unseen_partition_covers_all() {
        let unseen: Vec<_> = QueryStructure::ALL
            .iter()
            .filter(|s| !QueryStructure::SEEN.contains(s))
            .collect();
        assert_eq!(unseen.len() + QueryStructure::SEEN.len(), 9);
    }
}
