//! Selectivity estimation for generated filter predicates.
//!
//! Random filter literals can yield filters nothing passes (or everything
//! does); the paper's generator estimates selectivity on sampled data and
//! keeps only literals with `0 < sel < 1` (§3.1). The estimator both
//! *measures* a predicate's selectivity on a sample and *solves* for a
//! literal achieving a target selectivity via sample quantiles.

use pdsp_engine::expr::{CmpOp, Predicate};
use pdsp_engine::value::{Tuple, Value};

/// Sample-based selectivity estimation.
#[derive(Debug, Clone)]
pub struct SelectivityEstimator {
    sample: Vec<Tuple>,
}

impl SelectivityEstimator {
    /// Estimator over a data sample (a few thousand tuples suffice).
    pub fn new(sample: Vec<Tuple>) -> Self {
        SelectivityEstimator { sample }
    }

    /// Number of sample tuples.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }

    /// Fraction of sample tuples the predicate accepts.
    pub fn estimate(&self, predicate: &Predicate) -> f64 {
        if self.sample.is_empty() {
            return 0.0;
        }
        let hits = self
            .sample
            .iter()
            .filter(|t| predicate.eval(t).unwrap_or(false))
            .count();
        hits as f64 / self.sample.len() as f64
    }

    /// Find a literal for `field <op> literal` whose selectivity is close to
    /// `target` (in (0,1)), using the sample's value quantiles. Returns
    /// `None` when the field has too few distinct values to hit the band.
    pub fn literal_for_target(&self, field: usize, op: CmpOp, target: f64) -> Option<Value> {
        let mut values: Vec<&Value> = self
            .sample
            .iter()
            .filter_map(|t| t.values.get(field))
            .collect();
        if values.is_empty() {
            return None;
        }
        values.sort_by(|a, b| a.partial_cmp_value(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = values.len();
        let lit = match op {
            // sel(v < lit) = target  => lit at quantile `target`.
            CmpOp::Lt | CmpOp::Le => values[(target * (n - 1) as f64) as usize].clone(),
            // sel(v > lit) = target  => lit at quantile `1 - target`.
            CmpOp::Gt | CmpOp::Ge => values[((1.0 - target) * (n - 1) as f64) as usize].clone(),
            // Equality: pick the most frequent value (selectivity = its
            // frequency); inequality mirrors it.
            CmpOp::Eq | CmpOp::Ne => {
                let mut best: Option<(&Value, usize)> = None;
                let mut i = 0;
                while i < n {
                    let mut j = i + 1;
                    while j < n && values[j] == values[i] {
                        j += 1;
                    }
                    if best.is_none_or(|(_, c)| j - i > c) {
                        best = Some((values[i], j - i));
                    }
                    i = j;
                }
                best.map(|(v, _)| v.clone())?
            }
        };
        let predicate = Predicate::cmp(field, op, lit.clone());
        let sel = self.estimate(&predicate);
        (sel > 0.0 && sel < 1.0).then_some(lit)
    }

    /// Draw a valid filter predicate on `field` with selectivity inside
    /// `band`, trying each comparison op and target until one fits.
    pub fn valid_filter(
        &self,
        field: usize,
        ops: &[CmpOp],
        band: (f64, f64),
        target: f64,
    ) -> Option<(Predicate, f64)> {
        let target = target.clamp(band.0, band.1);
        for &op in ops {
            if let Some(lit) = self.literal_for_target(field, op, target) {
                let p = Predicate::cmp(field, op, lit);
                let sel = self.estimate(&p);
                if sel >= band.0 && sel <= band.1 {
                    return Some((p, sel));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsp_engine::value::Value;

    fn int_sample(n: i64) -> SelectivityEstimator {
        SelectivityEstimator::new(
            (0..n)
                .map(|i| Tuple::new(vec![Value::Int(i), Value::str(format!("s{}", i % 10))]))
                .collect(),
        )
    }

    #[test]
    fn estimate_matches_exact_fraction() {
        let est = int_sample(100);
        let p = Predicate::cmp(0, CmpOp::Lt, Value::Int(25));
        assert!((est.estimate(&p) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn literal_for_lt_hits_target() {
        let est = int_sample(1000);
        let lit = est.literal_for_target(0, CmpOp::Lt, 0.3).unwrap();
        let sel = est.estimate(&Predicate::cmp(0, CmpOp::Lt, lit));
        assert!((sel - 0.3).abs() < 0.02, "sel {sel}");
    }

    #[test]
    fn literal_for_gt_hits_target() {
        let est = int_sample(1000);
        let lit = est.literal_for_target(0, CmpOp::Gt, 0.7).unwrap();
        let sel = est.estimate(&Predicate::cmp(0, CmpOp::Gt, lit));
        assert!((sel - 0.7).abs() < 0.02, "sel {sel}");
    }

    #[test]
    fn equality_picks_frequent_value() {
        let est = int_sample(100);
        // String field has 10 values x 10 occurrences each.
        let lit = est.literal_for_target(1, CmpOp::Eq, 0.1).unwrap();
        let sel = est.estimate(&Predicate::cmp(1, CmpOp::Eq, lit));
        assert!((sel - 0.1).abs() < 1e-9);
    }

    #[test]
    fn degenerate_fields_are_rejected() {
        // All values identical: no literal can give 0 < sel < 1 for Lt.
        let est =
            SelectivityEstimator::new((0..50).map(|_| Tuple::new(vec![Value::Int(7)])).collect());
        assert_eq!(est.literal_for_target(0, CmpOp::Lt, 0.5), None);
        assert_eq!(est.literal_for_target(0, CmpOp::Eq, 0.5), None);
    }

    #[test]
    fn valid_filter_stays_in_band() {
        let est = int_sample(500);
        let (p, sel) = est.valid_filter(0, &CmpOp::ALL, (0.05, 0.95), 0.5).unwrap();
        assert!(sel > 0.05 && sel < 0.95);
        assert!((est.estimate(&p) - sel).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_estimates_zero() {
        let est = SelectivityEstimator::new(vec![]);
        assert_eq!(est.estimate(&Predicate::True), 0.0);
        assert_eq!(est.literal_for_target(0, CmpOp::Lt, 0.5), None);
    }
}
