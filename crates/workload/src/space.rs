//! The workload parameter space (paper Table 3).
//!
//! Every range the PDSP-Bench generator enumerates over lives here, so the
//! `figures --table3` report and the generators draw from one source of
//! truth.

use pdsp_engine::agg::AggFunc;
use pdsp_engine::expr::CmpOp;
use pdsp_engine::value::FieldType;
use serde::{Deserialize, Serialize};

/// Parallelism categories the paper plots (XS .. XXL). The paper discusses
/// degrees up to and beyond 128 with observations keyed to 8/16/28 (per-node
/// cores), 64 and 128; the category ladder reflects that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParallelismCategory {
    /// Degree 1.
    XS,
    /// Degree 4.
    S,
    /// Degree 8 (one m510 node's cores).
    M,
    /// Degree 16 (one c6525_25g node's cores).
    L,
    /// Degree 64.
    XL,
    /// Degree 128.
    XXL,
}

impl ParallelismCategory {
    /// All categories in ascending order.
    pub const ALL: [ParallelismCategory; 6] = [
        ParallelismCategory::XS,
        ParallelismCategory::S,
        ParallelismCategory::M,
        ParallelismCategory::L,
        ParallelismCategory::XL,
        ParallelismCategory::XXL,
    ];

    /// The parallelism degree this category applies.
    pub fn degree(self) -> usize {
        match self {
            ParallelismCategory::XS => 1,
            ParallelismCategory::S => 4,
            ParallelismCategory::M => 8,
            ParallelismCategory::L => 16,
            ParallelismCategory::XL => 64,
            ParallelismCategory::XXL => 128,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ParallelismCategory::XS => "XS",
            ParallelismCategory::S => "S",
            ParallelismCategory::M => "M",
            ParallelismCategory::L => "L",
            ParallelismCategory::XL => "XL",
            ParallelismCategory::XXL => "XXL",
        }
    }
}

/// The enumerable parameter ranges of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterSpace {
    /// Event rates in events/second.
    pub event_rates: Vec<f64>,
    /// Tuple widths (data items per tuple).
    pub tuple_widths: Vec<usize>,
    /// Field types drawn for synthetic streams.
    pub field_types: Vec<FieldType>,
    /// Window durations in ms (time policy).
    pub window_durations_ms: Vec<u64>,
    /// Window lengths in tuples (count policy).
    pub window_lengths: Vec<u64>,
    /// Slide ratios applied to the window length.
    pub slide_ratios: Vec<f64>,
    /// Aggregate functions.
    pub agg_functions: Vec<AggFunc>,
    /// Filter comparison operators.
    pub filter_ops: Vec<CmpOp>,
    /// Parallelism degrees enumerable per operator.
    pub parallelism_degrees: Vec<usize>,
    /// Selectivity band accepted for generated filters (paper: 0 < sel < 1).
    pub selectivity_band: (f64, f64),
}

impl Default for ParameterSpace {
    fn default() -> Self {
        ParameterSpace {
            event_rates: vec![
                10.0,
                100.0,
                1_000.0,
                5_000.0,
                10_000.0,
                50_000.0,
                100_000.0,
                200_000.0,
                500_000.0,
                1_000_000.0,
                2_000_000.0,
                4_000_000.0,
            ],
            tuple_widths: (1..=15).collect(),
            field_types: vec![FieldType::Str, FieldType::Double, FieldType::Int],
            window_durations_ms: vec![250, 500, 1_000, 1_500, 2_000, 2_500, 3_000],
            window_lengths: vec![5, 10, 50, 100, 500, 1_000],
            slide_ratios: vec![0.3, 0.4, 0.5, 0.6, 0.7],
            agg_functions: AggFunc::ALL.to_vec(),
            filter_ops: CmpOp::ALL.to_vec(),
            parallelism_degrees: vec![1, 2, 4, 8, 12, 16, 24, 32, 64, 96, 128],
            selectivity_band: (0.05, 0.95),
        }
    }
}

impl ParameterSpace {
    /// Highest configured event rate (the paper presents most results at
    /// its top rate).
    pub fn max_event_rate(&self) -> f64 {
        self.event_rates.iter().copied().fold(0.0, f64::max)
    }

    /// Render the Table 3-style report rows: (parameter, range).
    pub fn table3_rows(&self) -> Vec<(String, String)> {
        vec![
            (
                "Parallelism degree".into(),
                format!("{:?}", self.parallelism_degrees),
            ),
            (
                "Window duration (ms)".into(),
                format!("{:?}", self.window_durations_ms),
            ),
            (
                "Window length (tuples)".into(),
                format!("{:?}", self.window_lengths),
            ),
            (
                "Sliding length (ratio)".into(),
                format!("{:?} x window length", self.slide_ratios),
            ),
            (
                "Window types and policy".into(),
                "type: sliding and tumbling, policy: count and time-based".into(),
            ),
            (
                "Window aggr. functions".into(),
                self.agg_functions
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
            (
                "Filter functions".into(),
                self.filter_ops
                    .iter()
                    .map(|o| o.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
            (
                "Tuple width x types".into(),
                format!(
                    "[1 - {}] x [str, double, int]",
                    self.tuple_widths.iter().max().unwrap_or(&0)
                ),
            ),
            (
                "Event rate (events/sec)".into(),
                format!("{:?}", self.event_rates),
            ),
            (
                "Partitioning strategy".into(),
                "forward, rebalance, hashing (+ broadcast)".into(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_monotone() {
        let degrees: Vec<usize> = ParallelismCategory::ALL
            .iter()
            .map(|c| c.degree())
            .collect();
        assert!(degrees.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(degrees.first(), Some(&1));
        assert_eq!(degrees.last(), Some(&128));
    }

    #[test]
    fn default_space_matches_table3() {
        let s = ParameterSpace::default();
        assert_eq!(s.max_event_rate(), 4_000_000.0);
        assert_eq!(s.tuple_widths.len(), 15);
        assert_eq!(s.slide_ratios, vec![0.3, 0.4, 0.5, 0.6, 0.7]);
        assert!(s.window_durations_ms.contains(&250));
        assert!(s.window_durations_ms.contains(&3_000));
        assert!(s.parallelism_degrees.contains(&128));
    }

    #[test]
    fn table3_report_has_all_rows() {
        let rows = ParameterSpace::default().table3_rows();
        assert!(rows.len() >= 10);
        assert!(rows.iter().any(|(k, _)| k.contains("Event rate")));
    }

    #[test]
    fn selectivity_band_is_open_interval() {
        let (lo, hi) = ParameterSpace::default().selectivity_band;
        assert!(lo > 0.0 && hi < 1.0 && lo < hi);
    }
}
