//! Trace replay: file-backed sources.
//!
//! The original PDSP-Bench feeds real-world datasets (DEBS Grand
//! Challenges, etc.) through Kafka. The substitute here replays CSV traces
//! from disk as engine sources, with the same replay-loop semantics the
//! paper describes ("we repeat the data stream read from the source to
//! mimic infinite data streams").

use pdsp_engine::error::{EngineError, Result};
use pdsp_engine::runtime::SourceFactory;
use pdsp_engine::value::{FieldType, Schema, Tuple, Value};
use std::io::BufRead;
use std::path::Path;
use std::sync::Arc;

/// A replayable trace: parsed tuples plus the schema they follow.
#[derive(Debug, Clone)]
pub struct Trace {
    schema: Schema,
    tuples: Arc<Vec<Tuple>>,
}

impl Trace {
    /// Parse a CSV file (no header) against the given schema. The optional
    /// `event_time_column` names the column carrying event time in ms; when
    /// absent, tuples are spaced by `1000 / rate` ms in file order.
    pub fn from_csv(
        path: &Path,
        schema: Schema,
        event_time_column: Option<usize>,
        fallback_rate: f64,
    ) -> Result<Self> {
        let file = std::fs::File::open(path)
            .map_err(|e| EngineError::Execution(format!("open {}: {e}", path.display())))?;
        let reader = std::io::BufReader::new(file);
        let mut tuples = Vec::new();
        let gap_ms = 1_000.0 / fallback_rate.max(1e-6);
        for (line_no, line) in reader.lines().enumerate() {
            let line =
                line.map_err(|e| EngineError::Execution(format!("read line {line_no}: {e}")))?;
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let tuple = parse_csv_line(&line, &schema, line_no)?;
            let mut tuple = tuple;
            tuple.event_time = match event_time_column {
                Some(col) => tuple
                    .values
                    .get(col)
                    .and_then(Value::as_i64)
                    .ok_or_else(|| {
                        EngineError::Execution(format!(
                            "line {line_no}: event-time column {col} is not an integer"
                        ))
                    })?,
                None => (tuples.len() as f64 * gap_ms) as i64,
            };
            tuples.push(tuple);
        }
        if tuples.is_empty() {
            return Err(EngineError::Execution(format!(
                "trace {} contains no tuples",
                path.display()
            )));
        }
        Ok(Trace {
            schema,
            tuples: Arc::new(tuples),
        })
    }

    /// Build directly from tuples (tests, programmatic traces).
    pub fn from_tuples(schema: Schema, tuples: Vec<Tuple>) -> Result<Self> {
        if tuples.is_empty() {
            return Err(EngineError::Execution("empty trace".into()));
        }
        for (i, t) in tuples.iter().enumerate() {
            if !schema.matches(t) {
                return Err(EngineError::Execution(format!(
                    "trace tuple {i} does not match the schema"
                )));
            }
        }
        Ok(Trace {
            schema,
            tuples: Arc::new(tuples),
        })
    }

    /// Number of distinct tuples in the trace.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the trace is empty (never true for constructed traces).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A source replaying the trace `loops` times (the paper's repeat-to-
    /// infinity behaviour, bounded for benchmark runs). Event times of
    /// later loops are shifted by the trace's time span so they stay
    /// monotone.
    pub fn replay(&self, loops: usize) -> Arc<TraceSource> {
        Arc::new(TraceSource {
            tuples: Arc::clone(&self.tuples),
            loops: loops.max(1),
        })
    }
}

fn parse_csv_line(line: &str, schema: &Schema, line_no: usize) -> Result<Tuple> {
    let parts: Vec<&str> = line.split(',').map(str::trim).collect();
    if parts.len() != schema.width() {
        return Err(EngineError::Execution(format!(
            "line {line_no}: expected {} columns, found {}",
            schema.width(),
            parts.len()
        )));
    }
    let values = schema
        .fields
        .iter()
        .zip(&parts)
        .map(|(field, raw)| -> Result<Value> {
            let parse_err = |ty: &str| {
                EngineError::Execution(format!(
                    "line {line_no}: '{raw}' is not a valid {ty} for field '{}'",
                    field.name
                ))
            };
            Ok(match field.ty {
                FieldType::Int => Value::Int(raw.parse().map_err(|_| parse_err("int"))?),
                FieldType::Double => Value::Double(raw.parse().map_err(|_| parse_err("double"))?),
                FieldType::Str => Value::str(*raw),
                FieldType::Bool => Value::Bool(raw.parse().map_err(|_| parse_err("bool"))?),
                FieldType::Timestamp => {
                    Value::Timestamp(raw.parse().map_err(|_| parse_err("timestamp"))?)
                }
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Tuple::new(values))
}

/// Replaying source over a shared trace.
#[derive(Debug, Clone)]
pub struct TraceSource {
    tuples: Arc<Vec<Tuple>>,
    loops: usize,
}

impl SourceFactory for TraceSource {
    fn instance_iter(
        &self,
        instance_index: usize,
        parallelism: usize,
    ) -> Box<dyn Iterator<Item = Tuple> + Send> {
        let tuples = Arc::clone(&self.tuples);
        let span = tuples
            .last()
            .map(|t| t.event_time - tuples[0].event_time + 1)
            .unwrap_or(1)
            .max(1);
        let loops = self.loops;
        let n = tuples.len();
        let iter = (0..loops).flat_map(move |lap| {
            let tuples = Arc::clone(&tuples);
            (0..n)
                .filter(move |i| i % parallelism == instance_index)
                .map(move |i| {
                    let mut t = tuples[i].clone();
                    t.event_time += span * lap as i64;
                    t
                })
        });
        Box::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::of(&[FieldType::Int, FieldType::Str, FieldType::Double])
    }

    fn write_trace(content: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "pdsp_trace_{}_{}.csv",
            std::process::id(),
            content.len()
        ));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn parses_csv_with_event_time_column() {
        let path = write_trace("1, a, 1.5\n2, b, 2.5\n10, c, 3.5\n");
        let trace = Trace::from_csv(&path, schema(), Some(0), 1_000.0).unwrap();
        assert_eq!(trace.len(), 3);
        let tuples: Vec<Tuple> = trace.replay(1).instance_iter(0, 1).collect();
        assert_eq!(tuples[2].event_time, 10);
        assert_eq!(tuples[1].values[1], Value::str("b"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn synthesizes_event_times_at_fallback_rate() {
        let path = write_trace("1, a, 1.0\n2, b, 2.0\n3, c, 3.0\n4, d, 4.0\n");
        let trace = Trace::from_csv(&path, schema(), None, 100.0).unwrap(); // 10ms gaps
        let tuples: Vec<Tuple> = trace.replay(1).instance_iter(0, 1).collect();
        assert_eq!(tuples[0].event_time, 0);
        assert_eq!(tuples[3].event_time, 30);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let path = write_trace("# header comment\n1, a, 1.0\n\n2, b, 2.0\n");
        let trace = Trace::from_csv(&path, schema(), None, 1_000.0).unwrap();
        assert_eq!(trace.len(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_rows_error_with_line_number() {
        let path = write_trace("1, a, not-a-number\n");
        let err = Trace::from_csv(&path, schema(), None, 1_000.0).unwrap_err();
        assert!(err.to_string().contains("line 0"), "{err}");
        std::fs::remove_file(path).ok();

        let path = write_trace("1, a\n");
        let err = Trace::from_csv(&path, schema(), None, 1_000.0).unwrap_err();
        assert!(err.to_string().contains("columns"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replay_loops_shift_event_times_monotonically() {
        let tuples = vec![
            Tuple::at(vec![Value::Int(1), Value::str("x"), Value::Double(0.0)], 0),
            Tuple::at(vec![Value::Int(2), Value::str("y"), Value::Double(0.0)], 50),
        ];
        let trace = Trace::from_tuples(schema(), tuples).unwrap();
        let replayed: Vec<Tuple> = trace.replay(3).instance_iter(0, 1).collect();
        assert_eq!(replayed.len(), 6);
        let times: Vec<i64> = replayed.iter().map(|t| t.event_time).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
    }

    #[test]
    fn parallel_replay_partitions_each_lap() {
        let tuples = (0..10)
            .map(|i| Tuple::at(vec![Value::Int(i), Value::str("s"), Value::Double(0.0)], i))
            .collect();
        let trace = Trace::from_tuples(schema(), tuples).unwrap();
        let src = trace.replay(2);
        let total: usize = (0..2).map(|i| src.instance_iter(i, 2).count()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn trace_runs_through_the_engine() {
        use pdsp_engine::expr::{CmpOp, Predicate};
        use pdsp_engine::physical::PhysicalPlan;
        use pdsp_engine::runtime::{RunConfig, ThreadedRuntime};
        use pdsp_engine::PlanBuilder;

        let tuples = (0..100)
            .map(|i| {
                Tuple::at(
                    vec![Value::Int(i), Value::str("s"), Value::Double(i as f64)],
                    i,
                )
            })
            .collect();
        let trace = Trace::from_tuples(schema(), tuples).unwrap();
        let plan = PlanBuilder::new()
            .source("trace", schema(), 1)
            .filter(
                "big",
                Predicate::cmp(2, CmpOp::Ge, Value::Double(50.0)),
                0.5,
            )
            .sink("sink")
            .build()
            .unwrap();
        let phys = PhysicalPlan::expand(&plan).unwrap();
        let res = ThreadedRuntime::new(RunConfig::default())
            .run(&phys, &[trace.replay(2)])
            .unwrap();
        assert_eq!(res.tuples_out, 100, "50 per lap x 2 laps");
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let bad = vec![Tuple::new(vec![Value::Int(1)])];
        assert!(Trace::from_tuples(schema(), bad).is_err());
    }
}
