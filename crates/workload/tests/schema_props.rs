//! Property tests for the workload generator's schema discipline: every
//! plan the generator or the parallelism enumerator can produce must infer
//! a complete, consistent schema flow — no untyped node or edge, every
//! edge schema agreeing with its upstream operator's output schema, and no
//! full-severity schema errors.

use pdsp_engine::plan::LogicalPlan;
use pdsp_engine::schema_flow::SchemaFlow;
use pdsp_workload::{
    EnumerationStrategy, ParallelismEnumerator, ParameterSpace, QueryGenerator, QueryStructure,
};
use proptest::prelude::*;

/// Assert the full schema discipline for one plan.
fn assert_schema_flow(label: &str, plan: &LogicalPlan) {
    let flow = SchemaFlow::infer(plan).unwrap_or_else(|e| panic!("{label}: inference failed: {e}"));
    assert!(
        flow.is_complete(),
        "{label}: untyped node or edge in inferred flow"
    );
    assert!(
        flow.is_clean(),
        "{label}: schema errors in generated plan: {:?}",
        flow.issues
    );
    for (i, edge) in plan.edges.iter().enumerate() {
        assert_eq!(
            flow.edge[i], flow.node_output[edge.from],
            "{label}: edge {i} schema disagrees with node {} output",
            edge.from
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every structure x seed the generator can produce infers a complete,
    /// consistent, error-free schema flow.
    #[test]
    fn generated_plans_have_complete_consistent_schemas(
        seed in 0u64..1_000,
        structure_idx in 0usize..QueryStructure::ALL.len(),
    ) {
        let structure = QueryStructure::ALL[structure_idx];
        let mut generator = QueryGenerator::new(ParameterSpace::default(), seed);
        let query = generator.generate(structure);
        assert_schema_flow(structure.label(), &query.plan);
    }

    /// Re-parallelised assignments from the enumerator preserve schema
    /// completeness: degree choices never change tuple types.
    #[test]
    fn enumerated_assignments_preserve_schemas(
        seed in 0u64..500,
        structure_idx in 0usize..QueryStructure::ALL.len(),
    ) {
        let structure = QueryStructure::ALL[structure_idx];
        let mut generator = QueryGenerator::new(ParameterSpace::default(), seed);
        let query = generator.generate(structure);
        let space = ParameterSpace::default();
        let mut enumerator =
            ParallelismEnumerator::new(space.parallelism_degrees.clone(), 64, seed);
        for assignment in
            enumerator.enumerate(&query.plan, &EnumerationStrategy::Random, 1e5, 4)
        {
            let mut candidate = query.plan.clone();
            for (id, &degree) in assignment.iter().enumerate() {
                candidate.nodes[id].parallelism = degree;
            }
            assert_schema_flow(structure.label(), &candidate);
        }
    }
}
