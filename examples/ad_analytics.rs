//! Ad Analytics end-to-end: the paper's running example (Figure 2 right)
//! executed on the real multi-threaded engine — impressions and clicks are
//! joined per ad within a window, and a sliding-window UDO maintains
//! click-through rates.
//!
//! ```text
//! cargo run --release --example ad_analytics
//! ```

use pdsp_bench::apps::{app_by_acronym, AppConfig, Application};
use pdsp_bench::engine::physical::PhysicalPlan;
use pdsp_bench::engine::runtime::{RunConfig, ThreadedRuntime};

fn run_at(app: &dyn Application, parallelism: usize) {
    let built = app.build(&AppConfig {
        event_rate: 50_000.0,
        total_tuples: 40_000,
        seed: 21,
    });
    let plan = built.plan.with_uniform_parallelism(parallelism);
    let physical = PhysicalPlan::expand(&plan).expect("expansion");
    let result = ThreadedRuntime::new(RunConfig::default())
        .run(&physical, &built.sources)
        .expect("execution");
    let p50 = result
        .latency_percentile_ns(50.0)
        .map(|ns| ns as f64 / 1e6)
        .unwrap_or(f64::NAN);
    println!(
        "parallelism {parallelism:>3}: {:>8} joined+aggregated CTR reports, p50 latency {p50:>8.2} ms, throughput {:>9.0} t/s",
        result.tuples_out,
        result.throughput_in()
    );
    if parallelism == 1 {
        println!("  sample CTR reports (ad, ctr):");
        for t in result.sink_tuples.iter().take(5) {
            println!("    ad {:>4}  ctr {:.2}", t.values[0], t.values[1]);
        }
    }
}

fn main() {
    let app = app_by_acronym("AD").expect("ad analytics is registered");
    let info = app.info();
    println!("{} ({}) — {}\n", info.name, info.acronym, info.description);
    println!("Plan:");
    let built = app.build(&AppConfig::default());
    for node in &built.plan.nodes {
        println!("  [{}] {}", node.id, node.name);
    }
    println!();
    for parallelism in [1, 2, 4, 8] {
        run_at(app.as_ref(), parallelism);
    }
    println!(
        "\nThe join + custom sliding-window aggregation limit AD's scaling —\n\
         the engine-level counterpart of the paper's observation O3."
    );
}
