//! Fault tolerance: kill a mid-pipeline operator instance mid-run, recover
//! from the last aligned checkpoint, and compare the output against a
//! clean run under both delivery modes.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use pdsp_bench::engine::agg::AggFunc;
use pdsp_bench::engine::fault::{
    Backoff, DeliveryMode, FaultInjector, FtConfig, FtRunResult, FtRuntime, RestartPolicy,
};
use pdsp_bench::engine::physical::PhysicalPlan;
use pdsp_bench::engine::runtime::{RunConfig, VecSource};
use pdsp_bench::engine::value::{FieldType, Schema, Tuple, Value};
use pdsp_bench::engine::window::WindowSpec;
use pdsp_bench::engine::PlanBuilder;
use std::time::Duration;

const KEYS: i64 = 8;
const TUPLES: i64 = 20_000;

fn tuples() -> Vec<Tuple> {
    (0..TUPLES)
        .map(|i| {
            let mut t = Tuple::new(vec![Value::Int(i % KEYS), Value::Int(i)]);
            t.event_time = i;
            t
        })
        .collect()
}

fn plan() -> PhysicalPlan {
    let plan = PlanBuilder::new()
        .source("events", Schema::of(&[FieldType::Int, FieldType::Int]), 1)
        .window_agg_keyed(
            "sum-per-key",
            WindowSpec::tumbling_count(50),
            AggFunc::Sum,
            1,
            0,
        )
        .set_parallelism(1, 4)
        .sink("sink")
        .build()
        .expect("valid plan");
    PhysicalPlan::expand(&plan).expect("expandable plan")
}

fn run(mode: DeliveryMode, injector: Option<FaultInjector>) -> FtRunResult {
    let config = FtConfig {
        checkpoint_interval_tuples: 512,
        mode,
        restart: RestartPolicy {
            max_restarts: 3,
            backoff: Backoff::Fixed(Duration::from_millis(10)),
        },
        run: RunConfig::default(),
    };
    FtRuntime::new(config)
        .run(&plan(), &[VecSource::new(tuples())], injector)
        .expect("run completes within the restart budget")
}

/// Sink rows as a sorted multiset, for cross-run comparison.
fn multiset(res: &FtRunResult) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = res
        .result
        .sink_tuples
        .iter()
        .map(|t| t.values.clone())
        .collect();
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

fn report(label: &str, res: &FtRunResult) {
    let r = &res.recovery;
    println!("{label}:");
    println!("  attempts              {}", r.attempts);
    println!("  completed checkpoints {}", r.completed_checkpoints);
    println!("  restored checkpoint   {:?}", r.restored_checkpoint);
    println!(
        "  recovery times (ms)   {:?}",
        r.recovery_times_ms
            .iter()
            .map(|ms| (ms * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!("  replayed tuples       {}", r.replayed_tuples);
    println!("  duplicate deliveries  {}", r.duplicate_tuples);
    println!("  rolled-back tuples    {}", r.rolled_back_tuples);
    println!("  sink rows             {}", res.result.sink_tuples.len());
}

fn main() {
    // Reference: a clean run (no injected fault) under exactly-once.
    let clean = run(DeliveryMode::ExactlyOnce, None);
    report("clean run", &clean);

    // Kill instance 1 of the window operator after it has seen 2000
    // tuples; the supervisor restores the last aligned checkpoint and
    // replays the source from the recorded offset.
    let kill = || FaultInjector::after_tuples(1, 1, 2000);

    let eo = run(DeliveryMode::ExactlyOnce, Some(kill()));
    report("\nexactly-once with injected failure", &eo);
    assert!(eo.recovery.attempts > 1, "the fault must actually fire");
    assert_eq!(
        multiset(&eo),
        multiset(&clean),
        "exactly-once output equals the clean run"
    );
    println!("  => output multiset identical to the clean run");

    let alo = run(DeliveryMode::AtLeastOnce, Some(kill()));
    report("\nat-least-once with injected failure", &alo);
    assert!(
        alo.result.sink_tuples.len() >= clean.result.sink_tuples.len(),
        "at-least-once may duplicate but never lose windows"
    );
    println!("  => no window lost; duplicates possible and accounted");
}
