//! Parallelism enumeration strategies in action: generates a 2-way-join
//! PQP, enumerates parallelism degrees with each of the six strategies,
//! and simulates the resulting plans — showing why random enumeration
//! produces noisy/bad plans while rule-based degrees track demand (§3.1).
//!
//! ```text
//! cargo run --release --example parallelism_sweep
//! ```

use pdsp_bench::cluster::{Cluster, SimConfig, Simulator};
use pdsp_bench::workload::{
    EnumerationStrategy, ParallelismEnumerator, ParameterSpace, QueryGenerator, QueryStructure,
};

fn main() {
    let event_rate = 200_000.0;
    let mut generator = QueryGenerator::new(ParameterSpace::default(), 5);
    generator.event_rate_override = Some(event_rate);
    let query = generator.generate(QueryStructure::TwoWayJoin);
    println!("Query: 2-way join, window {}\n", query.window);

    let cluster = Cluster::homogeneous_m510(10);
    let sim = Simulator::new(
        cluster.clone(),
        SimConfig {
            event_rate,
            duration_ms: 3_000,
            ..SimConfig::default()
        },
    );
    let mut enumerator = ParallelismEnumerator::new(
        ParameterSpace::default().parallelism_degrees,
        cluster.total_cores(),
        9,
    );

    let strategies: Vec<(&str, EnumerationStrategy, usize)> = vec![
        ("Random", EnumerationStrategy::Random, 4),
        ("RuleBased", EnumerationStrategy::RuleBased, 4),
        ("MinAvgMax", EnumerationStrategy::MinAvgMax, 3),
        ("Increasing", EnumerationStrategy::Increasing, 4),
        ("Exhaustive", EnumerationStrategy::Exhaustive, 3),
        (
            "ParameterBased",
            EnumerationStrategy::ParameterBased(vec![4, 4, 8, 8]),
            1,
        ),
    ];

    println!(
        "{:16} {:>28} {:>14}",
        "strategy", "degrees (per operator)", "latency (ms)"
    );
    for (name, strategy, count) in strategies {
        let assignments = enumerator.enumerate(&query.plan, &strategy, event_rate, count);
        for degrees in assignments {
            let plan = query.plan.clone().with_parallelism(&degrees);
            let latency = sim
                .run(&plan)
                .ok()
                .and_then(|r| r.latency.median())
                .unwrap_or(f64::NAN);
            let tunable: Vec<usize> = plan
                .nodes
                .iter()
                .filter(|n| {
                    !matches!(
                        n.kind,
                        pdsp_bench::engine::OpKind::Source { .. }
                            | pdsp_bench::engine::OpKind::Sink
                    )
                })
                .map(|n| n.parallelism)
                .collect();
            println!(
                "{:16} {:>28} {:>14.1}",
                name,
                format!("{tunable:?}"),
                latency
            );
        }
    }
    println!(
        "\nRule-based degrees follow each operator's demand (the join gets the\n\
         instances, the filters stay small); random assignments include the\n\
         noisy and outright bad plans the paper warns about."
    );
}
