//! Quickstart: build a parallel query plan, run it on the multi-threaded
//! engine, and print the collected metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pdsp_bench::engine::agg::AggFunc;
use pdsp_bench::engine::expr::{CmpOp, Predicate};
use pdsp_bench::engine::physical::PhysicalPlan;
use pdsp_bench::engine::runtime::{RunConfig, ThreadedRuntime, VecSource};
use pdsp_bench::engine::value::{FieldType, Schema, Tuple, Value};
use pdsp_bench::engine::window::WindowSpec;
use pdsp_bench::engine::PlanBuilder;

fn main() {
    // A linear PQP: source -> filter -> keyed tumbling-window average ->
    // sink, with 4 parallel instances of the middle operators.
    let schema = Schema::of(&[FieldType::Int, FieldType::Double]);
    let plan = PlanBuilder::new()
        .source("sensor-readings", schema, 1)
        .filter(
            "hot-readings",
            Predicate::cmp(1, CmpOp::Gt, Value::Double(50.0)),
            0.5,
        )
        .set_parallelism(1, 4)
        .window_agg_keyed(
            "avg-per-sensor",
            WindowSpec::tumbling_count(20),
            AggFunc::Avg,
            1,
            0,
        )
        .set_parallelism(2, 4)
        .sink("sink")
        .build()
        .expect("valid plan");

    println!(
        "Plan: {} operators, {} edges",
        plan.nodes.len(),
        plan.edges.len()
    );
    for node in &plan.nodes {
        println!(
            "  [{}] {:<16} parallelism {}",
            node.id, node.name, node.parallelism
        );
    }

    // 100k synthetic readings from 32 sensors.
    let tuples: Vec<Tuple> = (0..100_000i64)
        .map(|i| {
            let mut t = Tuple::new(vec![Value::Int(i % 32), Value::Double((i % 100) as f64)]);
            t.event_time = i / 10;
            t
        })
        .collect();

    let physical = PhysicalPlan::expand(&plan).expect("expansion");
    println!(
        "Physical: {} instances, {} channels",
        physical.instance_count(),
        physical.channel_count()
    );

    let result = ThreadedRuntime::new(RunConfig::default())
        .run(&physical, &[VecSource::new(tuples)])
        .expect("execution");

    println!("\nResults");
    println!("  tuples in      : {}", result.tuples_in);
    println!("  tuples out     : {}", result.tuples_out);
    println!("  throughput     : {:.0} tuples/s", result.throughput_in());
    if let (Some(p50), Some(p99)) = (
        result.latency_percentile_ns(50.0),
        result.latency_percentile_ns(99.0),
    ) {
        println!("  p50 latency    : {:.3} ms", p50 as f64 / 1e6);
        println!("  p99 latency    : {:.3} ms", p99 as f64 / 1e6);
    }
    println!("  sample outputs :");
    for t in result.sink_tuples.iter().take(5) {
        println!(
            "    sensor={} window_end={} avg={}",
            t.values[0], t.values[1], t.values[2]
        );
    }
}
