//! Smart Grid on simulated clusters: runs the DEBS'14 Smart Grid
//! application on the paper's three CloudLab cluster types at several
//! parallelism degrees and prints the latency matrix — a single-app slice
//! of Experiment 2 (Figure 4 top).
//!
//! ```text
//! cargo run --release --example smart_grid_cluster
//! ```

use pdsp_bench::apps::{app_by_acronym, AppConfig};
use pdsp_bench::cluster::{Cluster, SimConfig, Simulator};

fn main() {
    let app = app_by_acronym("SG").expect("smart grid is registered");
    let built = app.build(&AppConfig {
        event_rate: 100_000.0,
        total_tuples: 1_000,
        seed: 7,
    });
    println!(
        "Application: {} — {}",
        app.info().name,
        app.info().description
    );

    let sim_config = SimConfig {
        event_rate: 100_000.0,
        duration_ms: 4_000,
        ..SimConfig::default()
    };
    let clusters = [
        Cluster::homogeneous_m510(10),
        Cluster::c6525_25g(10),
        Cluster::c6320(10),
        Cluster::heterogeneous_mixed(10),
    ];
    let degrees = [1usize, 8, 16, 64, 128];

    print!("{:24}", "cluster \\ parallelism");
    for d in degrees {
        print!("{d:>12}");
    }
    println!();
    for cluster in clusters {
        let sim = Simulator::new(cluster.clone(), sim_config.clone());
        print!("{:24}", cluster.name);
        for d in degrees {
            let plan = built.plan.clone().with_uniform_parallelism(d);
            match sim.measure(&plan) {
                Ok(latency) => print!("{latency:>11.1}m"),
                Err(e) => print!("{:>12}", format!("err:{e}")),
            }
        }
        println!();
    }
    println!("(mean of 3 runs of median end-to-end latency, ms)");
    println!(
        "\nNote how the UDO-heavy median detector saturates at low parallelism\n\
         and how the faster clusters (c6525_25g clock, c6320 cores) shift the\n\
         curve — the paper's observations O1/O5 for SG."
    );
}
