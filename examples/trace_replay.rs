//! Trace replay + session windows: writes a small smart-plug CSV trace,
//! replays it through the engine (the Kafka-substitute path for real
//! datasets), sessionizes per-plug activity bursts, and prints per-operator
//! statistics.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use pdsp_bench::engine::agg::AggFunc;
use pdsp_bench::engine::physical::PhysicalPlan;
use pdsp_bench::engine::runtime::{RunConfig, ThreadedRuntime};
use pdsp_bench::engine::value::{FieldType, Schema};
use pdsp_bench::engine::PlanBuilder;
use pdsp_bench::workload::Trace;

fn main() {
    // [timestamp_ms, plug_id, watts] — three plugs with activity bursts.
    let mut csv = String::from("# ts_ms, plug, watts\n");
    for burst in 0..4i64 {
        for plug in 0..3i64 {
            for i in 0..20i64 {
                let ts = burst * 5_000 + plug * 7 + i * 40;
                let watts = 100.0 + plug as f64 * 50.0 + (i % 5) as f64;
                csv.push_str(&format!("{ts}, {plug}, {watts}\n"));
            }
        }
    }
    let path = std::env::temp_dir().join("pdsp_example_trace.csv");
    std::fs::write(&path, csv).expect("write trace");

    let schema = Schema::of(&[FieldType::Int, FieldType::Int, FieldType::Double]);
    let trace = Trace::from_csv(&path, schema.clone(), Some(0), 1_000.0).expect("parse trace");
    println!(
        "Loaded trace: {} readings from {}",
        trace.len(),
        path.display()
    );

    // Sessionize: per-plug bursts separated by >1s of inactivity; average
    // watts per session.
    let plan = PlanBuilder::new()
        .source("plug-trace", schema, 1)
        .session_window_keyed("sessions", 1_000, AggFunc::Avg, 2, 1)
        .set_parallelism(1, 2)
        .sink("sink")
        .build()
        .expect("valid plan");

    let physical = PhysicalPlan::expand(&plan).expect("expansion");
    let result = ThreadedRuntime::new(RunConfig::default())
        .run(&physical, &[trace.replay(2)]) // loop the trace twice
        .expect("execution");

    println!("\nSessions detected: {}", result.tuples_out);
    println!("  plug   session_end   avg_watts");
    for t in result.sink_tuples.iter().take(8) {
        println!(
            "  {:>4}   {:>11}   {:>9.1}",
            t.values[0], t.values[1], t.values[2]
        );
    }

    println!("\nPer-operator statistics:");
    for s in &result.operator_stats {
        println!(
            "  [{:>2}] {:<12} in {:>6}  out {:>6}  selectivity {:>6}",
            s.node,
            s.name,
            s.tuples_in,
            s.tuples_out,
            s.observed_selectivity()
                .map(|x| format!("{x:.3}"))
                .unwrap_or_else(|| "-".into())
        );
    }
    std::fs::remove_file(&path).ok();
}
