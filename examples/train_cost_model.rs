//! Train and compare learned cost models: generates a labeled workload with
//! the ML manager (queries executed on the simulated cluster), trains all
//! four models on the same data, and reports q-error + training cost — a
//! small-scale Experiment 3.
//!
//! ```text
//! cargo run --release --example train_cost_model
//! ```

use pdsp_bench::cluster::{Cluster, SimConfig, Simulator};
use pdsp_bench::core::ml_manager::{MlManager, TrainingDataSpec};
use pdsp_bench::ml::trainer::TrainOptions;
use pdsp_bench::workload::{EnumerationStrategy, QueryStructure};

fn main() {
    let sim_config = SimConfig {
        event_rate: 100_000.0,
        duration_ms: 2_500,
        ..SimConfig::default()
    };
    let manager = MlManager::new(Simulator::new(
        Cluster::homogeneous_m510(10),
        sim_config.clone(),
    ));

    println!("Generating 60 training + 30 evaluation queries (simulated)...");
    let train = manager
        .generate(&TrainingDataSpec {
            structures: QueryStructure::ALL.to_vec(),
            queries: 60,
            strategy: EnumerationStrategy::RuleBased,
            event_rate: sim_config.event_rate,
            seed: 1,
        })
        .expect("training data");
    let eval = manager
        .generate(&TrainingDataSpec {
            structures: QueryStructure::ALL.to_vec(),
            queries: 30,
            strategy: EnumerationStrategy::RuleBased,
            event_rate: sim_config.event_rate,
            seed: 2,
        })
        .expect("evaluation data");
    println!(
        "  data generation took {:.1}s + {:.1}s\n",
        train.generation_time.as_secs_f64(),
        eval.generation_time.as_secs_f64()
    );

    let opts = TrainOptions::default();
    let evals = MlManager::train_and_evaluate(&train.dataset, &eval.dataset, &opts);

    println!(
        "{:6} {:>12} {:>10} {:>10} {:>8} {:>10}",
        "model", "median q-err", "p90 q-err", "fit (s)", "epochs", "early-stop"
    );
    for e in &evals {
        println!(
            "{:6} {:>12.2} {:>10.2} {:>10.2} {:>8} {:>10}",
            e.model,
            e.qerror.median,
            e.qerror.p90,
            e.report.train_time.as_secs_f64(),
            e.report.epochs,
            e.report.early_stopped
        );
    }

    let best = evals
        .iter()
        .min_by(|a, b| a.qerror.median.total_cmp(&b.qerror.median))
        .unwrap();
    println!(
        "\nBest model on held-out queries: {} (median q-error {:.2})",
        best.model, best.qerror.median
    );
}
