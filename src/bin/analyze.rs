//! `analyze` — run the static plan analyzer from the command line.
//!
//! ```text
//! analyze --all-apps                 # analyze every registry application
//! analyze --app SG                   # analyze one application
//! analyze --all-apps --deny-warnings # CI mode: warnings fail the run
//! analyze --app WC --json            # machine-readable report
//! analyze --all-apps --format sarif  # SARIF 2.1.0 for code-scanning UIs
//! analyze --explain PB061            # what a diagnostic code means
//! ```
//!
//! Exit status: 0 when every analyzed plan is free of errors (and, with
//! `--deny-warnings`, free of warnings); 1 otherwise; 2 on usage errors.

use pdsp_bench::analyze::{sarif, Analyzer, Code, Report};
use pdsp_bench::apps::{all_applications, app_by_acronym, AppConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  analyze --all-apps [--deny-warnings] [--json | --format sarif]\n  \
         analyze --app <ACRONYM> [--deny-warnings] [--json | --format sarif]\n  \
         analyze --explain <CODE>"
    );
    std::process::exit(2);
}

/// Print the rule catalogue entry for one diagnostic code.
fn explain(raw: &str) -> ! {
    let Some(code) = Code::parse(raw) else {
        eprintln!(
            "unknown diagnostic code '{raw}'; known codes: {}",
            Code::ALL
                .iter()
                .map(|c| c.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };
    println!("{} ({})", code.as_str(), code.severity());
    println!("\n{}", code.explanation());
    println!("\nremediation: {}", code.remediation());
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--explain") {
        let Some(raw) = args.get(i + 1) else { usage() };
        explain(raw);
    }
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let json = args.iter().any(|a| a == "--json");
    let sarif_out = match args.iter().position(|a| a == "--format") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("sarif") => true,
            Some("text") | Some("json") => false,
            _ => usage(),
        },
        None => false,
    };

    let apps = if args.iter().any(|a| a == "--all-apps") {
        all_applications()
    } else if let Some(i) = args.iter().position(|a| a == "--app") {
        let Some(acr) = args.get(i + 1) else { usage() };
        let Some(app) = app_by_acronym(acr) else {
            eprintln!(
                "unknown application '{acr}'; known: {}",
                all_applications()
                    .iter()
                    .map(|a| a.info().acronym)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        };
        vec![app]
    } else {
        usage()
    };

    let analyzer = Analyzer::new();
    let config = AppConfig {
        total_tuples: 1_000,
        ..AppConfig::default()
    };
    let mut reports: Vec<Report> = Vec::new();
    for app in &apps {
        let info = app.info();
        let built = app.build(&config);
        match analyzer.analyze(info.acronym, &built.plan) {
            Ok(report) => reports.push(report),
            Err(e) => {
                eprintln!("{}: analysis failed: {e}", info.acronym);
                std::process::exit(1);
            }
        }
    }

    if sarif_out {
        println!("{}", sarif::to_sarif(&reports));
    } else if json {
        let rendered: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", rendered.join(",\n"));
    } else {
        for report in &reports {
            print!("{}", report.render());
        }
        let errors: usize = reports.iter().map(|r| r.errors()).sum();
        let warnings: usize = reports.iter().map(|r| r.warnings()).sum();
        let hints: usize = reports.iter().map(|r| r.hints()).sum();
        println!(
            "{} plan(s) analyzed: {errors} error(s), {warnings} warning(s), {hints} hint(s)",
            reports.len()
        );
    }

    let failed = reports
        .iter()
        .any(|r| r.errors() > 0 || (deny_warnings && r.warnings() > 0));
    std::process::exit(if failed { 1 } else { 0 });
}
