//! `pdsp` — command-line front end for PDSP-Bench (the programmatic
//! replacement for the paper's web UI).
//!
//! ```text
//! pdsp list-apps
//! pdsp run-app SG --parallelism 16 --backend sim --cluster mixed --rate 100000
//! pdsp run-app WC --backend threads --tuples 20000 --telemetry --store runs/
//! pdsp run-app WC --backend distributed --workers 2
//! pdsp run-app WC --backend distributed --workers 2 --kill-worker 1 --kill-after-ms 20
//! pdsp run-query 2-way-join --parallelism 8 --rate 200000
//! pdsp telemetry --store runs/                      # list experiments
//! pdsp telemetry --store runs/ --experiment exp-... # render one timeline
//! pdsp tables
//! ```
//!
//! The `worker` subcommand is not meant for interactive use: the
//! distributed backend's coordinator spawns `pdsp worker --coordinator
//! <addr> --id <n>` processes itself.

use pdsp_bench::apps::{all_applications, app_by_name, AppConfig};
use pdsp_bench::cluster::{Cluster, SimConfig, Simulator};
use pdsp_bench::core::controller::{Controller, RunRecord};
use pdsp_bench::core::{deploy, report};
use pdsp_bench::engine::distributed::{DistributedConfig, KillSpec};
use pdsp_bench::engine::WorkerMain;
use pdsp_bench::store::{Filter, Store};
use pdsp_bench::telemetry::{
    assemble, attribute, attribution_report, chrome_trace_json, compare_report, json_lines,
    prometheus_text, TelemetryConfig, TelemetryTimeline, TraceSet,
};
use pdsp_bench::workload::{ParameterSpace, QueryGenerator, QueryStructure};
use std::sync::Arc;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Open `--store DIR` when given, else an in-memory store.
fn open_store(args: &[String]) -> Arc<Store> {
    match flag_value(args, "--store") {
        Some(dir) => match Store::open(&dir) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("cannot open store '{dir}': {e}");
                std::process::exit(1);
            }
        },
        None => Arc::new(Store::in_memory()),
    }
}

fn parse_cluster(name: &str) -> Option<Cluster> {
    match name {
        "m510" => Some(Cluster::homogeneous_m510(10)),
        "c6525" | "c6525_25g" => Some(Cluster::c6525_25g(10)),
        "c6320" => Some(Cluster::c6320(10)),
        "mixed" | "heterogeneous" => Some(Cluster::heterogeneous_mixed(10)),
        _ => None,
    }
}

fn parse_structure(label: &str) -> Option<QueryStructure> {
    QueryStructure::ALL
        .iter()
        .copied()
        .find(|s| s.label() == label)
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  pdsp list-apps\n  pdsp tables\n  pdsp run-app <ACRONYM> \
         [--parallelism N] [--backend sim|threads|distributed] \
         [--cluster m510|c6525|c6320|mixed] \
         [--rate EV_PER_S] [--tuples N] [--seed N] [--telemetry] [--store DIR]\n    \
         tracing: [--trace] [--trace-every N] [--trace-out FILE.json]\n    \
         distributed backend: [--workers N] [--check-schemas] \
         [--kill-worker W --kill-after-ms MS]\n  \
         pdsp run-query <structure> \
         [--parallelism N] [--cluster ...] [--rate EV_PER_S] [--telemetry] [--store DIR]\n  \
         pdsp telemetry --store DIR [--experiment ID] [--format report|prom|json]\n  \
         pdsp trace --store DIR [--experiment ID] [--format report|chrome] [--out FILE] \
         [--compare [--cluster ...]]\n  \
         pdsp worker --coordinator ADDR --id N   (spawned by the distributed backend)\n\
         structures: {}",
        QueryStructure::ALL
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    match command.as_str() {
        "list-apps" => {
            println!("{}", report::table2());
        }
        "tables" => {
            println!("{}", report::table2());
            println!("{}", report::table3());
            println!("{}", report::table4());
        }
        "run-app" => {
            let Some(acr) = args.get(1) else { usage() };
            let Some(app) = app_by_name(acr) else {
                eprintln!(
                    "unknown application '{acr}'; known: {}",
                    all_applications()
                        .iter()
                        .map(|a| a.info().acronym)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            };
            let parallelism: usize = flag_value(&args, "--parallelism")
                .and_then(|v| v.parse().ok())
                .unwrap_or(4);
            let rate: f64 = flag_value(&args, "--rate")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100_000.0);
            let tuples: usize = flag_value(&args, "--tuples")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10_000);
            let seed: u64 = flag_value(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            let cluster = flag_value(&args, "--cluster")
                .and_then(|c| parse_cluster(&c))
                .unwrap_or_else(|| Cluster::homogeneous_m510(10));
            let backend = flag_value(&args, "--backend").unwrap_or_else(|| "sim".into());

            let sim_config = SimConfig {
                event_rate: rate,
                seed,
                ..SimConfig::default()
            };
            let store = open_store(&args);
            let mut controller = Controller::new(cluster.clone(), sim_config, Arc::clone(&store));
            // `--trace` turns on 1-in-256 head sampling; `--trace-every N`
            // picks the rate explicitly. Either implies telemetry.
            let trace_every: u64 =
                if has_flag(&args, "--trace") || flag_value(&args, "--trace-every").is_some() {
                    flag_value(&args, "--trace-every")
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or(256)
                } else {
                    0
                };
            if has_flag(&args, "--telemetry") || trace_every > 0 {
                controller = controller.with_telemetry(TelemetryConfig {
                    trace_every,
                    ..TelemetryConfig::default()
                });
            }
            let info = app.info();
            println!("{} ({}) on {}", info.name, info.acronym, cluster);
            let record = match backend.as_str() {
                "threads" => controller.run_threaded(
                    app.as_ref(),
                    &AppConfig {
                        event_rate: rate,
                        total_tuples: tuples,
                        seed,
                    },
                    parallelism,
                ),
                "sim" => {
                    let built = app.build(&AppConfig {
                        event_rate: rate,
                        total_tuples: tuples,
                        seed,
                    });
                    let plan = built.plan.with_uniform_parallelism(parallelism);
                    controller.run_simulated(info.acronym, &plan)
                }
                "distributed" => {
                    let workers: usize = flag_value(&args, "--workers")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(2);
                    let exe = std::env::current_exe()
                        .ok()
                        .and_then(|p| p.to_str().map(String::from))
                        .unwrap_or_else(|| "pdsp".into());
                    let mut dist = DistributedConfig {
                        workers,
                        worker_bin: vec![exe, "worker".into()],
                        ..DistributedConfig::default()
                    };
                    if has_flag(&args, "--check-schemas") {
                        dist.ft.run.check_schemas = true;
                    }
                    if let Some(worker) =
                        flag_value(&args, "--kill-worker").and_then(|v| v.parse().ok())
                    {
                        let after_ms = flag_value(&args, "--kill-after-ms")
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(20);
                        dist.kill = Some(KillSpec { worker, after_ms });
                    }
                    controller
                        .run_distributed(
                            app.as_ref(),
                            &AppConfig {
                                event_rate: rate,
                                total_tuples: tuples,
                                seed,
                            },
                            parallelism,
                            dist,
                        )
                        .map(|(record, run)| {
                            let rec = &run.ft.recovery;
                            println!("workers      : {workers}");
                            println!("attempts     : {}", rec.attempts);
                            if let Some(ckpt) = rec.restored_checkpoint {
                                println!("restored ckpt: #{ckpt}");
                            }
                            if !rec.recovery_times_ms.is_empty() {
                                println!("recovery     : {:.1?} ms", rec.recovery_times_ms);
                            }
                            if rec.replayed_tuples > 0 {
                                println!(
                                    "replayed     : {} tuples ({} rolled back, {} duplicated)",
                                    rec.replayed_tuples,
                                    rec.rolled_back_tuples,
                                    rec.duplicate_tuples
                                );
                            }
                            for alarm in &run.alarms {
                                println!(
                                    "alarm        : {:?} {}[{}] ({} over threshold {})",
                                    alarm.kind,
                                    alarm.operator,
                                    alarm.instance,
                                    alarm.value,
                                    alarm.threshold
                                );
                            }
                            record
                        })
                }
                other => {
                    eprintln!("unknown backend '{other}' (sim|threads|distributed)");
                    std::process::exit(2);
                }
            };
            match record {
                Ok(r) => {
                    println!("backend      : {}", r.backend);
                    println!("parallelism  : {:?}", r.parallelism);
                    println!("p50 latency  : {:.2} ms", r.summary.p50_latency_ms);
                    println!("p99 latency  : {:.2} ms", r.summary.p99_latency_ms);
                    println!(
                        "tuples in/out: {} / {}",
                        r.summary.tuples_in, r.summary.tuples_out
                    );
                    println!("throughput   : {:.0} t/s", r.summary.throughput_in);
                    if let Some(id) = &r.experiment_id {
                        if let Some(timeline) = controller.telemetry_for(id) {
                            println!("\n{}", report::telemetry_report(&timeline));
                        }
                        if let Some(traces) = controller.traces_for(id) {
                            let trees = assemble(traces.spans.clone());
                            let complete = attribute(&trees).traces;
                            let cross = trees.iter().filter(|t| t.is_cross_process()).count();
                            let netted = trees.iter().filter(|t| t.has_net_span()).count();
                            println!(
                                "traces       : {} assembled, {complete} complete, \
                                 {cross} cross-process, {netted} with network spans",
                                trees.len()
                            );
                            println!("experiment   : {id}");
                            if let Some(path) = flag_value(&args, "--trace-out") {
                                match std::fs::write(&path, chrome_trace_json(&traces.spans)) {
                                    Ok(()) => println!("trace json   : {path}"),
                                    Err(e) => {
                                        eprintln!("cannot write '{path}': {e}");
                                        std::process::exit(1);
                                    }
                                }
                            }
                        }
                    }
                    store.flush().ok();
                }
                Err(e) => {
                    eprintln!("run failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "run-query" => {
            let Some(label) = args.get(1) else { usage() };
            let Some(structure) = parse_structure(label) else {
                eprintln!("unknown structure '{label}'");
                usage();
            };
            let parallelism: usize = flag_value(&args, "--parallelism")
                .and_then(|v| v.parse().ok())
                .unwrap_or(4);
            let rate: f64 = flag_value(&args, "--rate")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100_000.0);
            let cluster = flag_value(&args, "--cluster")
                .and_then(|c| parse_cluster(&c))
                .unwrap_or_else(|| Cluster::homogeneous_m510(10));
            let mut generator = QueryGenerator::new(ParameterSpace::default(), 7);
            generator.event_rate_override = Some(rate);
            let query = generator.generate(structure);
            let plan = query.plan.with_uniform_parallelism(parallelism);
            let sim = Simulator::new(
                cluster.clone(),
                SimConfig {
                    event_rate: rate,
                    ..SimConfig::default()
                },
            );
            println!(
                "{} (window {}) at parallelism {parallelism} on {cluster}",
                structure.label(),
                query.window
            );
            if has_flag(&args, "--telemetry") {
                let store = open_store(&args);
                let controller = Controller::new(
                    cluster.clone(),
                    SimConfig {
                        event_rate: rate,
                        ..SimConfig::default()
                    },
                    Arc::clone(&store),
                )
                .with_telemetry(TelemetryConfig::default());
                match controller.run_simulated(structure.label(), &plan) {
                    Ok(r) => {
                        println!(
                            "mean-of-3-medians latency: {:.2} ms",
                            r.summary.p50_latency_ms
                        );
                        if let Some(id) = &r.experiment_id {
                            if let Some(timeline) = controller.telemetry_for(id) {
                                println!("\n{}", report::telemetry_report(&timeline));
                            }
                        }
                        store.flush().ok();
                    }
                    Err(e) => {
                        eprintln!("simulation failed: {e}");
                        std::process::exit(1);
                    }
                }
            } else {
                match sim.measure(&plan) {
                    Ok(latency) => println!("mean-of-3-medians latency: {latency:.2} ms"),
                    Err(e) => {
                        eprintln!("simulation failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "worker" => {
            // Spawned by the distributed backend's coordinator; resolves
            // plan specs with the same resolver the coordinator uses, so
            // `app:` specs deploy the full application suite.
            let Some(coordinator) = flag_value(&args, "--coordinator") else {
                eprintln!("pdsp worker needs --coordinator ADDR --id N");
                std::process::exit(2);
            };
            let Some(id) = flag_value(&args, "--id").and_then(|v| v.parse::<usize>().ok()) else {
                eprintln!("pdsp worker needs --coordinator ADDR --id N");
                std::process::exit(2);
            };
            if let Err(e) = WorkerMain::new(deploy::resolver()).run(&coordinator, id) {
                eprintln!("worker {id} failed: {e}");
                std::process::exit(1);
            }
        }
        "telemetry" => {
            if flag_value(&args, "--store").is_none() {
                eprintln!("pdsp telemetry needs --store DIR (where instrumented runs were saved)");
                std::process::exit(2);
            }
            let store = open_store(&args);
            match flag_value(&args, "--experiment") {
                None => {
                    let ids: Vec<(String, String, String)> = store.with("telemetry", |c| {
                        c.iter()
                            .filter_map(|doc| {
                                let id = doc.body.get("experiment_id")?.as_str()?;
                                let app = doc.body.get("app")?.as_str()?;
                                let backend = doc.body.get("backend")?.as_str()?;
                                Some((id.to_string(), app.to_string(), backend.to_string()))
                            })
                            .collect()
                    });
                    if ids.is_empty() {
                        println!("no telemetry recorded (run with --telemetry first)");
                    } else {
                        println!("{:30} {:8} backend", "experiment", "app");
                        for (id, app, backend) in ids {
                            println!("{id:30} {app:8} {backend}");
                        }
                    }
                }
                Some(id) => {
                    let timeline: Option<TelemetryTimeline> = store.with("telemetry", |c| {
                        c.find_as(&Filter::eq("experiment_id", id.as_str()))
                            .into_iter()
                            .next()
                    });
                    let Some(timeline) = timeline else {
                        eprintln!("no telemetry stored for experiment '{id}'");
                        std::process::exit(1);
                    };
                    let format = flag_value(&args, "--format").unwrap_or_else(|| "report".into());
                    match format.as_str() {
                        "report" => println!("{}", report::telemetry_report(&timeline)),
                        "prom" => {
                            let last = timeline
                                .final_sample()
                                .map(|s| s.instances.clone())
                                .unwrap_or_default();
                            print!("{}", prometheus_text(&last));
                        }
                        "json" => print!("{}", json_lines(&timeline)),
                        other => {
                            eprintln!("unknown format '{other}' (report|prom|json)");
                            std::process::exit(2);
                        }
                    }
                }
            }
        }
        "trace" => {
            if flag_value(&args, "--store").is_none() {
                eprintln!("pdsp trace needs --store DIR (where traced runs were saved)");
                std::process::exit(2);
            }
            let store = open_store(&args);
            match flag_value(&args, "--experiment") {
                None => {
                    let sets: Vec<(String, String, String, u64, usize)> =
                        store.with("traces", |c| {
                            c.iter()
                                .filter_map(|doc| {
                                    let id = doc.body.get("experiment_id")?.as_str()?;
                                    let app = doc.body.get("app")?.as_str()?;
                                    let backend = doc.body.get("backend")?.as_str()?;
                                    let every =
                                        doc.body.get("sample_every").and_then(|v| v.as_u64())?;
                                    let spans =
                                        doc.body.get("spans").and_then(|v| v.as_array())?.len();
                                    Some((
                                        id.to_string(),
                                        app.to_string(),
                                        backend.to_string(),
                                        every,
                                        spans,
                                    ))
                                })
                                .collect()
                        });
                    if sets.is_empty() {
                        println!("no traces recorded (run with --trace first)");
                    } else {
                        println!(
                            "{:30} {:8} {:12} {:>8} spans",
                            "experiment", "app", "backend", "1-in-N"
                        );
                        for (id, app, backend, every, spans) in sets {
                            println!("{id:30} {app:8} {backend:12} {every:>8} {spans}");
                        }
                    }
                }
                Some(id) => {
                    let set: Option<TraceSet> = store.with("traces", |c| {
                        c.find_as(&Filter::eq("experiment_id", id.as_str()))
                            .into_iter()
                            .next()
                    });
                    let Some(set) = set else {
                        eprintln!("no traces stored for experiment '{id}'");
                        std::process::exit(1);
                    };
                    let output = if has_flag(&args, "--compare") {
                        // Predicted-vs-measured: re-run the application on
                        // the simulator with the same sampling rate and diff
                        // the per-edge critical-path attributions.
                        let Some(app) = app_by_name(&set.app) else {
                            eprintln!("cannot compare: '{}' is not a known application", set.app);
                            std::process::exit(1);
                        };
                        // The matching run record supplies the measured
                        // run's parallelism and event rate.
                        let record: Option<RunRecord> = store.with("runs", |c| {
                            c.find_as(&Filter::eq("experiment_id", id.as_str()))
                                .into_iter()
                                .next()
                        });
                        let parallelism = record
                            .as_ref()
                            .and_then(|r| r.parallelism.iter().copied().max())
                            .unwrap_or(4);
                        let event_rate = record.as_ref().map(|r| r.event_rate).unwrap_or(100_000.0);
                        let cluster = flag_value(&args, "--cluster")
                            .and_then(|c| parse_cluster(&c))
                            .unwrap_or_else(|| Cluster::homogeneous_m510(10));
                        let built = app.build(&AppConfig {
                            event_rate,
                            ..AppConfig::default()
                        });
                        let plan = built.plan.with_uniform_parallelism(parallelism);
                        let sim = Simulator::new(
                            cluster,
                            SimConfig {
                                event_rate,
                                ..SimConfig::default()
                            },
                        );
                        let predicted = match sim.run_instrumented(
                            &plan,
                            &set.app,
                            "compare",
                            &TelemetryConfig {
                                trace_every: set.sample_every.max(1),
                                ..TelemetryConfig::default()
                            },
                        ) {
                            Ok(r) => attribute(&assemble(r.spans)),
                            Err(e) => {
                                eprintln!("prediction run failed: {e}");
                                std::process::exit(1);
                            }
                        };
                        let measured = attribute(&assemble(set.spans.clone()));
                        compare_report(&measured, &predicted)
                    } else {
                        let format =
                            flag_value(&args, "--format").unwrap_or_else(|| "report".into());
                        match format.as_str() {
                            "report" => attribution_report(&assemble(set.spans.clone())),
                            "chrome" => chrome_trace_json(&set.spans),
                            other => {
                                eprintln!("unknown format '{other}' (report|chrome)");
                                std::process::exit(2);
                            }
                        }
                    };
                    match flag_value(&args, "--out") {
                        Some(path) => {
                            if let Err(e) = std::fs::write(&path, &output) {
                                eprintln!("cannot write '{path}': {e}");
                                std::process::exit(1);
                            }
                            println!("wrote {path}");
                        }
                        None => println!("{output}"),
                    }
                }
            }
        }
        _ => usage(),
    }
}
