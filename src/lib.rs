//! # PDSP-Bench (Rust reproduction)
//!
//! A benchmarking system for parallel and distributed stream processing,
//! reproducing Agnihotri et al., *PDSP-Bench* (TPCTC 2024) from scratch in
//! Rust. This facade crate re-exports the whole workspace:
//!
//! * [`engine`] — the stream-processing system under test (parallel
//!   dataflow plans, partitioned edges, windows, joins, UDOs, a
//!   multi-threaded runtime);
//! * [`cluster`] — heterogeneous cluster model + discrete-event execution
//!   simulator (CloudLab substitute);
//! * [`workload`] — data/query generators, selectivity estimation, and the
//!   six parallelism enumeration strategies;
//! * [`apps`] — the 14-application real-world suite plus 9 synthetic query
//!   structures;
//! * [`analyze`] — multi-pass static plan analyzer (key-flow, exactly-once
//!   safety, state bounds, backpressure hazards, cost smells) with stable
//!   `PB0xx` diagnostics;
//! * [`ml`] — learned cost models (LR, MLP, RF, GNN) with q-error metrics;
//! * [`metrics`] — latency/throughput collection and the paper's
//!   measurement protocol;
//! * [`telemetry`] — live runtime telemetry: per-instance metrics registry,
//!   time-series sampler, flight recorder, Prometheus/JSON-lines exporters;
//! * [`store`] — embedded document store for workloads and results;
//! * [`core`] — the controller, ML manager, and every experiment of the
//!   paper's evaluation (Figures 3-6, Tables 2-4).
//!
//! ## Quickstart
//!
//! ```
//! use pdsp_bench::engine::{PlanBuilder, PhysicalPlan, ThreadedRuntime, RunConfig};
//! use pdsp_bench::engine::expr::{CmpOp, Predicate};
//! use pdsp_bench::engine::runtime::VecSource;
//! use pdsp_bench::engine::value::{FieldType, Schema, Tuple, Value};
//!
//! let plan = PlanBuilder::new()
//!     .source("numbers", Schema::of(&[FieldType::Int]), 1)
//!     .filter("positive", Predicate::cmp(0, CmpOp::Gt, Value::Int(0)), 0.5)
//!     .set_parallelism(1, 4)
//!     .sink("sink")
//!     .build()
//!     .unwrap();
//! let tuples: Vec<Tuple> = (-50..50).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
//! let physical = PhysicalPlan::expand(&plan).unwrap();
//! let result = ThreadedRuntime::new(RunConfig::default())
//!     .run(&physical, &[VecSource::new(tuples)])
//!     .unwrap();
//! assert_eq!(result.tuples_out, 49);
//! ```

pub use pdsp_analyze as analyze;
pub use pdsp_apps as apps;
pub use pdsp_bench_core as core;
pub use pdsp_cluster as cluster;
pub use pdsp_engine as engine;
pub use pdsp_metrics as metrics;
pub use pdsp_ml as ml;
pub use pdsp_store as store;
pub use pdsp_telemetry as telemetry;
pub use pdsp_workload as workload;
