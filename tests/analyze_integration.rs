//! Cross-crate integration tests for the static plan analyzer: the shipped
//! application suite must analyze clean, and the controller's deploy gate
//! must refuse broken plans end-to-end.

use pdsp_bench::analyze::{analyze, Analyzer};
use pdsp_bench::apps::{all_applications, AppConfig};
use pdsp_bench::cluster::{Cluster, SimConfig};
use pdsp_bench::core::controller::Controller;
use pdsp_bench::engine::agg::AggFunc;
use pdsp_bench::engine::error::EngineError;
use pdsp_bench::engine::operator::OpKind;
use pdsp_bench::engine::plan::Partitioning;
use pdsp_bench::engine::value::{FieldType, Schema};
use pdsp_bench::engine::window::WindowSpec;
use pdsp_bench::engine::PlanBuilder;
use pdsp_bench::store::Store;
use std::sync::Arc;

fn app_config() -> AppConfig {
    AppConfig {
        total_tuples: 1_000,
        ..AppConfig::default()
    }
}

/// Every registry app's shipped plan carries zero errors and zero warnings
/// (hints are advisory and allowed).
#[test]
fn all_registry_apps_analyze_clean() {
    let cfg = app_config();
    for app in all_applications() {
        let info = app.info();
        let report = analyze(info.acronym, &app.build(&cfg).plan).unwrap();
        assert_eq!(report.errors(), 0, "{}", report.render());
        assert_eq!(report.warnings(), 0, "{}", report.render());
    }
}

/// The apps stay error-free when scaled out: at uniform parallelism 8 the
/// declared partitionings and UDO properties must still line up (this is
/// exactly the plan shape the controller gates before a sweep point runs).
#[test]
fn registry_apps_stay_error_free_at_parallelism_8() {
    let cfg = app_config();
    let analyzer = Analyzer::new();
    for app in all_applications() {
        let info = app.info();
        let plan = app.build(&cfg).plan.with_uniform_parallelism(8);
        let report = analyzer.analyze(info.acronym, &plan).unwrap();
        assert_eq!(
            report.errors(),
            0,
            "{} at p=8:\n{}",
            info.acronym,
            report.render()
        );
    }
}

/// End-to-end: the controller's deploy gate refuses a plan the analyzer
/// flags with an Error, and the refusal is a typed `AnalysisRejected`.
#[test]
fn controller_gate_refuses_broken_plan_end_to_end() {
    let mut b = PlanBuilder::new();
    let s = b.add_node(
        "src",
        OpKind::Source {
            schema: Schema::of(&[FieldType::Int, FieldType::Double]),
        },
        1,
    );
    let a = b.add_node(
        "agg",
        OpKind::WindowAggregate {
            window: WindowSpec::tumbling_count(8),
            func: AggFunc::Sum,
            agg_field: 1,
            key_field: Some(0),
        },
        4,
    );
    let k = b.add_node("sink", OpKind::Sink, 1);
    b.add_edge(s, a, 0, Partitioning::Rebalance);
    b.add_edge(a, k, 0, Partitioning::Rebalance);
    let broken = b.build_unchecked();

    let controller = Controller::new(
        Cluster::homogeneous_m510(4),
        SimConfig::default(),
        Arc::new(Store::in_memory()),
    );
    let err = controller.run_simulated("broken", &broken).unwrap_err();
    match err {
        EngineError::AnalysisRejected {
            workload,
            errors,
            first,
        } => {
            assert_eq!(workload, "broken");
            assert!(errors >= 1);
            assert!(first.contains("PB001"), "first diagnostic named: {first}");
        }
        other => panic!("expected AnalysisRejected, got {other}"),
    }
}
