//! The demo scenario of the distributed backend, end to end through the
//! public controller API: a 2-worker WordCount where one worker process is
//! killed with a real SIGKILL mid-run. The coordinator must detect the
//! death by heartbeat silence (there is no in-band failure signal from a
//! SIGKILLed process), restore from a network checkpoint, replay, and
//! deliver sink counts identical to an unkilled threaded run.

use pdsp_bench::apps::{app_by_name, AppConfig};
use pdsp_bench::cluster::{Cluster, SimConfig};
use pdsp_bench::core::controller::Controller;
use pdsp_bench::engine::distributed::{DistributedConfig, KillSpec};
use pdsp_bench::engine::fault::{Backoff, DeliveryMode, RestartPolicy};
use pdsp_bench::store::Store;
use pdsp_bench::telemetry::AlarmKind;
use std::sync::Arc;
use std::time::Duration;

fn controller() -> Controller {
    Controller::new(
        Cluster::homogeneous_m510(4),
        SimConfig::default(),
        Arc::new(Store::in_memory()),
    )
}

fn dist_config(kill: Option<KillSpec>) -> DistributedConfig {
    let mut dist = DistributedConfig {
        workers: 2,
        // The coordinator spawns this very test binary's `pdsp` sibling;
        // CARGO_BIN_EXE_* points at the freshly built one.
        worker_bin: vec![env!("CARGO_BIN_EXE_pdsp").to_string(), "worker".to_string()],
        kill,
        ..DistributedConfig::default()
    };
    dist.ft.mode = DeliveryMode::ExactlyOnce;
    dist.ft.checkpoint_interval_tuples = 200;
    dist.ft.restart = RestartPolicy {
        max_restarts: 3,
        backoff: Backoff::Fixed(Duration::from_millis(5)),
    };
    dist
}

#[test]
fn two_worker_word_count_survives_a_sigkill_with_identical_counts() {
    let app = app_by_name("word_count").expect("WC resolves by full name");
    let config = AppConfig {
        event_rate: 150_000.0,
        total_tuples: 6_000,
        seed: 11,
    };

    let ctl = controller();
    let baseline = ctl
        .run_threaded(app.as_ref(), &config, 4)
        .expect("threaded baseline");

    let kill = Some(KillSpec {
        worker: 1,
        after_ms: 25,
    });
    let (record, run) = ctl
        .run_distributed(app.as_ref(), &config, 4, dist_config(kill))
        .expect("distributed run recovers");

    let recovery = &run.ft.recovery;
    assert!(
        recovery.attempts >= 2,
        "the SIGKILL must actually cost an attempt (got {})",
        recovery.attempts
    );
    assert_eq!(
        recovery.duplicate_tuples, 0,
        "exactly-once delivery admits no duplicates"
    );
    assert!(
        run.alarms
            .iter()
            .any(|a| a.kind == AlarmKind::HeartbeatGap && a.instance == 1),
        "the killed worker must be named by a heartbeat-gap alarm, got {:?}",
        run.alarms
    );

    assert_eq!(record.backend, "distributed");
    assert_eq!(record.cluster, "local-processes");
    assert_eq!(record.summary.tuples_in, baseline.summary.tuples_in);
    assert_eq!(
        record.summary.tuples_out, baseline.summary.tuples_out,
        "sink counts must match the unkilled threaded run exactly"
    );
}

#[test]
fn healthy_distributed_run_matches_threaded_and_stays_quiet() {
    let app = app_by_name("WC").expect("WC resolves by acronym");
    let config = AppConfig {
        event_rate: 150_000.0,
        total_tuples: 3_000,
        seed: 5,
    };

    let ctl = controller();
    let baseline = ctl
        .run_threaded(app.as_ref(), &config, 4)
        .expect("threaded baseline");
    let (record, run) = ctl
        .run_distributed(app.as_ref(), &config, 4, dist_config(None))
        .expect("distributed run");

    assert_eq!(run.ft.recovery.attempts, 1, "no failure, no restart");
    assert!(
        run.alarms.is_empty(),
        "a healthy run must not raise alarms, got {:?}",
        run.alarms
    );
    assert_eq!(record.summary.tuples_in, baseline.summary.tuples_in);
    assert_eq!(record.summary.tuples_out, baseline.summary.tuples_out);
    assert!(
        !run.snapshots.is_empty(),
        "coordinator aggregates per-worker telemetry snapshots"
    );

    // Both runs landed in the store.
    let runs = ctl.store().with("runs", |c| c.len());
    assert_eq!(runs, 2);
}
