//! The paper's key observations O1-O9 (§4), asserted as integration tests
//! against the simulated cluster and the ML pipeline. Each test encodes the
//! *shape* the paper reports (who wins, in which direction), not absolute
//! numbers.

use pdsp_bench::apps::{app_by_acronym, AppConfig};
use pdsp_bench::cluster::{Cluster, SimConfig, Simulator};
use pdsp_bench::core::ml_manager::{MlManager, TrainingDataSpec};
use pdsp_bench::engine::plan::LogicalPlan;
use pdsp_bench::ml::trainer::{CostModel, TrainOptions};
use pdsp_bench::ml::Gnn;
use pdsp_bench::workload::{EnumerationStrategy, ParameterSpace, QueryGenerator, QueryStructure};

fn sim_config(event_rate: f64) -> SimConfig {
    SimConfig {
        event_rate,
        duration_ms: 2_000,
        batches_per_second: 80.0,
        ..SimConfig::default()
    }
}

fn m510() -> Simulator {
    Simulator::new(Cluster::homogeneous_m510(10), sim_config(100_000.0))
}

fn synthetic(structure: QueryStructure) -> LogicalPlan {
    let mut generator = QueryGenerator::new(ParameterSpace::default(), 41);
    generator.event_rate_override = Some(100_000.0);
    generator.window_override = Some(pdsp_bench::engine::WindowSpec::tumbling_time(500));
    generator.generate(structure).plan
}

fn app_plan(acronym: &str) -> LogicalPlan {
    app_by_acronym(acronym)
        .unwrap()
        .build(&AppConfig {
            event_rate: 100_000.0,
            total_tuples: 1_000,
            seed: 13,
        })
        .plan
}

fn measure(sim: &Simulator, plan: &LogicalPlan, parallelism: usize) -> f64 {
    sim.measure(&plan.clone().with_uniform_parallelism(parallelism))
        .expect("simulation succeeds")
}

/// O1 — increasing parallelism speeds up multi-way join queries (and
/// data-intensive UDO applications), while plain filter chains stay flat.
#[test]
fn o1_parallelism_speeds_up_joins_but_not_filters() {
    let sim = m510();
    let join = synthetic(QueryStructure::FourWayJoin);
    let join_p1 = measure(&sim, &join, 1);
    let join_p8 = measure(&sim, &join, 8);
    assert!(
        join_p8 < join_p1 * 0.9,
        "4-way join should gain from parallelism: p1 {join_p1:.0} ms vs p8 {join_p8:.0} ms"
    );

    let filters = synthetic(QueryStructure::TwoFilter);
    let f_p1 = measure(&sim, &filters, 1);
    let f_p8 = measure(&sim, &filters, 8);
    let ratio = f_p1 / f_p8;
    assert!(
        (0.9..1.1).contains(&ratio),
        "filter chains stay flat across parallelism: p1 {f_p1:.0} vs p8 {f_p8:.0}"
    );
}

/// O2 — the paradox of parallelism: beyond a threshold, coordination
/// overhead outweighs the benefit; join latency at 128 is no better than
/// at 16 (and data-intensive UDOs like SG keep improving, unlike joins).
#[test]
fn o2_parallelism_paradox_for_joins() {
    let sim = m510();
    let join = synthetic(QueryStructure::TwoWayJoin);
    let p16 = measure(&sim, &join, 16);
    let p128 = measure(&sim, &join, 128);
    assert!(
        p128 >= p16 * 0.97,
        "beyond the threshold parallelism stops helping joins: p16 {p16:.1} vs p128 {p128:.1}"
    );

    // SG (heavy UDO) by contrast still gains markedly from 16 -> 128.
    let sg = app_plan("SG");
    let sg16 = measure(&sim, &sg, 16);
    let sg128 = measure(&sim, &sg, 128);
    assert!(
        sg128 < sg16 * 0.8,
        "SG keeps gaining at extreme parallelism: p16 {sg16:.0} vs p128 {sg128:.0}"
    );
}

/// O3 — queries with UDOs show less predictable performance: run-to-run
/// variability (different seeds) is higher for the UDO-heavy application
/// than for a standard-operator query.
#[test]
fn o3_udo_latency_is_less_predictable() {
    let cv = |plan: &LogicalPlan| {
        let lats: Vec<f64> = (0..6)
            .map(|seed| {
                let mut cfg = sim_config(100_000.0);
                cfg.seed = 1000 + seed;
                let sim = Simulator::new(Cluster::homogeneous_m510(10), cfg);
                sim.run(&plan.clone().with_uniform_parallelism(8))
                    .unwrap()
                    .latency
                    .median()
                    .unwrap()
            })
            .collect();
        let mean = lats.iter().sum::<f64>() / lats.len() as f64;
        let var = lats.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / lats.len() as f64;
        var.sqrt() / mean
    };
    let udo_cv = cv(&app_plan("TM"));
    let std_cv = cv(&synthetic(QueryStructure::Linear));
    assert!(
        udo_cv > std_cv,
        "UDO app varies more across runs: TM cv {udo_cv:.4} vs linear cv {std_cv:.4}"
    );
}

/// O4 — the effect of parallelism on latency is non-linear: doubling
/// resources does not halve latency uniformly; successive speedup factors
/// differ substantially for a data-intensive application.
#[test]
fn o4_nonlinear_parallelism_effect() {
    let sim = m510();
    let sd = app_plan("SD");
    let p1 = measure(&sim, &sd, 1);
    let p8 = measure(&sim, &sd, 8);
    let p64 = measure(&sim, &sd, 64);
    let early_speedup = p1 / p8; // per 8x resources
    let late_speedup = p8 / p64; // per 8x resources
                                 // The exact ratio between the two speedup factors depends on the jitter
                                 // stream of the simulator's RNG; 1.5x is the margin that stays robust
                                 // across generator implementations while still asserting a clearly
                                 // non-uniform (non-linear) response to added resources.
    assert!(
        early_speedup > 1.5 * late_speedup || late_speedup > 1.5 * early_speedup,
        "speedup is not uniform: 1->8 gives {early_speedup:.1}x, 8->64 gives {late_speedup:.1}x"
    );
}

/// O5 — a more powerful heterogeneous environment does not accelerate
/// every query: SG benefits substantially from the mixed cluster while AD's
/// gain is comparatively marginal.
#[test]
fn o5_heterogeneous_hardware_helps_unevenly() {
    let homog = Simulator::new(Cluster::homogeneous_m510(10), sim_config(100_000.0));
    let hetero = Simulator::new(Cluster::heterogeneous_mixed(10), sim_config(100_000.0));
    let gain = |acr: &str, p: usize| {
        let plan = app_plan(acr);
        measure(&homog, &plan, p) / measure(&hetero, &plan, p)
    };
    let sg_gain = gain("SG", 16);
    let ad_gain = gain("AD", 16);
    assert!(
        sg_gain > ad_gain,
        "SG gains more from heterogeneity than AD: SG {sg_gain:.2}x vs AD {ad_gain:.2}x"
    );
    assert!(sg_gain > 1.1, "SG must benefit: {sg_gain:.2}x");
}

/// O6 — no single optimal parallelism exists across workloads: the best
/// category for a filter chain differs from the best for a heavy UDO app.
#[test]
fn o6_optimal_parallelism_is_workload_dependent() {
    let sim = m510();
    let degrees = [1usize, 8, 64];
    let argmin = |plan: &LogicalPlan| {
        degrees
            .iter()
            .copied()
            .min_by(|&a, &b| measure(&sim, plan, a).total_cmp(&measure(&sim, plan, b)))
            .unwrap()
    };
    let best_filters = argmin(&synthetic(QueryStructure::ThreeFilter));
    let best_sg = argmin(&app_plan("SG"));
    assert_ne!(
        best_filters, best_sg,
        "optimal degree differs across workloads (filters {best_filters}, SG {best_sg})"
    );
}

/// O7 — neither cluster type wins universally: at least one workload is
/// faster on the homogeneous cluster and at least one on the heterogeneous
/// one (same parallelism).
#[test]
fn o7_no_universal_cluster_choice() {
    let homog = Simulator::new(Cluster::homogeneous_m510(10), sim_config(100_000.0));
    let hetero = Simulator::new(Cluster::heterogeneous_mixed(10), sim_config(100_000.0));
    // Coordination-dominated synthetic joins run better on the homogeneous
    // cluster (no progress-alignment penalty across uneven nodes)...
    let join = synthetic(QueryStructure::ThreeWayJoin);
    let join_homog = measure(&homog, &join, 64);
    let join_hetero = measure(&hetero, &join, 64);
    assert!(
        join_homog < join_hetero,
        "synthetic join prefers the homogeneous cluster: {join_homog:.1} vs {join_hetero:.1}"
    );
    // ...while service-dominated real-world UDO apps exploit the mixed
    // cluster's extra cores and faster clocks.
    let sg = app_plan("SG");
    let sg_homog = measure(&homog, &sg, 16);
    let sg_hetero = measure(&hetero, &sg, 16);
    assert!(
        sg_hetero < sg_homog,
        "SG prefers the heterogeneous cluster: {sg_hetero:.1} vs {sg_homog:.1}"
    );
}

/// O8 — the graph representation helps: the GNN's median q-error beats the
/// linear-regression baseline and stays in a usable band.
#[test]
fn o8_gnn_outperforms_linear_baseline() {
    let manager = MlManager::new(m510());
    let spec = |seed| TrainingDataSpec {
        structures: QueryStructure::ALL.to_vec(),
        queries: 54,
        strategy: EnumerationStrategy::Random,
        event_rate: 100_000.0,
        seed,
    };
    let train = manager.generate(&spec(71)).unwrap();
    let eval = manager.generate(&spec(72)).unwrap();
    let opts = TrainOptions {
        max_epochs: 150,
        patience: 25,
        ..TrainOptions::default()
    };
    let evals = MlManager::train_and_evaluate(&train.dataset, &eval.dataset, &opts);
    let q = |name: &str| {
        evals
            .iter()
            .find(|e| e.model == name)
            .map(|e| e.qerror.median)
            .unwrap()
    };
    assert!(
        q("GNN") <= q("LR"),
        "GNN ({:.2}) must beat the LR baseline ({:.2})",
        q("GNN"),
        q("LR")
    );
    assert!(
        q("GNN") < 5.0,
        "GNN q-error in a usable band: {:.2}",
        q("GNN")
    );
}

/// O9 — data-efficient training: with the same number of training queries,
/// rule-based enumeration yields predictions at least as accurate as random
/// enumeration on realistic (rule-based) deployments.
#[test]
fn o9_rule_based_enumeration_is_data_efficient() {
    let manager = MlManager::new(m510());
    let gen = |strategy: EnumerationStrategy, seed: u64, queries: usize| {
        manager
            .generate(&TrainingDataSpec {
                structures: QueryStructure::SEEN.to_vec(),
                queries,
                strategy,
                event_rate: 100_000.0,
                seed,
            })
            .unwrap()
    };
    let eval = gen(EnumerationStrategy::RuleBased, 202, 24);
    let opts = TrainOptions {
        max_epochs: 120,
        patience: 20,
        ..TrainOptions::default()
    };
    let fit_q = |strategy: EnumerationStrategy| {
        let train = gen(strategy, 201, 30);
        let mut model = Gnn::default();
        model.fit(&train.dataset, &opts);
        model.evaluate(&eval.dataset).unwrap().median
    };
    let rule = fit_q(EnumerationStrategy::RuleBased);
    let random = fit_q(EnumerationStrategy::Random);
    assert!(
        rule <= random * 1.1,
        "rule-based training data is at least as effective: rule {rule:.2} vs random {random:.2}"
    );
}

/// Fault-tolerance shape (extension beyond O1-O9): the simulator's modeled
/// recovery time is monotone non-decreasing in both the checkpoint interval
/// (longer replay backlog) and the snapshot state size (longer restore),
/// and a failed node's outage raises tail latency over the clean run.
#[test]
fn fault_recovery_time_is_monotone_in_interval_and_state() {
    use pdsp_bench::cluster::{FailureModel, ScriptedFailure};
    let plan = app_plan("WC").with_uniform_parallelism(10);
    let run = |interval: f64, state_scale: f64| {
        let mut cfg = sim_config(100_000.0);
        cfg.failure = Some(FailureModel {
            failures: vec![ScriptedFailure {
                at_ms: 700.0,
                node: 0,
            }],
            checkpoint_interval_ms: interval,
            state_scale,
            ..FailureModel::default()
        });
        let sim = Simulator::new(Cluster::homogeneous_m510(10), cfg);
        let result = sim.run(&plan).expect("simulation succeeds");
        assert_eq!(result.recoveries.len(), 1, "the scripted failure fired");
        (
            result.recoveries[0].recovery_ms,
            result.latency.percentile(99.0).unwrap(),
        )
    };

    let intervals = [200.0, 1_000.0, 5_000.0];
    let by_interval: Vec<f64> = intervals.iter().map(|&i| run(i, 1.0).0).collect();
    assert!(
        by_interval.windows(2).all(|w| w[0] <= w[1]),
        "recovery grows with checkpoint interval: {by_interval:?}"
    );
    assert!(by_interval[2] > by_interval[0]);

    let scales = [0.0, 1.0, 50.0];
    let by_state: Vec<f64> = scales.iter().map(|&s| run(1_000.0, s).0).collect();
    assert!(
        by_state.windows(2).all(|w| w[0] <= w[1]),
        "recovery grows with snapshot state size: {by_state:?}"
    );

    let clean = Simulator::new(Cluster::homogeneous_m510(10), sim_config(100_000.0))
        .run(&plan)
        .expect("simulation succeeds");
    let clean_p99 = clean.latency.percentile(99.0).unwrap();
    let (_, failed_p99) = run(2_000.0, 1.0);
    assert!(
        failed_p99 > clean_p99,
        "node failure raises p99: {failed_p99:.1} ms vs clean {clean_p99:.1} ms"
    );
}
