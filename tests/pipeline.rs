//! Cross-crate integration: the full PDSP-Bench workflow of paper §2 —
//! generate workload -> deploy on SUT -> collect metrics -> store ->
//! train ML models on the stored data.

use pdsp_bench::apps::{all_applications, AppConfig};
use pdsp_bench::cluster::{Cluster, SimConfig, Simulator};
use pdsp_bench::core::controller::{Controller, RunRecord};
use pdsp_bench::core::ml_manager::{MlManager, TrainingDataSpec};
use pdsp_bench::engine::physical::PhysicalPlan;
use pdsp_bench::engine::runtime::SourceFactory;
use pdsp_bench::engine::runtime::{RunConfig, ThreadedRuntime};
use pdsp_bench::ml::trainer::{CostModel, TrainOptions};
use pdsp_bench::ml::LinearRegression;
use pdsp_bench::store::{Filter, Store};
use pdsp_bench::workload::{
    EnumerationStrategy, ParallelismEnumerator, ParameterSpace, QueryGenerator, QueryStructure,
};
use std::sync::Arc;

fn quick_sim() -> SimConfig {
    SimConfig {
        event_rate: 30_000.0,
        duration_ms: 1_000,
        batches_per_second: 50.0,
        ..SimConfig::default()
    }
}

/// The full §2 workflow: user picks a workload, the controller deploys it,
/// metrics land in the store, the ML manager trains on them.
#[test]
fn full_benchmark_workflow() {
    let store = Arc::new(Store::in_memory());
    let controller = Controller::new(
        Cluster::homogeneous_m510(10),
        quick_sim(),
        Arc::clone(&store),
    );

    // 1. Generate and deploy synthetic PQPs at several parallelism degrees.
    let mut generator = QueryGenerator::new(ParameterSpace::default(), 3);
    generator.event_rate_override = Some(30_000.0);
    let mut enumerator = ParallelismEnumerator::new(vec![1, 4, 16], 80, 5);
    for structure in [QueryStructure::Linear, QueryStructure::TwoWayJoin] {
        let query = generator.generate(structure);
        for degrees in
            enumerator.enumerate(&query.plan, &EnumerationStrategy::Increasing, 30_000.0, 3)
        {
            let plan = query.plan.clone().with_parallelism(&degrees);
            controller.run_simulated(structure.label(), &plan).unwrap();
        }
    }

    // 2. The store now holds 6 run records, queryable by workload.
    let total = store.with("runs", |c| c.len());
    assert_eq!(total, 6);
    let joins: Vec<RunRecord> =
        store.with("runs", |c| c.find_as(&Filter::eq("workload", "2-way-join")));
    assert_eq!(joins.len(), 3);
    for r in &joins {
        assert!(r.summary.p50_latency_ms > 0.0);
    }

    // 3. Train a cost model on freshly generated labeled data from the same
    // cluster (the ML-manager pipeline).
    let manager = MlManager::new(Simulator::new(Cluster::homogeneous_m510(10), quick_sim()));
    let data = manager
        .generate(&TrainingDataSpec {
            structures: vec![QueryStructure::Linear, QueryStructure::TwoWayJoin],
            queries: 16,
            strategy: EnumerationStrategy::RuleBased,
            event_rate: 30_000.0,
            seed: 7,
        })
        .unwrap();
    let mut model = LinearRegression::default();
    let report = model.fit(&data.dataset, &TrainOptions::default());
    assert!(report.val_loss.is_finite());
}

/// Store persistence across controller sessions.
#[test]
fn runs_survive_store_reload() {
    let dir = std::env::temp_dir().join(format!("pdsp_pipeline_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let store = Arc::new(Store::open(&dir).unwrap());
        let controller = Controller::new(
            Cluster::homogeneous_m510(4),
            quick_sim(),
            Arc::clone(&store),
        );
        let mut generator = QueryGenerator::new(ParameterSpace::default(), 9);
        generator.event_rate_override = Some(30_000.0);
        let q = generator.generate(QueryStructure::Linear);
        controller.run_simulated("persisted", &q.plan).unwrap();
        store.flush().unwrap();
    }
    let reopened = Store::open(&dir).unwrap();
    let records: Vec<RunRecord> =
        reopened.with("runs", |c| c.find_as(&Filter::eq("workload", "persisted")));
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].backend, "simulator");
    std::fs::remove_dir_all(&dir).ok();
}

/// Every suite application executes on BOTH backends: real threads (bounded
/// input) and the simulator, producing non-trivial metrics on each.
#[test]
fn all_applications_run_on_both_backends() {
    let cfg = AppConfig {
        event_rate: 10_000.0,
        // Enough volume for every app's windows to fill (LR needs ~40
        // reports per road segment).
        total_tuples: 6_000,
        seed: 23,
    };
    let sim = Simulator::new(Cluster::homogeneous_m510(4), quick_sim());
    let rt = ThreadedRuntime::new(RunConfig::default());
    for app in all_applications() {
        let acr = app.info().acronym;
        let built = app.build(&cfg);
        // Threaded.
        let phys = PhysicalPlan::expand(&built.plan).unwrap();
        let result = rt.run(&phys, &built.sources).unwrap();
        assert!(result.tuples_in > 0, "{acr}: consumed input");
        assert!(result.tuples_out > 0, "{acr}: produced output");
        // Simulated.
        let sim_result = sim.run(&built.plan).unwrap();
        assert!(
            sim_result.latency.median().unwrap() > 0.0,
            "{acr}: simulated latency"
        );
    }
}

/// Generated queries execute on the threaded engine with their generated
/// streams — the synthetic-workload path is runnable end to end, and the
/// realized filter selectivity tracks the estimate.
#[test]
fn generated_queries_run_on_threads_with_estimated_selectivity() {
    let mut generator = QueryGenerator::new(ParameterSpace::default(), 11);
    generator.event_rate_override = Some(50_000.0);
    let query = generator.generate(QueryStructure::Linear);
    let phys = PhysicalPlan::expand(&query.plan).unwrap();
    let sources: Vec<Arc<dyn SourceFactory>> = query
        .streams
        .iter()
        .map(|s| Arc::clone(s) as Arc<dyn SourceFactory>)
        .collect();
    let result = ThreadedRuntime::new(RunConfig::default())
        .run(&phys, &sources)
        .unwrap();
    assert!(result.tuples_in > 0);
    // The linear structure is source -> filter -> keyed window -> sink; the
    // windowed output is thinner than the filtered stream, so we can only
    // check the upper bound here; exact selectivity is validated in the
    // workload crate's unit tests.
    assert!(result.tuples_out <= result.tuples_in);
}
