//! Property-based tests over cross-crate invariants.

use pdsp_bench::cluster::{Cluster, Placement, PlacementStrategy};
use pdsp_bench::engine::agg::{Accumulator, AggFunc};
use pdsp_bench::engine::physical::PhysicalPlan;
use pdsp_bench::engine::runtime::{RunConfig, ThreadedRuntime, VecSource};
use pdsp_bench::engine::value::{FieldType, Schema, Tuple, Value};
use pdsp_bench::engine::window::{KeyedWindower, WindowSpec};
use pdsp_bench::engine::{expr::CmpOp, expr::Predicate, PlanBuilder};
use pdsp_bench::ml::qerror::qerror;
use pdsp_bench::workload::{
    EnumerationStrategy, ParallelismEnumerator, ParameterSpace, QueryGenerator, QueryStructure,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated synthetic query is a valid plan that expands, for
    /// any structure and seed.
    #[test]
    fn generated_queries_always_validate(seed in 0u64..500, idx in 0usize..9) {
        let mut generator = QueryGenerator::new(ParameterSpace::default(), seed);
        let query = generator.generate(QueryStructure::ALL[idx]);
        prop_assert!(query.plan.validate().is_ok());
        let phys = PhysicalPlan::expand(&query.plan).unwrap();
        prop_assert_eq!(phys.instance_count(), query.plan.total_instances());
    }

    /// Parallelism enumerators never exceed the core cap and never produce
    /// zero degrees, for any strategy.
    #[test]
    fn enumerated_degrees_are_bounded(seed in 0u64..200, cap in 1usize..300, pick in 0usize..5) {
        let mut generator = QueryGenerator::new(ParameterSpace::default(), seed);
        let query = generator.generate(QueryStructure::TwoWayJoin);
        let strategy = match pick {
            0 => EnumerationStrategy::Random,
            1 => EnumerationStrategy::RuleBased,
            2 => EnumerationStrategy::MinAvgMax,
            3 => EnumerationStrategy::Increasing,
            _ => EnumerationStrategy::ParameterBased(vec![3, 5, 7]),
        };
        let mut e = ParallelismEnumerator::new(
            ParameterSpace::default().parallelism_degrees, cap, seed);
        for degrees in e.enumerate(&query.plan, &strategy, 1e5, 4) {
            for &d in &degrees {
                prop_assert!(d >= 1);
                prop_assert!(d <= cap.max(7), "degree {} above cap {}", d, cap);
            }
            prop_assert!(query.plan.clone().with_parallelism(&degrees).validate().is_ok());
        }
    }

    /// Every generated synthetic query — as generated and under every
    /// enumerated degree assignment — passes the static analyzer with zero
    /// Error-severity diagnostics, for any structure, seed, and strategy.
    #[test]
    fn generated_and_enumerated_plans_analyze_clean(
        seed in 0u64..200, idx in 0usize..9, pick in 0usize..5) {
        let mut generator = QueryGenerator::new(ParameterSpace::default(), seed);
        let query = generator.generate(QueryStructure::ALL[idx]);
        let report = pdsp_bench::analyze::analyze("generated", &query.plan).unwrap();
        prop_assert_eq!(report.errors(), 0, "{}", report.render());
        let strategy = match pick {
            0 => EnumerationStrategy::Random,
            1 => EnumerationStrategy::RuleBased,
            2 => EnumerationStrategy::MinAvgMax,
            3 => EnumerationStrategy::Increasing,
            _ => EnumerationStrategy::ParameterBased(vec![3, 5, 7]),
        };
        let mut e = ParallelismEnumerator::new(
            ParameterSpace::default().parallelism_degrees, 64, seed);
        for degrees in e.enumerate(&query.plan, &strategy, 1e5, 3) {
            let plan = query.plan.clone().with_parallelism(&degrees);
            let report = pdsp_bench::analyze::analyze("enumerated", &plan).unwrap();
            prop_assert_eq!(report.errors(), 0, "{}", report.render());
        }
    }

    /// Count windows fire exactly floor((n - length)/slide) + 1 times once
    /// n >= length (single key).
    #[test]
    fn count_window_fire_count(n in 1u64..400, length in 1u64..50, slide_ratio in 1u64..10) {
        let slide = (length * slide_ratio / 10).max(1).min(length);
        let spec = WindowSpec::sliding_count(length, slide);
        let mut w = KeyedWindower::new(spec, AggFunc::Count, false);
        let mut out = Vec::new();
        for i in 0..n {
            let mut t = Tuple::new(vec![Value::Int(0)]);
            t.event_time = i as i64;
            w.push(None, 1.0, &t, &mut out);
        }
        let expected = if n >= length { (n - length) / slide + 1 } else { 0 };
        prop_assert_eq!(out.len() as u64, expected);
    }

    /// Accumulator merge is associative-equivalent to a single pass.
    #[test]
    fn accumulator_merge_matches_single_pass(
        vals in prop::collection::vec(-1e6f64..1e6, 1..64),
        split in 0usize..64,
        func_idx in 0usize..6,
    ) {
        let func = AggFunc::ALL[func_idx];
        let split = split.min(vals.len());
        let mut single = Accumulator::new(func);
        for &v in &vals { single.push(v); }
        let mut left = Accumulator::new(func);
        let mut right = Accumulator::new(func);
        for &v in &vals[..split] { left.push(v); }
        for &v in &vals[split..] { right.push(v); }
        left.merge(&right);
        let (a, b) = (single.finish().unwrap(), left.finish().unwrap());
        prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "{} vs {}", a, b);
    }

    /// q-error is >= 1 and symmetric for all positive pairs.
    #[test]
    fn qerror_properties(t in 1e-6f64..1e9, p in 1e-6f64..1e9) {
        let q = qerror(t, p);
        prop_assert!(q >= 1.0);
        prop_assert!((q - qerror(p, t)).abs() < 1e-9);
    }

    /// Filter execution matches predicate semantics exactly: output count
    /// equals the number of matching inputs, at any parallelism.
    #[test]
    fn parallel_filter_is_exact(threshold in -50i64..50, parallelism in 1usize..9) {
        let tuples: Vec<Tuple> = (-50..50).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let expected = tuples
            .iter()
            .filter(|t| matches!(&t.values[0], Value::Int(v) if *v < threshold))
            .count() as u64;
        let plan = PlanBuilder::new()
            .source("s", Schema::of(&[FieldType::Int]), 1)
            .filter("f", Predicate::cmp(0, CmpOp::Lt, Value::Int(threshold)), 0.5)
            .set_parallelism(1, parallelism)
            .sink("k")
            .build()
            .unwrap();
        let phys = PhysicalPlan::expand(&plan).unwrap();
        let result = ThreadedRuntime::new(RunConfig::default())
            .run(&phys, &[VecSource::new(tuples)])
            .unwrap();
        prop_assert_eq!(result.tuples_out, expected);
    }

    /// Out-of-order tuples are dropped exactly when they arrive behind the
    /// watermark: feeding a jittered stream through a time windower on the
    /// same watermark schedule the threaded source uses (watermark =
    /// prefix-max event time - lateness, advanced every `wm_every` tuples)
    /// drops precisely the tuples an independent oracle predicts, and
    /// every tuple is either aggregated in some window or counted late.
    #[test]
    fn late_drop_count_is_exact_under_jitter(
        n in 100u64..500,
        jitter in 0i64..40,
        lateness in 0i64..50,
        wm_every in 1u64..32,
        seed in 0u64..1_000,
    ) {
        let event_time =
            |i: u64| i as i64 + ((i as i64 * 7919 + seed as i64 * 104_729) % (2 * jitter + 1)) - jitter;
        let mut w = KeyedWindower::new(WindowSpec::tumbling_time(50), AggFunc::Count, false);
        let mut out = Vec::new();
        let mut wm = i64::MIN;
        let mut max_et = i64::MIN;
        let mut expected_late = 0u64;
        for i in 0..n {
            let et = event_time(i);
            if et < wm {
                expected_late += 1;
            }
            let mut t = Tuple::new(vec![Value::Int(0)]);
            t.event_time = et;
            w.push(None, 1.0, &t, &mut out);
            max_et = max_et.max(et);
            if (i + 1) % wm_every == 0 {
                wm = wm.max(max_et - lateness);
                w.on_watermark(wm, &mut out);
            }
        }
        prop_assert_eq!(w.late_events(), expected_late);
        w.flush(&mut out);
        let counted: u64 = out.iter().map(|r| r.count).sum();
        prop_assert_eq!(counted + expected_late, n, "no tuple lost or double-counted");
    }

    /// Placement assigns every instance to a real node under all
    /// strategies, and per-node counts sum to the instance count.
    #[test]
    fn placement_is_total(parallelism in 1usize..64, nodes in 1usize..12, strat in 0usize..3) {
        let plan = PlanBuilder::new()
            .source("s", Schema::of(&[FieldType::Int]), 2)
            .filter("f", Predicate::True, 1.0)
            .set_parallelism(1, parallelism)
            .sink("k")
            .build()
            .unwrap();
        let phys = PhysicalPlan::expand(&plan).unwrap();
        let cluster = Cluster::heterogeneous_mixed(nodes);
        let strategy = [
            PlacementStrategy::RoundRobin,
            PlacementStrategy::CoreWeighted,
            PlacementStrategy::OperatorLocality,
        ][strat];
        let placement = Placement::compute(&phys, &cluster, strategy);
        prop_assert_eq!(placement.node_of.len(), phys.instance_count());
        for &n in &placement.node_of {
            prop_assert!(n < cluster.len());
        }
        let counts = placement.per_node_counts(cluster.len());
        prop_assert_eq!(counts.iter().sum::<usize>(), phys.instance_count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End to end on the threaded runtime, the lateness bound brackets the
    /// drop count: with a bound of at least the maximum disorder (2x the
    /// jitter amplitude) no tuple is dropped and the windows count all of
    /// them; with a zero bound the windows count no more than that.
    #[test]
    fn lateness_bounds_bracket_dropped_tuples(seed in 0u64..200, jitter in 1i64..12) {
        let n = 400i64;
        let make_tuples = || -> Vec<Tuple> {
            (0..n)
                .map(|i| {
                    let mut t = Tuple::new(vec![Value::Int(i)]);
                    t.event_time = i + (i * 7919 + seed as i64 * 104_729) % (2 * jitter + 1) - jitter;
                    t
                })
                .collect()
        };
        let run = |lateness: i64| {
            let plan = PlanBuilder::new()
                .source("src", Schema::of(&[FieldType::Int]), 1)
                .window_agg_global("agg", WindowSpec::tumbling_time(100), AggFunc::Count, 0)
                .sink("sink")
                .build()
                .unwrap();
            let phys = PhysicalPlan::expand(&plan).unwrap();
            let rt = ThreadedRuntime::new(RunConfig {
                watermark_lateness_ms: lateness,
                watermark_interval: 8,
                ..RunConfig::default()
            });
            let res = rt.run(&phys, &[VecSource::new(make_tuples())]).unwrap();
            res.sink_tuples
                .iter()
                .map(|t| t.values[1].as_f64().unwrap() as u64)
                .sum::<u64>()
        };
        let with_bound = run(2 * jitter);
        let without_bound = run(0);
        prop_assert_eq!(with_bound, n as u64, "a bound covering the disorder loses nothing");
        prop_assert!(without_bound <= with_bound);
    }
}
