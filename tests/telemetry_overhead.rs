//! Telemetry overhead guard: instrumentation plus a 100 ms sampler must not
//! meaningfully slow the threaded runtime down.
//!
//! Documented bound: with telemetry on (counters + flight recorder + 100 ms
//! sampler thread) the best-of-3 wall-clock time of a fixed workload stays
//! within 2x of the best-of-3 time with telemetry off. The real overhead is
//! a few percent (sharded atomics, no locks on the hot path); 2x leaves
//! headroom for noisy shared CI runners while still catching accidental
//! hot-path regressions such as sampling under a lock or per-tuple clock
//! reads.

use pdsp_bench::apps::{app_by_acronym, AppConfig};
use pdsp_bench::engine::runtime::{RunConfig, ThreadedRuntime};
use pdsp_bench::engine::{telemetry_for_plan, PhysicalPlan};
use pdsp_bench::telemetry::{Sampler, TelemetryConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TUPLES: usize = 30_000;
const ROUNDS: usize = 3;

#[test]
fn telemetry_overhead_stays_within_documented_bound() {
    let app = app_by_acronym("SD").expect("spike detection exists");
    let cfg = AppConfig {
        total_tuples: TUPLES,
        ..AppConfig::default()
    };
    let built = app.build(&cfg);
    let plan = built.plan.with_uniform_parallelism(2);
    let phys = PhysicalPlan::expand(&plan).unwrap();
    let rt = ThreadedRuntime::new(RunConfig::default());

    // Interleave off/on rounds and keep the minimum of each, so a one-off
    // scheduler hiccup cannot bias either side.
    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        rt.run(&phys, &built.sources).unwrap();
        best_off = best_off.min(t0.elapsed());

        let tel = telemetry_for_plan(
            "SD",
            &phys,
            TelemetryConfig {
                interval_ms: 100,
                ..TelemetryConfig::default()
            },
        );
        let sampler = Sampler::start(Arc::clone(&tel.registry), tel.config.interval_ms);
        let t0 = Instant::now();
        rt.run_with_telemetry(&phys, &built.sources, &tel).unwrap();
        best_on = best_on.min(t0.elapsed());
        let timeline = sampler.finish("exp-overhead", "threaded", tel.recorder.events());
        assert!(!timeline.samples.is_empty(), "sampler actually ran");
    }

    let ratio = best_on.as_secs_f64() / best_off.as_secs_f64().max(1e-9);
    assert!(
        ratio <= 2.0,
        "telemetry overhead {ratio:.2}x exceeds the documented 2x bound \
         (off {best_off:?}, on {best_on:?})"
    );
}
