//! End-to-end telemetry acceptance tests: the threaded runtime and the
//! discrete-event simulator must emit the *same* timeline schema for the
//! same plan, timelines must be queryable from the store by experiment id,
//! and a run dying mid-flight must leave a flight-recorder trace that
//! names the injected fault.

use pdsp_bench::apps::{app_by_acronym, AppConfig};
use pdsp_bench::cluster::{Cluster, SimConfig};
use pdsp_bench::core::controller::Controller;
use pdsp_bench::core::report::telemetry_report;
use pdsp_bench::engine::fault::{
    Backoff, DeliveryMode, FaultInjector, FtConfig, FtRuntime, RestartPolicy,
};
use pdsp_bench::engine::runtime::VecSource;
use pdsp_bench::engine::value::{FieldType, Schema, Tuple, Value};
use pdsp_bench::engine::{telemetry_for_plan, PhysicalPlan, PlanBuilder};
use pdsp_bench::store::Store;
use pdsp_bench::telemetry::{FlightEventKind, TelemetryConfig, TelemetryTimeline};
use std::sync::Arc;
use std::time::Duration;

fn controller(store: Arc<Store>) -> Controller {
    Controller::new(
        Cluster::homogeneous_m510(4),
        SimConfig {
            event_rate: 20_000.0,
            duration_ms: 1_000,
            batches_per_second: 50.0,
            ..SimConfig::default()
        },
        store,
    )
    .with_telemetry(TelemetryConfig {
        interval_ms: 20,
        ..TelemetryConfig::default()
    })
}

/// The field set a timeline exposes per instance, via the JSON the store
/// persists (schema as actually serialized, not as typed).
fn instance_keys(timeline: &TelemetryTimeline) -> Vec<String> {
    let value = serde_json::to_value(&timeline.final_sample().expect("non-empty").instances[0])
        .expect("serializable");
    let mut keys: Vec<String> = value
        .as_object()
        .expect("object")
        .iter()
        .map(|(k, _)| k.clone())
        .collect();
    keys.sort();
    keys
}

/// Acceptance: one plan, both backends, one shared schema, both stored and
/// queryable by experiment id.
#[test]
fn both_backends_emit_the_same_timeline_schema() {
    let store = Arc::new(Store::in_memory());
    let c = controller(Arc::clone(&store));
    let app = app_by_acronym("WC").unwrap();
    let cfg = AppConfig {
        total_tuples: 2_000,
        ..AppConfig::default()
    };
    let built = app.build(&cfg);
    let plan = built.plan.with_uniform_parallelism(2);

    let threaded = c.run_threaded(app.as_ref(), &cfg, 2).unwrap();
    let simulated = c.run_simulated("WC", &plan).unwrap();

    let tid = threaded.experiment_id.expect("threaded run instrumented");
    let sid = simulated.experiment_id.expect("simulated run instrumented");
    assert_ne!(tid, sid, "each run gets a fresh experiment id");

    let t = c.telemetry_for(&tid).expect("threaded timeline stored");
    let s = c.telemetry_for(&sid).expect("simulated timeline stored");
    assert_eq!(t.backend, "threaded");
    assert_eq!(s.backend, "simulated");
    for timeline in [&t, &s] {
        assert!(!timeline.samples.is_empty(), "timelines are never empty");
        assert!(
            timeline
                .final_sample()
                .unwrap()
                .instances
                .iter()
                .any(|i| i.tuples_out > 0),
            "{} backend recorded work",
            timeline.backend
        );
        assert!(timeline.final_latency().count > 0);
        let rendered = telemetry_report(timeline);
        assert!(rendered.contains(&timeline.experiment_id));
        assert!(rendered.contains("end-to-end latency"));
    }
    assert_eq!(
        instance_keys(&t),
        instance_keys(&s),
        "both backends serialize the identical per-instance field set"
    );

    let ids = c.telemetry_experiments();
    assert!(ids.contains(&tid) && ids.contains(&sid));
}

/// Acceptance: a run that dies mid-flight (restart budget exhausted) leaves
/// a flight-recorder trace containing the injected fault event.
#[test]
fn dying_run_dumps_a_trace_naming_the_fault() {
    let plan = PlanBuilder::new()
        .source("src", Schema::of(&[FieldType::Int, FieldType::Int]), 1)
        .filter("f", pdsp_bench::engine::expr::Predicate::True, 1.0)
        .sink("sink")
        .build()
        .unwrap();
    let phys = PhysicalPlan::expand(&plan).unwrap();
    let tuples: Vec<Tuple> = (0..2_000)
        .map(|i| {
            let mut t = Tuple::new(vec![Value::Int(i % 4), Value::Int(i)]);
            t.event_time = i;
            t
        })
        .collect();
    let tel = telemetry_for_plan(
        "dying",
        &phys,
        TelemetryConfig {
            dump_on_error: false, // assert on the recorder, keep stderr quiet
            ..TelemetryConfig::default()
        },
    );
    let ft = FtRuntime::new(FtConfig {
        checkpoint_interval_tuples: 128,
        mode: DeliveryMode::AtLeastOnce,
        restart: RestartPolicy {
            max_restarts: 0, // die on the first fault
            backoff: Backoff::Fixed(Duration::from_millis(1)),
        },
        run: Default::default(),
    });
    let err = ft
        .run_with_telemetry(
            &phys,
            &[VecSource::new(tuples)],
            Some(FaultInjector::after_tuples(1, 0, 500)),
            Some(&tel),
        )
        .expect_err("restart budget 0 surfaces the fault");
    assert!(err.to_string().contains("fault"), "root cause: {err}");

    let events = tel.recorder.events();
    assert!(
        events
            .iter()
            .any(|e| e.kind == FlightEventKind::FaultInjected),
        "trace contains the injected fault: {events:?}"
    );
    let dump = tel.recorder.dump("test");
    assert!(
        dump.contains("fault_injected"),
        "dump names the fault:\n{dump}"
    );
    assert!(dump.contains("run_started"), "dump covers the run start");
}

/// Telemetry survives a store round-trip through disk, so `pdsp telemetry`
/// can inspect experiments from a different process.
#[test]
fn timelines_round_trip_through_a_persistent_store() {
    let dir = std::env::temp_dir().join(format!("pdsp-tel-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let id = {
        let store = Arc::new(Store::open(&dir).unwrap());
        let c = controller(Arc::clone(&store));
        let record = c
            .run_threaded(
                app_by_acronym("SD").unwrap().as_ref(),
                &AppConfig {
                    total_tuples: 1_000,
                    ..AppConfig::default()
                },
                2,
            )
            .unwrap();
        store.flush().unwrap();
        record.experiment_id.unwrap()
    };
    let reopened = Arc::new(Store::open(&dir).unwrap());
    let c = Controller::new(Cluster::homogeneous_m510(4), SimConfig::default(), reopened);
    let timeline = c
        .telemetry_for(&id)
        .expect("timeline readable after reopen");
    assert_eq!(timeline.app, "SD");
    assert!(!timeline.samples.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
