//! Minimal in-tree shim of `criterion`.
//!
//! Exposes the API surface the workspace's benches use (`Criterion`,
//! `BenchmarkId`, `Throughput`, groups, `criterion_group!`/
//! `criterion_main!`) backed by a tiny wall-clock harness: each benchmark
//! runs a short warmup then a fixed number of timed iterations and prints
//! the mean per-iteration time, with tuples/s when a throughput is set.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Work performed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one untimed call.
        let _ = routine();
        let start = Instant::now();
        for _ in 0..self.iterations {
            let _ = std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevent the compiler from optimizing a value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn report(group: &str, label: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per_iter = b.elapsed.as_secs_f64() / b.iterations.max(1) as f64;
    let mut line = if group.is_empty() {
        format!("bench: {label:<40} {:>12.3} µs/iter", per_iter * 1e6)
    } else {
        format!(
            "bench: {group}/{label:<30} {:>12.3} µs/iter",
            per_iter * 1e6
        )
    };
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        if per_iter > 0.0 {
            line.push_str(&format!("  {:>12.0} {unit}", count as f64 / per_iter));
        }
    }
    println!("{line}");
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_ITERS: u64 = 3;

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            iterations: DEFAULT_ITERS,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iterations: DEFAULT_ITERS,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report("", &id.label, &b, None);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    iterations: u64,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed iteration count
    /// keeps bench binaries fast.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&self.name, &id.label, &b, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&self.name, &id.label, &b, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| 2 + 2));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
