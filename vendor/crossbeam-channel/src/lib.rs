//! Minimal in-tree shim of `crossbeam-channel`: a blocking bounded MPMC
//! channel built on `Mutex` + `Condvar` with crossbeam's disconnect
//! semantics, which the engine's teardown protocol depends on:
//!
//! - `send` fails with [`SendError`] once every `Receiver` is dropped
//!   (a dead downstream worker unblocks and fails its upstreams), and
//! - `recv` fails with [`RecvError`] once every `Sender` is dropped and
//!   the queue has drained (EOS propagation and result collection).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; cloneable (competing consumers).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The message could not be delivered: all receivers were dropped.
pub struct SendError<T>(pub T);

/// The channel is empty and all senders were dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of a non-blocking receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty but still connected.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Outcome of a bounded-wait receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the deadline.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}

/// Create a channel holding at most `cap` in-flight messages.
///
/// `cap == 0` (a rendezvous channel upstream) is approximated with
/// capacity 1; the engine validates its configuration before building
/// channels, so the distinction is never observable here.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap: cap.max(1),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Create a channel with no backpressure bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    bounded(usize::MAX)
}

impl<T> Sender<T> {
    /// Deliver `msg`, blocking while the channel is full. Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            if inner.queue.len() < inner.cap {
                inner.queue.push_back(msg);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> Receiver<T> {
    /// Take the next message, blocking while the channel is empty. Fails
    /// only when the channel has drained and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _result) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Iterate over messages until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders += 1;
        drop(inner);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.receivers += 1;
        drop(inner);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.receivers -= 1;
        let last = inner.receivers == 0;
        drop(inner);
        if last {
            // Wake blocked senders so they observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = bounded::<i32>(2);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let h = thread::spawn(move || tx.send(1));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(h.join().unwrap().is_err());
    }

    #[test]
    fn backpressure_bounds_queue() {
        let (tx, rx) = bounded(2);
        let h = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn competing_consumers_partition_stream() {
        let (tx, rx) = bounded(8);
        let rx2 = rx.clone();
        let h1 = thread::spawn(move || rx.iter().count());
        let h2 = thread::spawn(move || rx2.iter().count());
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(h1.join().unwrap() + h2.join().unwrap(), 1000);
    }
}
