//! Minimal in-tree shim of `crossbeam-channel`: a blocking bounded MPMC
//! channel built on `Mutex` + `Condvar` with crossbeam's disconnect
//! semantics, which the engine's teardown protocol depends on:
//!
//! - `send` fails with [`SendError`] once every `Receiver` is dropped
//!   (a dead downstream worker unblocks and fails its upstreams), and
//! - `recv` fails with [`RecvError`] once every `Sender` is dropped and
//!   the queue has drained (EOS propagation and result collection).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Shadow of `inner`'s lock for ThreadSanitizer. std's Mutex is
    /// futex-based on Linux, so when the standard library is not
    /// instrumented (the CI TSan job compiles only workspace crates with
    /// `-Zsanitizer=thread`) TSan never observes its acquire/release
    /// edges and reports every cross-thread handoff through the channel
    /// as a race. Each critical section therefore brackets itself with
    /// an acquire-load on entry and an `AcqRel` increment on exit of
    /// this counter: mutual exclusion still comes from the Mutex alone,
    /// the atomic merely republishes the same happens-before relation
    /// where instrumented code can see it. One relaxed-contention atomic
    /// op per lock section is noise next to the lock itself.
    hb: AtomicUsize,
}

impl<T> Shared<T> {
    /// Lock the queue, acquiring the happens-before shadow.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.hb.load(Ordering::Acquire);
        guard
    }

    /// Publish this critical section, then release the lock.
    fn unlock(&self, guard: MutexGuard<'_, Inner<T>>) {
        self.hb.fetch_add(1, Ordering::AcqRel);
        drop(guard);
    }

    /// Condvar wait that keeps the shadow in step with the lock handoff
    /// `wait` performs internally (unlock, block, relock).
    fn wait<'a>(&self, cv: &Condvar, guard: MutexGuard<'a, Inner<T>>) -> MutexGuard<'a, Inner<T>> {
        self.hb.fetch_add(1, Ordering::AcqRel);
        let guard = cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        self.hb.load(Ordering::Acquire);
        guard
    }

    /// As [`Shared::wait`], with a deadline.
    fn wait_timeout<'a>(
        &self,
        cv: &Condvar,
        guard: MutexGuard<'a, Inner<T>>,
        dur: Duration,
    ) -> MutexGuard<'a, Inner<T>> {
        self.hb.fetch_add(1, Ordering::AcqRel);
        let (guard, _result) = cv
            .wait_timeout(guard, dur)
            .unwrap_or_else(|e| e.into_inner());
        self.hb.load(Ordering::Acquire);
        guard
    }
}

/// Sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; cloneable (competing consumers).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The message could not be delivered: all receivers were dropped.
pub struct SendError<T>(pub T);

/// The channel is empty and all senders were dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of a non-blocking receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty but still connected.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Outcome of a bounded-wait receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the deadline.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}

/// Create a channel holding at most `cap` in-flight messages.
///
/// `cap == 0` (a rendezvous channel upstream) is approximated with
/// capacity 1; the engine validates its configuration before building
/// channels, so the distinction is never observable here.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap: cap.max(1),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        hb: AtomicUsize::new(0),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Create a channel with no backpressure bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    bounded(usize::MAX)
}

impl<T> Sender<T> {
    /// Deliver `msg`, blocking while the channel is full. Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.lock();
        loop {
            if inner.receivers == 0 {
                self.shared.unlock(inner);
                return Err(SendError(msg));
            }
            if inner.queue.len() < inner.cap {
                inner.queue.push_back(msg);
                self.shared.unlock(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.wait(&self.shared.not_full, inner);
        }
    }
}

impl<T> Receiver<T> {
    /// Take the next message, blocking while the channel is empty. Fails
    /// only when the channel has drained and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.shared.unlock(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                self.shared.unlock(inner);
                return Err(RecvError);
            }
            inner = self.shared.wait(&self.shared.not_empty, inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.lock();
        if let Some(v) = inner.queue.pop_front() {
            self.shared.unlock(inner);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        let disconnected = inner.senders == 0;
        self.shared.unlock(inner);
        if disconnected {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.shared.unlock(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                self.shared.unlock(inner);
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                self.shared.unlock(inner);
                return Err(RecvTimeoutError::Timeout);
            }
            inner = self
                .shared
                .wait_timeout(&self.shared.not_empty, inner, deadline - now);
        }
    }

    /// Iterate over messages until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        let inner = self.shared.lock();
        let len = inner.queue.len();
        self.shared.unlock(inner);
        len
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut inner = self.shared.lock();
        inner.senders += 1;
        self.shared.unlock(inner);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut inner = self.shared.lock();
        inner.receivers += 1;
        self.shared.unlock(inner);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.senders -= 1;
        let last = inner.senders == 0;
        self.shared.unlock(inner);
        if last {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.receivers -= 1;
        let last = inner.receivers == 0;
        self.shared.unlock(inner);
        if last {
            // Wake blocked senders so they observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = bounded::<i32>(2);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let h = thread::spawn(move || tx.send(1));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(h.join().unwrap().is_err());
    }

    #[test]
    fn backpressure_bounds_queue() {
        let (tx, rx) = bounded(2);
        let h = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn competing_consumers_partition_stream() {
        let (tx, rx) = bounded(8);
        let rx2 = rx.clone();
        let h1 = thread::spawn(move || rx.iter().count());
        let h2 = thread::spawn(move || rx2.iter().count());
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(h1.join().unwrap() + h2.join().unwrap(), 1000);
    }
}
