//! Minimal in-tree shim of `parking_lot`: non-poisoning `Mutex` and
//! `RwLock` wrappers over the std primitives. A poisoned std lock (a
//! panicked holder) is treated as still usable, matching parking_lot's
//! no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning readers-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_stays_usable() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
