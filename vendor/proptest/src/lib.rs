//! Minimal in-tree shim of `proptest`.
//!
//! Provides the `proptest!` macro surface this workspace uses: range and
//! `prop::collection::vec` strategies, `ProptestConfig::with_cases`, and
//! `prop_assert!`/`prop_assert_eq!`. Inputs are drawn from a ChaCha8
//! generator seeded per test case; there is no shrinking — a failing case
//! reports its inputs via the assertion message instead.

/// Test-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Value generators.
pub mod strategy {
    use rand::Rng;

    /// Generates values of an output type from a random source.
    pub trait Strategy {
        type Value;
        fn generate<R: Rng>(&self, rng: &mut R) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate<R: Rng>(&self, rng: &mut R) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate<R: Rng>(&self, rng: &mut R) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    /// Constant-value strategy (used by `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate<R: Rng>(&self, _rng: &mut R) -> T {
            self.0.clone()
        }
    }
}

/// Strategy combinators, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::Rng;

        /// Element-count specification: a fixed size or a range of sizes.
        pub trait IntoSizeRange {
            fn pick_size<R: Rng>(&self, rng: &mut R) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick_size<R: Rng>(&self, _rng: &mut R) -> usize {
                *self
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn pick_size<R: Rng>(&self, rng: &mut R) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl IntoSizeRange for std::ops::RangeInclusive<usize> {
            fn pick_size<R: Rng>(&self, rng: &mut R) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy producing vectors of `element` with `size` elements.
        pub struct VecStrategy<S, Z> {
            element: S,
            size: Z,
        }

        /// Build a vector strategy (`prop::collection::vec`).
        pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;
            fn generate<R: Rng>(&self, rng: &mut R) -> Vec<S::Value> {
                let n = self.size.pick_size(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the `proptest!` macro and its callers need in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

#[doc(hidden)]
pub mod __rt {
    use rand::SeedableRng;
    pub use rand_chacha::ChaCha8Rng;

    /// Deterministic per-test, per-case RNG: seeded from the test name
    /// and case index so failures are reproducible run to run.
    pub fn case_rng(test_name: &str, case: u32) -> ChaCha8Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        ChaCha8Rng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64)
    }
}

/// Define property tests: each `fn` runs `cases` times with inputs drawn
/// from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::__rt::case_rng(stringify!($name), __case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest {} failed on case {}: {}", stringify!($name), __case, e);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

/// Assert within a property body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l, r, format!($($fmt)*)
        );
    }};
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_honor_bounds(x in 0i64..100, y in 1usize..=8, f in -1.0f64..1.0) {
            prop_assert!((0..100).contains(&x));
            prop_assert!((1..=8).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(mut v in prop::collection::vec(0i64..10, 3..7), w in prop::collection::vec(0i64..10, 5)) {
            v.sort_unstable();
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert_eq!(w.len(), 5);
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(dead_code)]
                fn always_fails(x in 0i64..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
