//! Minimal in-tree shim of the `rand` crate.
//!
//! Implements exactly the API surface pdsp-bench uses — the [`Rng`] and
//! [`SeedableRng`] traits with `gen`, `gen_range` and `gen_bool` over the
//! integer/float range types that appear in the workspace — so the
//! workspace builds hermetically without registry access. The statistical
//! quality matches the upstream crate for benchmarking purposes
//! (uniform 53-bit floats, unbiased bounded integers via rejection
//! sampling), though the exact streams differ.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), the standard float construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform bounded-range sampler; mirrors upstream rand's
/// `SampleUniform` so `gen_range(0..n)` keeps the same type inference
/// (a single generic `SampleRange` impl per range shape).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform value in `[low, high)` (`inclusive` = false) or
    /// `[low, high]` (`inclusive` = true). Callers guarantee a non-empty
    /// range.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(rng, start, end, true)
    }
}

/// Uniform `u64` in `[0, bound)` without modulo bias (Lemire-style
/// rejection on the widening multiply).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let wide = (rng.next_u64() as u128) * (bound as u128);
        let lo = wide as u64;
        if bound.is_power_of_two() || lo >= bound.wrapping_neg() % bound {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128
                    + if inclusive { 1 } else { 0 };
                if span == 0 || span > u64::MAX as u128 {
                    // Full 64-bit span: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                let off = bounded_u64(rng, span as u64);
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// The user-facing random number generator trait.
pub trait Rng: RngCore {
    /// Sample a value uniformly from the type's full range (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Commonly used generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast non-cryptographic generator (xoshiro256**),
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&x));
            let y = rng.gen_range(10u64..=100);
            assert!((10..=100).contains(&y));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
