//! Minimal in-tree shim of `rand_chacha`: a real ChaCha8 block generator
//! behind the [`ChaCha8Rng`] name, implementing this workspace's `rand`
//! shim traits. Deterministic per seed, with the full 2^512 state space of
//! the ChaCha core.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// ChaCha quarter round.
#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha8 stream cipher used as a deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    input: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next word index within `block`; 16 means "generate a new block".
    word: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.input;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (i, word) in working.iter().enumerate() {
            self.block[i] = word.wrapping_add(self.input[i]);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.input[12] as u64 | ((self.input[13] as u64) << 32)).wrapping_add(1);
        self.input[12] = counter as u32;
        self.input[13] = (counter >> 32) as u32;
        self.word = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, the
        // same construction upstream rand uses for seed_from_u64.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut input = [0u32; 16];
        // "expand 32-byte k"
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646e;
        input[2] = 0x7962_2d32;
        input[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = next();
            input[4 + 2 * i] = k as u32;
            input[5 + 2 * i] = (k >> 32) as u32;
        }
        // counter = 0, nonce = 0
        ChaCha8Rng {
            input,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.word + 1 >= 16 {
            // A leftover odd word is discarded to keep u64 draws aligned.
            self.refill();
        }
        let lo = self.block[self.word] as u64;
        let hi = self.block[self.word + 1] as u64;
        self.word += 2;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniformish_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
