//! Minimal in-tree shim of `serde`.
//!
//! Upstream serde abstracts over data formats; this workspace only ever
//! serializes to and from JSON, so the shim collapses the abstraction:
//! [`Serialize`] renders a type into a [`Value`] tree and [`Deserialize`]
//! rebuilds it, with `serde_json` supplying the text layer on top. The
//! derive macros (`serde_derive`, re-exported here) generate impls with
//! upstream's default representation: structs as objects, enums
//! externally tagged, maps with non-string keys as arrays of pairs.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::{Map, Number, Value};

/// Deserialization error: a human-readable path + cause message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable as a JSON value tree.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Types reconstructible from a JSON value tree.
pub trait Deserialize: Sized {
    fn from_json_value(value: &Value) -> Result<Self, Error>;
}

/// Deserialization module, mirroring upstream's `serde::de` paths.
pub mod de {
    /// Owned deserialization — the only flavor the shim supports, so it
    /// is a blanket alias for [`crate::Deserialize`].
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Serialization module, mirroring upstream's `serde::ser` paths.
pub mod ser {
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::new(format!(
                        "expected integer, found {}",
                        value.kind()
                    )))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::new(format!(
                        "expected unsigned integer, found {}",
                        value.kind()
                    )))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            // Upstream serde_json cannot represent non-finite floats;
            // mirror its `json!` behavior of emitting null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::new(format!("expected number, found {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        (*self as f64).to_json_value()
    }
}

impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        f64::from_json_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Upstream serde can borrow `&str` from the input with the right
    /// lifetimes; this value-tree shim cannot, so `&'static str` fields
    /// (static metadata like `AppInfo`) are restored by leaking the
    /// owned string. Fine for small, rarely-deserialized metadata.
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        String::from_json_value(value).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::new(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::new(format!("expected null, found {}", other.kind()))),
        }
    }
}

// ---------------------------------------------------------------------------
// Pointer / wrapper impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        T::from_json_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Deserialize for Arc<str> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        String::from_json_value(value).map(|s| Arc::from(s.as_str()))
    }
}

impl Deserialize for Arc<String> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        String::from_json_value(value).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------------------
// Sequence impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let v: Vec<T> = Vec::from_json_value(value)?;
        let len = v.len();
        v.try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Vec::from_json_value(value).map(VecDeque::from)
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Vec::from_json_value(value).map(|v: Vec<T>| v.into_iter().collect())
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($idx:tt $t:ident),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_json_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::new(format!(
                        "expected {}-tuple array, found {}", $len, other.kind()
                    ))),
                }
            }
        }
    };
}

impl_tuple!(1 => 0 A);
impl_tuple!(2 => 0 A, 1 B);
impl_tuple!(3 => 0 A, 1 B, 2 C);
impl_tuple!(4 => 0 A, 1 B, 2 C, 3 D);

// ---------------------------------------------------------------------------
// Map impls
// ---------------------------------------------------------------------------

fn serialize_map<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)> + Clone,
{
    let all_string_keys = entries
        .clone()
        .all(|(k, _)| matches!(k.to_json_value(), Value::String(_)));
    if all_string_keys {
        let mut m = Map::new();
        for (k, v) in entries {
            let Value::String(key) = k.to_json_value() else {
                unreachable!()
            };
            m.insert(key, v.to_json_value());
        }
        Value::Object(m)
    } else {
        // Non-string keys cannot live in a JSON object: use the
        // array-of-pairs representation (roundtrips losslessly).
        Value::Array(
            entries
                .map(|(k, v)| Value::Array(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}

fn deserialize_map_entries<K: Deserialize, V: Deserialize>(
    value: &Value,
) -> Result<Vec<(K, V)>, Error> {
    match value {
        Value::Object(map) => map
            .iter()
            .map(|(k, v)| {
                let key = K::from_json_value(&Value::String(k.clone()))?;
                Ok((key, V::from_json_value(v)?))
            })
            .collect(),
        Value::Array(items) => items.iter().map(<(K, V)>::from_json_value).collect(),
        other => Err(Error::new(format!("expected map, found {}", other.kind()))),
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        deserialize_map_entries(value).map(|v| v.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        deserialize_map_entries(value).map(|v| v.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// std types with dedicated representations
// ---------------------------------------------------------------------------

impl Serialize for Duration {
    fn to_json_value(&self) -> Value {
        // Upstream serde's representation: {"secs": u64, "nanos": u32}.
        let mut m = Map::new();
        m.insert("secs".to_string(), self.as_secs().to_json_value());
        m.insert("nanos".to_string(), self.subsec_nanos().to_json_value());
        Value::Object(m)
    }
}

impl Deserialize for Duration {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let obj = __private::expect_object(value, "Duration")?;
        let secs: u64 = __private::field(obj, "Duration", "secs")?;
        let nanos: u32 = __private::field(obj, "Duration", "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// Derive-support helpers (used by serde_derive-generated code)
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Map, Value};

    pub fn expect_object<'a>(v: &'a Value, ty: &str) -> Result<&'a Map, Error> {
        match v {
            Value::Object(m) => Ok(m),
            other => Err(Error::new(format!(
                "{ty}: expected object, found {}",
                other.kind()
            ))),
        }
    }

    pub fn expect_array<'a>(v: &'a Value, ty: &str, len: usize) -> Result<&'a [Value], Error> {
        match v {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(Error::new(format!(
                "{ty}: expected array of {len} elements, found {}",
                items.len()
            ))),
            other => Err(Error::new(format!(
                "{ty}: expected array, found {}",
                other.kind()
            ))),
        }
    }

    pub fn field<T: Deserialize>(obj: &Map, ty: &str, name: &str) -> Result<T, Error> {
        match obj.get(name) {
            Some(v) => T::from_json_value(v).map_err(|e| Error::new(format!("{ty}.{name}: {e}"))),
            None => Err(Error::new(format!("{ty}: missing field `{name}`"))),
        }
    }

    pub fn field_default<T: Deserialize + Default>(
        obj: &Map,
        ty: &str,
        name: &str,
    ) -> Result<T, Error> {
        match obj.get(name) {
            Some(Value::Null) | None => Ok(T::default()),
            Some(v) => T::from_json_value(v).map_err(|e| Error::new(format!("{ty}.{name}: {e}"))),
        }
    }

    /// Externally-tagged enum payload: `{"Variant": value}`.
    pub fn tag(variant: &str, value: Value) -> Value {
        let mut m = Map::new();
        m.insert(variant.to_string(), value);
        Value::Object(m)
    }

    pub fn single_entry<'a>(obj: &'a Map, ty: &str) -> Result<(&'a str, &'a Value), Error> {
        let mut iter = obj.iter();
        match (iter.next(), iter.next()) {
            (Some((k, v)), None) => Ok((k.as_str(), v)),
            _ => Err(Error::new(format!(
                "{ty}: expected single-key variant object, found {} keys",
                obj.len()
            ))),
        }
    }

    pub fn unknown_variant(ty: &str, tag: &str) -> Error {
        Error::new(format!("{ty}: unknown variant `{tag}`"))
    }

    pub fn type_error(ty: &str, got: &Value) -> Error {
        Error::new(format!("{ty}: unexpected value kind {}", got.kind()))
    }
}
