//! The JSON value tree shared by the serde and serde_json shims.

use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned/signed integer or float, matching upstream
/// serde_json's `Number` semantics (integers and floats never compare
/// equal; integers compare across signedness).
#[derive(Debug, Clone, Copy)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (self, other) {
            (PosInt(a), PosInt(b)) => a == b,
            (NegInt(a), NegInt(b)) => a == b,
            (PosInt(a), NegInt(b)) | (NegInt(b), PosInt(a)) => *b >= 0 && *a == *b as u64,
            (Float(a), Float(b)) => a == b,
            _ => false,
        }
    }
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(f) => Some(f),
        }
    }
}

/// A JSON object. Backed by an insertion-ordered vector — objects in this
/// workspace are small (struct fields), where linear probing beats tree
/// or hash overhead. Equality is key-set based, not order based.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert or replace; returns the previous value for the key if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> + Clone {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

// Scalar comparisons (used pervasively in tests: `value == "z"`).
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! eq_via_from {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self == &Value::from(*other)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_via_from!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64, bool);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                let v = v as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}

from_signed!(i8, i16, i32, i64, isize);

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::PosInt(v as u64))
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        if v.is_finite() {
            Value::Number(Number::Float(v))
        } else {
            Value::Null
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

// ---------------------------------------------------------------------------
// JSON text rendering (Display = compact form, as upstream serde_json)
// ---------------------------------------------------------------------------

pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            let s = f.to_string();
            out.push_str(&s);
            // `5.0` Displays as "5"; keep the float marker so the value
            // roundtrips as a float, like upstream serde_json.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl Value {
    /// Compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_compact(&mut out, self);
        out
    }

    /// Human-readable JSON text (2-space indent).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(&mut out, self, 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}
