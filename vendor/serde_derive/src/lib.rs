//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim — no `syn`/`quote`, just direct token-stream
//! parsing. Supports the shapes this workspace actually uses:
//!
//! - structs with named fields (with `#[serde(default)]` on fields),
//! - tuple and unit structs,
//! - enums with unit, tuple, and struct variants (externally tagged,
//!   matching upstream serde's default representation).
//!
//! Generics and other `#[serde(...)]` attributes are rejected loudly so
//! an unsupported use fails at compile time instead of misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    shape: Shape,
}

/// Derive `serde::Serialize` (the shim's JSON-value serializer).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (the shim's JSON-value deserializer).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility until `struct` / `enum`.
    let kind = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` + bracketed attribute group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                // `pub`, possibly followed by `(crate)` etc.
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            other => panic!("serde_derive: unexpected token before item: {other}"),
        }
    };
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    let shape = match tokens.get(i) {
        None => Shape::UnitStruct,
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Shape::NamedStruct(parse_fields(&inner))
            } else {
                Shape::Enum(parse_variants(&inner))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                panic!("serde_derive: malformed enum `{name}`");
            }
            Shape::TupleStruct(count_tuple_fields(
                &g.stream().into_iter().collect::<Vec<_>>(),
            ))
        }
        Some(TokenTree::Ident(id)) if *id.to_string() == *"where" => {
            panic!("serde_derive shim: `where` clauses are not supported on `{name}`")
        }
        Some(other) => panic!("serde_derive: unexpected token after `{name}`: {other}"),
    };
    Item { name, shape }
}

/// Parse an attribute starting at `tokens[i]` (`#` already seen at `i`);
/// returns the new index and whether it was `#[serde(default)]`.
fn parse_attr(tokens: &[TokenTree], i: usize) -> (usize, bool) {
    let group = match tokens.get(i + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
        other => panic!("serde_derive: malformed attribute: {other:?}"),
    };
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut is_default = false;
    if let Some(TokenTree::Ident(id)) = inner.first() {
        if id.to_string() == "serde" {
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    g.stream().to_string()
                }
                other => panic!("serde_derive: malformed #[serde] attribute: {other:?}"),
            };
            if args.trim() == "default" {
                is_default = true;
            } else {
                panic!("serde_derive shim: unsupported attribute #[serde({args})]");
            }
        }
    }
    (i + 2, is_default)
}

fn parse_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        // Attributes (doc comments, #[serde(default)]).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            let (next, is_default) = parse_attr(tokens, i);
            default |= is_default;
            i = next;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        i = skip_type(tokens, i);
        fields.push(Field { name, default });
    }
    fields
}

/// Skip a type starting at `tokens[i]`, stopping after the field's
/// trailing comma (or at end of stream). Tracks `<`/`>` nesting and
/// ignores the `>` of `->` so function-pointer types don't unbalance it.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    let mut prev_dash = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && depth == 0 {
                    return i + 1;
                }
                if c == '<' {
                    depth += 1;
                } else if c == '>' && !prev_dash {
                    depth -= 1;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        i += 1;
    }
    i
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut prev_dash = false;
    let mut trailing_comma = false;
    for t in tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = t {
            let c = p.as_char();
            if c == ',' && depth == 0 {
                count += 1;
                trailing_comma = true;
            } else if c == '<' {
                depth += 1;
            } else if c == '>' && !prev_dash {
                depth -= 1;
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            let (next, _) = parse_attr(tokens, i);
            i = next;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            _ => VariantKind::Unit,
        };
        // Skip to the next variant (handles explicit discriminants).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn named_struct_to_value(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from("let mut __m = ::serde::Map::new();\n");
    for f in fields {
        out.push_str(&format!(
            "__m.insert(::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_json_value({p}{n}));\n",
            n = f.name,
            p = access_prefix,
        ));
    }
    out.push_str("::serde::Value::Object(__m)\n");
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => named_struct_to_value(fields, "&self."),
        Shape::TupleStruct(0) | Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::__private::tag(\"{vn}\", \
                         ::serde::Serialize::to_json_value(__f0)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::__private::tag(\"{vn}\", \
                             ::serde::Value::Array(vec![{elems}])),\n",
                            binds = binds.join(", "),
                            elems = elems.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_struct_to_value(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ \
                             let __inner = {{ {inner} }}; \
                             ::serde::__private::tag(\"{vn}\", __inner) }},\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_mut)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn named_struct_from_value(ty_label: &str, fields: &[Field], obj_var: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let helper = if f.default { "field_default" } else { "field" };
        out.push_str(&format!(
            "{n}: ::serde::__private::{helper}({obj_var}, \"{ty_label}\", \"{n}\")?,\n",
            n = f.name,
        ));
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits = named_struct_from_value(name, fields, "__o");
            format!(
                "let __o = ::serde::__private::expect_object(__v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(0) | Shape::UnitStruct => {
            format!("::std::result::Result::Ok({name})")
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_json_value(__v)?))"
        ),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = ::serde::__private::expect_array(__v, \"{name}\", {n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_json_value(__val)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_json_value(&__a[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __a = ::serde::__private::expect_array(\
                             __val, \"{name}::{vn}\", {n})?;\n\
                             ::std::result::Result::Ok({name}::{vn}({elems}))\n}}\n",
                            elems = elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let label = format!("{name}::{vn}");
                        let inits = named_struct_from_value(&label, fields, "__o2");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __o2 = ::serde::__private::expect_object(__val, \"{label}\")?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::__private::unknown_variant(\"{name}\", __other)),\n\
                 }},\n\
                 ::serde::Value::Object(__o) => {{\n\
                 let (__tag, __val) = ::serde::__private::single_entry(__o, \"{name}\")?;\n\
                 match __tag {{\n\
                 {tagged_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::__private::unknown_variant(\"{name}\", __other)),\n\
                 }}\n}}\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::__private::type_error(\"{name}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_variables)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
