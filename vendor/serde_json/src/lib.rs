//! Minimal in-tree shim of `serde_json`: JSON text parsing/printing and
//! the `json!` macro over the vendored serde's [`Value`] tree.

use serde::de::DeserializeOwned;
use serde::Serialize;

pub use serde::{Error, Map, Number, Value};

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_json_string())
}

/// Serialize to pretty-printed JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_json_string_pretty())
}

/// Serialize to a JSON value tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Deserialize from a JSON value tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::from_json_value(&value)
}

/// Deserialize from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse::parse(s)?;
    T::from_json_value(&value)
}

/// Construct a [`Value`] from JSON-like syntax.
///
/// Covers the forms used in this workspace: `null`, literals, arbitrary
/// expressions (anything implementing `Serialize`), arrays, and nested
/// objects with literal keys.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $crate::json_object_entries!(__map; $($body)*);
        $crate::Value::Object(__map)
    }};
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($elem)),* ])
    };
    ($other:expr) => {
        $crate::__to_value_infallible(&$other)
    };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($map:ident;) => {};
    ($map:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::Value::Null);
        $($crate::json_object_entries!($map; $($rest)*);)?
    };
    ($map:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!({ $($inner)* }));
        $($crate::json_object_entries!($map; $($rest)*);)?
    };
    ($map:ident; $key:literal : [ $($inner:tt),* $(,)? ] $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!([ $($inner),* ]));
        $($crate::json_object_entries!($map; $($rest)*);)?
    };
    ($map:ident; $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::__to_value_infallible(&$value));
        $($crate::json_object_entries!($map; $($rest)*);)?
    };
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
pub fn __to_value_infallible<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

mod parse {
    use super::{Error, Map, Number, Value};

    pub fn parse(s: &str) -> Result<Value, Error> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::new(format!(
                "trailing characters at byte {pos} in JSON text"
            )));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err(Error::new("unexpected end of JSON text")),
            Some(b'n') => expect_lit(b, pos, "null", Value::Null),
            Some(b't') => expect_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => expect_lit(b, pos, "false", Value::Bool(false)),
            Some(b'"') => parse_string(b, pos).map(Value::String),
            Some(b'[') => parse_array(b, pos),
            Some(b'{') => parse_object(b, pos),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                *c as char, *pos
            ))),
        }
    }

    fn expect_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", *pos)))
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        *pos += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", *pos))),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        *pos += 1; // '{'
        let mut map = Map::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(Error::new(format!("expected object key at byte {}", *pos)));
            }
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(Error::new(format!("expected `:` at byte {}", *pos)));
            }
            *pos += 1;
            let value = parse_value(b, pos)?;
            map.insert(key, value);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", *pos))),
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
        *pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err(Error::new("unterminated string in JSON text")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hi = parse_hex4(b, *pos + 1)?;
                            *pos += 4;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u')
                                {
                                    let lo = parse_hex4(b, *pos + 3)?;
                                    *pos += 6;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate in JSON string"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::new("invalid escape in JSON string")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let start = *pos;
                    let mut end = start + 1;
                    while end < b.len() && (b[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&b[start..end])
                            .map_err(|_| Error::new("invalid UTF-8 in JSON string"))?,
                    );
                    *pos = end;
                }
            }
        }
    }

    fn parse_hex4(b: &[u8], at: usize) -> Result<u32, Error> {
        let chunk = b
            .get(at..at + 4)
            .ok_or_else(|| Error::new("truncated unicode escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid unicode escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&b[start..*pos])
            .map_err(|_| Error::new("invalid number in JSON text"))?;
        let n = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        } else if text.starts_with('-') {
            // Parse the signed text directly: negating a parsed magnitude
            // would overflow on i64::MIN. `-0` parses as 0.
            let n: i64 = text
                .parse::<i64>()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            if n == 0 {
                Number::PosInt(0)
            } else {
                Number::NegInt(n)
            }
        } else {
            Number::PosInt(
                text.parse::<u64>()
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = json!({
            "app": "WC",
            "latency": 42.5,
            "flags": [1, 2, 3],
            "nested": {"y": "z"},
            "ok": true,
            "nothing": null
        });
        let text = to_string(&doc).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back["nested"]["y"], "z");
        assert_eq!(back["latency"].as_f64(), Some(42.5));
        assert_eq!(back["flags"][0].as_u64(), Some(1));
    }

    #[test]
    fn integer_float_distinction_survives_roundtrip() {
        let text = to_string(&json!({"i": 5, "f": 5.0})).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back["i"].as_u64(), Some(5));
        assert!(back["f"].as_u64().is_none());
        assert_eq!(back["f"].as_f64(), Some(5.0));
    }

    #[test]
    fn string_escapes() {
        let doc = json!({"s": "a\"b\\c\nd\te\u{1F600}"});
        let text = to_string(&doc).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn unicode_escape_parsing() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A\u{1F600}");
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let v: Value = from_str("[-7, 1e3, -2.5E-2, -0]").unwrap();
        assert_eq!(v[0].as_i64(), Some(-7));
        assert_eq!(v[1].as_f64(), Some(1000.0));
        assert_eq!(v[2].as_f64(), Some(-0.025));
        assert_eq!(v[3].as_i64(), Some(0));
    }

    #[test]
    fn pretty_printing_is_reparseable() {
        let doc = json!({"a": [1, {"b": 2}], "c": "d"});
        let text = to_string_pretty(&doc).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn expression_values_in_macro() {
        let i = 3;
        let doc = json!({"i": i, "even": i % 2 == 0, "sum": 1 + 1});
        assert_eq!(doc["i"].as_i64(), Some(3));
        assert_eq!(doc["even"], false);
        assert_eq!(doc["sum"].as_i64(), Some(2));
    }
}
